"""Storage hierarchy: an ordered stack of tiers, fastest first.

The paper indexes tiers so that lower ``l`` means an upper (faster, smaller)
tier — ``l = 0`` is RAM. The hierarchy enforces that convention at
construction (bandwidth must be non-increasing with depth) and provides the
aggregate views the optimizer and System Monitor consume.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import TierError
from .device import Device
from .spec import TierSpec
from .tier import Tier

__all__ = ["StorageHierarchy"]


class StorageHierarchy:
    """Ordered collection of :class:`Tier` objects, index 0 on top.

    Args:
        tiers: Tier runtimes ordered fastest-first.
        enforce_ordering: Validate that bandwidth is non-increasing with
            depth (set False for deliberately inverted test hierarchies).
    """

    def __init__(self, tiers: Sequence[Tier], enforce_ordering: bool = True) -> None:
        if not tiers:
            raise TierError("a hierarchy needs at least one tier")
        names = [t.spec.name for t in tiers]
        if len(set(names)) != len(names):
            raise TierError(f"duplicate tier names: {names}")
        if enforce_ordering:
            for upper, lower in zip(tiers, tiers[1:]):
                if upper.spec.bandwidth < lower.spec.bandwidth:
                    raise TierError(
                        f"tier {upper.spec.name!r} is above {lower.spec.name!r} "
                        "but has lower bandwidth; hierarchies are fastest-first"
                    )
        self._tiers = list(tiers)
        self._by_name = {t.spec.name: i for i, t in enumerate(self._tiers)}

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[TierSpec],
        device_factory=None,
        enforce_ordering: bool = True,
    ) -> "StorageHierarchy":
        """Build a hierarchy with fresh devices from specs.

        ``device_factory`` is called once per spec (default: in-memory
        devices).
        """
        tiers = []
        for spec in specs:
            device: Device | None = device_factory(spec) if device_factory else None
            tiers.append(Tier(spec, device))
        return cls(tiers, enforce_ordering=enforce_ordering)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._tiers)

    def __iter__(self) -> Iterator[Tier]:
        return iter(self._tiers)

    def __getitem__(self, index: int) -> Tier:
        return self._tiers[index]

    def by_name(self, name: str) -> Tier:
        try:
            return self._tiers[self._by_name[name]]
        except KeyError:
            raise TierError(f"no tier named {name!r}") from None

    def level_of(self, name: str) -> int:
        """Index (paper's ``l``) of the named tier."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TierError(f"no tier named {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [t.spec.name for t in self._tiers]

    # -- aggregate views -------------------------------------------------------

    def concurrency(self) -> int:
        """Sum of hardware lanes over all tiers (constraint 2's bound)."""
        return sum(t.spec.lanes for t in self._tiers)

    def total_used(self) -> int:
        return sum(t.used for t in self._tiers)

    def total_remaining(self) -> int | None:
        """Remaining accounted capacity; ``None`` if any tier is unbounded."""
        total = 0
        for tier in self._tiers:
            remaining = tier.remaining
            if remaining is None:
                return None
            total += remaining
        return total

    def footprint_by_tier(self) -> dict[str, int]:
        """Accounted bytes per tier (Fig. 5's per-tier footprint series)."""
        return {t.spec.name: t.used for t in self._tiers}

    def find(self, key: str) -> Tier | None:
        """Tier currently holding ``key``, top-down, or None."""
        for tier in self._tiers:
            if key in tier:
                return tier
        return None

    def clear(self) -> None:
        for tier in self._tiers:
            tier.clear()

    def describe(self) -> str:
        return "\n".join(
            f"  l={i} {tier.spec.describe()}" for i, tier in enumerate(self._tiers)
        )
