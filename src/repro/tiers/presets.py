"""Cluster presets: the Ares testbed (paper Tables III/IV) as tier specs.

Bandwidth/latency figures model the Ares hardware classes: node-local DDR
RAM and NVMe SSDs scale with the number of compute nodes; the 4-node SSD
burst-buffer tier and the 24-node HDD OrangeFS PFS are shared, fixed-size
resources behind 40 GbE. Capacities per experiment come straight from the
paper's §V configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GB, GiB, MB, TB
from .hierarchy import StorageHierarchy
from .spec import TierSpec

__all__ = [
    "AresNode",
    "ARES_COMPUTE",
    "ARES_BURST_BUFFER",
    "ARES_STORAGE",
    "ares_specs",
    "ares_hierarchy",
    "default_buffer_split",
]

# Modeled per-device characteristics (single node / single server).
# Shared-tier rates are calibrated against the paper's absolute runtimes:
# Fig. 7's BASE writes 6.4 TB to the PFS in ~8950 s (~0.75 GB/s effective
# across 24 HDD servers under 2560-way concurrency) and MTNC lands at ~2x
# that, which puts the 4-server SSD burst buffer near 2 GB/s effective.
_RAM_BW_PER_NODE = 6 * GB  # DDR4 effective streaming rate per node
_NVME_BW_PER_NODE = 2 * GB  # NVMe SSD per node
_BB_BW_PER_SERVER = 500 * MB  # 2x SATA SSD per burst-buffer server
_PFS_BW_PER_SERVER = 33 * MB  # HDD-backed OrangeFS server, concurrent load

_RAM_LATENCY = 1e-6
_NVME_LATENCY = 2e-5
_BB_LATENCY = 2e-4  # network hop over 40 GbE RoCE
_PFS_LATENCY = 5e-3  # network + HDD seek


@dataclass(frozen=True)
class AresNode:
    """One row of the paper's Table III (testbed specifications)."""

    role: str
    count: int
    cpu: str
    ram: str
    disk: str


ARES_COMPUTE = AresNode(
    "compute", 64, "Intel Xeon Silver 4114 @ 2.20GHz", "DDR4 96GB", "512GB NVMe SSD"
)
ARES_BURST_BUFFER = AresNode(
    "burst-buffer", 4, "AMD Dual Opteron 2384 @ 2.7Ghz", "DDR3 64GB", "2x512GB SSD"
)
ARES_STORAGE = AresNode(
    "storage", 24, "AMD Dual Opteron 2384 @ 2.7Ghz", "DDR3 32GB", "2TB HDD"
)


def ares_specs(
    ram_capacity: int | None,
    nvme_capacity: int | None,
    bb_capacity: int | None,
    nodes: int = 64,
    pfs_capacity: int | None = None,
) -> list[TierSpec]:
    """Tier specs for an Ares-style 4-tier hierarchy.

    Capacities are the experiment's aggregate buffer budgets (the paper's
    "configure the buffers to fit X" numbers); bandwidths scale with node
    and server counts. A ``None`` capacity drops the tier entirely (except
    the PFS, where ``None`` means unbounded, which is how every experiment
    treats it).
    """
    if nodes < 1:
        raise ValueError(f"need at least one compute node, got {nodes}")
    specs = []
    if ram_capacity is not None:
        specs.append(
            TierSpec(
                name="ram",
                capacity=ram_capacity,
                bandwidth=float(nodes * _RAM_BW_PER_NODE),
                latency=_RAM_LATENCY,
                lanes=nodes,
                shared=False,
            )
        )
    if nvme_capacity is not None:
        specs.append(
            TierSpec(
                name="nvme",
                capacity=nvme_capacity,
                bandwidth=float(nodes * _NVME_BW_PER_NODE),
                latency=_NVME_LATENCY,
                lanes=nodes,
                shared=False,
            )
        )
    if bb_capacity is not None:
        specs.append(
            TierSpec(
                name="burst_buffer",
                capacity=bb_capacity,
                bandwidth=float(ARES_BURST_BUFFER.count * _BB_BW_PER_SERVER),
                latency=_BB_LATENCY,
                lanes=ARES_BURST_BUFFER.count * 2,  # two SSDs per server
                shared=True,
            )
        )
    specs.append(
        TierSpec(
            name="pfs",
            capacity=pfs_capacity,
            bandwidth=float(ARES_STORAGE.count * _PFS_BW_PER_SERVER),
            latency=_PFS_LATENCY,
            lanes=ARES_STORAGE.count,
            shared=True,
        )
    )
    return specs


def ares_hierarchy(
    ram_capacity: int | None = 16 * GiB,
    nvme_capacity: int | None = 32 * GiB,
    bb_capacity: int | None = 2 * TB,
    nodes: int = 64,
    pfs_capacity: int | None = None,
    device_factory=None,
) -> StorageHierarchy:
    """Ready-to-use hierarchy; defaults are the Fig. 1 configuration."""
    return StorageHierarchy.from_specs(
        ares_specs(ram_capacity, nvme_capacity, bb_capacity, nodes, pfs_capacity),
        device_factory=device_factory,
    )


def default_buffer_split(total_data: int) -> tuple[int, int, int]:
    """The paper's default buffer sizing (§V-A1): 20% of the data in local
    RAM, 30% in local NVMe, and the rest in burst buffers.

    Returns (ram, nvme, burst_buffer) capacities in bytes.
    """
    if total_data <= 0:
        raise ValueError(f"total_data must be positive, got {total_data}")
    ram = total_data * 20 // 100
    nvme = total_data * 30 // 100
    bb = total_data - ram - nvme
    return ram, nvme, bb
