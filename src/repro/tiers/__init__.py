"""Multi-tiered storage substrate: specs, devices, tiers, hierarchies."""

from .device import Device, FileDevice, MemoryDevice, NullDevice
from .hierarchy import StorageHierarchy
from .presets import (
    ARES_BURST_BUFFER,
    ARES_COMPUTE,
    ARES_STORAGE,
    AresNode,
    ares_hierarchy,
    ares_specs,
    default_buffer_split,
)
from .spec import TierSpec
from .tier import Extent, Tier

__all__ = [
    "ARES_BURST_BUFFER",
    "ARES_COMPUTE",
    "ARES_STORAGE",
    "AresNode",
    "Device",
    "Extent",
    "FileDevice",
    "MemoryDevice",
    "NullDevice",
    "StorageHierarchy",
    "Tier",
    "TierSpec",
    "ares_hierarchy",
    "ares_specs",
    "default_buffer_split",
]
