"""A standby replica: one shard's warm spare recovery directory.

A standby is deliberately *not* a live engine — it is a recovery
directory kept continuously restorable: the primary's journal frames
land here synchronously (ship-on-append, so every acked mutation is
present even when the primary's own group-commit buffer dies with it)
and each primary checkpoint is installed as the standby's snapshot.
Promotion is then nothing new: :meth:`HCompress.restore` over the
standby directory, the same code path every crash-recovery test already
proves.

Frames are persisted verbatim — same bytes, same LSNs — so the standby
journal is interchangeable with the primary's and
:func:`~repro.recovery.journal.replay_journal` /
:class:`~repro.recovery.journal.JournalCursor` work on it unchanged.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from ..errors import JournalCorruptError, RecoveryError
from ..recovery import JOURNAL_NAME, SNAPSHOT_NAME, replay_journal
from ..recovery.journal import FRAME_HEADER_SIZE, JournalRecord

__all__ = ["StandbyReplica"]


class StandbyReplica:
    """One shard's standby: a shipped journal + installed snapshots.

    Args:
        shard_id: The shard this standby replicates.
        replica_id: Position within the shard's standby set (0-based);
            ties in promotion break toward the lowest id.
        directory: The standby's recovery directory (created if
            missing). An existing directory is adopted: the applied LSN
            resumes from its snapshot + journal, so a recycled old
            primary starts from whatever state it already holds.
        fsync: Issue real ``os.fsync`` per applied frame. Off still
            flushes (same modeled-durability convention as the journal).
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        directory: str | Path,
        fsync: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.directory = Path(directory)
        self.fsync = fsync
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_lsn = self._read_snapshot_lsn()
        replay = replay_journal(self.journal_path)
        if replay.truncated:
            # Same torn-tail repair discipline as Journal.open: cut the
            # partial frame so shipped appends extend intact state.
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(replay.valid_bytes)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        #: Newest LSN this standby holds durably (snapshot or journal).
        self.applied_lsn = max(self.snapshot_lsn, replay.last_lsn)
        self.records_applied = 0
        #: Shipped frames rejected for failing CRC/format verification.
        self.frames_rejected = 0
        self._file = open(self.journal_path, "ab")
        self._closed = False

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    def _read_snapshot_lsn(self) -> int:
        try:
            from ..recovery import read_snapshot

            return read_snapshot(self.directory).journal_lsn
        except RecoveryError:
            return 0

    # -- shipping ------------------------------------------------------------

    def apply(
        self, record: JournalRecord, frame: bytes | None = None
    ) -> bool:
        """Persist one shipped record; returns False when not applied.

        Idempotent by LSN: re-shipped records (an anti-entropy pass
        overlapping the live stream) are dropped, so the standby journal
        stays strictly monotone and replayable.

        ``frame`` is the record's wire form as it arrived (length prefix
        + CRC32 + payload). When given, it is verified *before* a byte
        reaches the standby journal — frame CRC, decodability, and LSN
        agreement with ``record`` — because a corrupt shipped frame
        persisted verbatim would silently truncate every future replay at
        that point. A bad frame is rejected (``frames_rejected``) without
        advancing ``applied_lsn``, so the next :meth:`~.coordinator.
        ReplicationCoordinator.catch_up` pass re-fetches the record from
        the primary's own journal. With ``frame`` omitted the wire form
        is re-encoded locally (trusted in-process hand-off).
        """
        self._check_open()
        if record.lsn <= self.applied_lsn:
            return False
        if frame is None:
            frame = record.frame()
        elif not self._frame_valid(record, frame):
            self.frames_rejected += 1
            return False
        self._file.write(frame)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.applied_lsn = record.lsn
        self.records_applied += 1
        return True

    @staticmethod
    def _frame_valid(record: JournalRecord, frame: bytes) -> bool:
        """Whether a shipped wire frame is intact and matches ``record``."""
        if len(frame) < FRAME_HEADER_SIZE:
            return False
        length, crc = struct.unpack_from("<II", frame)
        payload = frame[FRAME_HEADER_SIZE:]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return False
        try:
            decoded = JournalRecord.from_payload(payload)
        except JournalCorruptError:
            return False
        return decoded.lsn == record.lsn

    def install_snapshot(self, source_directory: str | Path) -> int:
        """Adopt the primary's checkpoint; returns its journal LSN.

        Copies ``snapshot.json`` atomically (tmp + flush + fsync +
        rename), then compacts the standby journal down to the suffix
        the snapshot does not cover — mirroring what the primary's own
        checkpoint did to its journal, so standby and primary stay
        structurally interchangeable.
        """
        self._check_open()
        blob = (Path(source_directory) / SNAPSHOT_NAME).read_bytes()
        tmp = self.directory / (SNAPSHOT_NAME + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        self.snapshot_lsn = self._read_snapshot_lsn()
        self._compact(self.snapshot_lsn)
        if self.snapshot_lsn > self.applied_lsn:
            self.applied_lsn = self.snapshot_lsn
        return self.snapshot_lsn

    def _compact(self, keep_after_lsn: int) -> None:
        survivors = [
            r
            for r in replay_journal(self.journal_path).records
            if r.lsn > keep_after_lsn
        ]
        tmp = self.journal_path.with_suffix(self.journal_path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            for record in survivors:
                handle.write(record.frame())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.journal_path)
        self._file = open(self.journal_path, "ab")

    def lag(self, primary_lsn: int) -> int:
        """Records the primary has acked that this standby has not."""
        return max(0, primary_lsn - self.applied_lsn)

    def close(self) -> None:
        """Release the journal descriptor (idempotent); state stays on
        disk — exactly what promotion restores from."""
        if self._closed:
            return
        self._file.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RecoveryError(
                f"standby {self.directory} is closed (promoted or shut down)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StandbyReplica(shard={self.shard_id}, r={self.replica_id}, "
            f"applied_lsn={self.applied_lsn})"
        )
