"""Replication policy: standby count, shipping, and failover knobs.

Like every opt-in subsystem config, :class:`ReplicationConfig` is
frozen, validated at construction, and defaults to the feature-off
shape — ``enabled=False`` keeps a sharded deployment byte-identical to
one built without replication (no standby directories, no journal
observers, no promotion machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReplicationConfig", "replica_dirname"]


def replica_dirname(shard_id: int, replica_id: int) -> str:
    """A standby's recovery directory name (``shard-03-r1``) — flat
    beside the primaries so promotion just re-points the manifest."""
    return f"shard-{shard_id:02d}-r{replica_id}"


@dataclass(frozen=True)
class ReplicationConfig:
    """Per-shard standby replication and automatic failover policy.

    Attributes:
        enabled: Master switch. Off (the default) builds no standbys and
            leaves every code path byte-identical to an unreplicated
            deployment. Requires the shard deployment to have a root
            directory (standbys are durable state).
        replicas: Standby replicas per shard (K). Every one receives the
            primary's journal frames synchronously — before the write is
            acked — and a copy of each checkpoint.
        promotion_seconds: Modeled unavailability window of a failover:
            after a standby is promoted, the shard answers
            :class:`~repro.errors.FailoverInProgressError` (retryable)
            until this much modeled time has passed, then serves. ``0``
            promotes instantly.
        auto_failover: Promote automatically when the supervisor marks a
            shard DOWN (the next dispatch runs the promotion). Off means
            an operator calls
            :meth:`~repro.shard.ShardedHCompress.failover` explicitly.
    """

    enabled: bool = False
    replicas: int = 1
    promotion_seconds: float = 0.25
    auto_failover: bool = True

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.promotion_seconds < 0:
            raise ValueError("promotion_seconds must be >= 0")
