"""Shard replication: WAL shipping, standby replicas, automatic failover.

``repro.replication`` makes shard death *survivable*: each
:class:`~repro.core.hcompress.HCompress` shard gains K standby replicas
fed by synchronous WAL shipping (every journal record lands on the
standbys before the write is acked) plus periodic checkpoint shipping,
so when the supervisor marks a shard DOWN the router promotes the
most-caught-up standby through the ordinary
:meth:`~repro.core.hcompress.HCompress.restore` path, fences the old
primary via the shard-map manifest version, and resumes the dead
shard's tenants after a bounded modeled promotion window.

* :class:`ReplicationConfig` — policy knobs, off by default
  (byte-identical when disabled), carried on
  :class:`~repro.shard.ShardConfig`.
* :class:`StandbyReplica` — one warm-spare recovery directory:
  shipped frames + installed snapshots, promotable at any moment.
* :class:`ReplicationCoordinator` — per-deployment shipping state:
  journal observers, checkpoint installs, anti-entropy catch-up, and
  promotion/demotion bookkeeping.

See docs/SHARDING.md (failover) and docs/RECOVERY.md (WAL shipping).
"""

from .config import ReplicationConfig, replica_dirname
from .coordinator import ReplicationCoordinator
from .standby import StandbyReplica

__all__ = [
    "ReplicationConfig",
    "ReplicationCoordinator",
    "StandbyReplica",
    "replica_dirname",
]
