"""ReplicationCoordinator: WAL shipping, checkpoints, and anti-entropy.

One coordinator per sharded deployment owns every shard's standby set
and the two data flows that keep them promotable:

* **Synchronous shipping** — :meth:`attach` hooks the primary journal's
  append observer; each record is persisted by every standby *before*
  the write is acknowledged (ship-on-append rides the WAL-before-ack
  discipline, so a standby always holds a superset of what the primary
  could lose in its group-commit buffer).
* **Checkpoint shipping + anti-entropy** — :meth:`ship_checkpoint`
  installs the primary's fresh snapshot on each standby;
  :meth:`catch_up` brings a fresh or lagging standby current by
  installing the latest snapshot and replaying the primary's journal
  tail from the standby's last-applied LSN through a
  :class:`~repro.recovery.journal.JournalCursor`.

The coordinator never touches routing or engines — promotion lives on
the router, which asks :meth:`promotion_candidate` for the most-caught-
up standby and :meth:`demote` to recycle the dead primary's directory
into the standby set afterwards.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ShardError
from ..recovery import JOURNAL_NAME, JournalCursor
from .config import ReplicationConfig, replica_dirname
from .standby import StandbyReplica

__all__ = ["ReplicationCoordinator"]


class ReplicationCoordinator:
    """Standby sets and shipping state for every shard of a deployment.

    Args:
        shards: Shard count of the deployment.
        config: Replication policy (``enabled`` must be True).
        root: Deployment root directory — standbys live beside the
            primaries as ``shard-NN-rK/``.
        fsync: Forwarded to every standby (real fsync per frame or
            flush-only).
    """

    def __init__(
        self,
        shards: int,
        config: ReplicationConfig,
        root: str | Path,
        fsync: bool = True,
    ) -> None:
        self.config = config
        if not self.config.enabled:
            raise ShardError("ReplicationCoordinator needs replication enabled")
        self.root = Path(root)
        self.fsync = fsync
        self.standbys: dict[int, list[StandbyReplica]] = {
            shard_id: [
                StandbyReplica(
                    shard_id,
                    replica_id,
                    self.root / replica_dirname(shard_id, replica_id),
                    fsync=fsync,
                )
                for replica_id in range(self.config.replicas)
            ]
            for shard_id in range(shards)
        }
        #: Per-shard count of records shipped synchronously.
        self.shipped_records: dict[int, int] = {
            shard_id: 0 for shard_id in self.standbys
        }
        #: Per-shard count of completed standby promotions.
        self.failovers: dict[int, int] = {
            shard_id: 0 for shard_id in self.standbys
        }
        #: Per-shard count of anti-entropy catch-up passes.
        self.catch_ups: dict[int, int] = {
            shard_id: 0 for shard_id in self.standbys
        }
        #: Newest LSN observed from each shard's primary journal.
        self.primary_lsn: dict[int, int] = {
            shard_id: 0 for shard_id in self.standbys
        }
        self._detach: dict[int, tuple] = {}

    # -- synchronous shipping ------------------------------------------------

    def attach(self, shard_id: int, journal) -> None:
        """Ship every future append of ``journal`` to the shard's
        standbys (replacing any previous attachment)."""
        self.detach(shard_id)
        self.primary_lsn[shard_id] = journal.last_lsn

        def ship(record, _shard_id=shard_id):
            self.primary_lsn[_shard_id] = record.lsn
            # Encode the wire frame once per record; each standby verifies
            # it (CRC + decode + LSN) before persisting — a frame corrupted
            # in shipping is rejected and re-fetched by catch_up, never
            # buried in a standby journal where it would truncate replay.
            frame = record.frame()
            for replica in self.standbys[_shard_id]:
                if replica.apply(record, frame):
                    self.shipped_records[_shard_id] += 1

        journal.add_observer(ship)
        self._detach[shard_id] = (journal, ship)

    def detach(self, shard_id: int) -> None:
        """Stop shipping from the shard's current primary (idempotent)."""
        pair = self._detach.pop(shard_id, None)
        if pair is not None:
            journal, ship = pair
            try:
                journal.remove_observer(ship)
            except ValueError:  # journal already replaced/closed
                pass

    # -- checkpoint shipping & anti-entropy ----------------------------------

    def ship_checkpoint(self, shard_id: int, primary_directory: Path) -> None:
        """Install the primary's current snapshot on every standby."""
        for replica in self.standbys[shard_id]:
            replica.install_snapshot(primary_directory)

    def catch_up(self, shard_id: int, primary_directory: Path) -> int:
        """Anti-entropy: bring every standby of one shard current.

        Installs the primary's snapshot (when one exists) and replays
        the primary's journal tail from each standby's last-applied LSN.
        Returns the number of tail records applied across standbys.
        Safe while synchronous shipping is live: applies are idempotent
        by LSN, so the overlap between the cursor read and the stream
        deduplicates.
        """
        primary_directory = Path(primary_directory)
        applied = 0
        for replica in self.standbys[shard_id]:
            if (primary_directory / "snapshot.json").exists():
                replica.install_snapshot(primary_directory)
            cursor = JournalCursor(
                primary_directory / JOURNAL_NAME, after_lsn=replica.applied_lsn
            )
            for record in cursor.read_new():
                if replica.apply(record):
                    applied += 1
        self.catch_ups[shard_id] += 1
        return applied

    # -- promotion support (the router drives the actual failover) -----------

    def promotion_candidate(self, shard_id: int) -> StandbyReplica:
        """The most-caught-up standby: max applied LSN, ties toward the
        lowest replica id (deterministic)."""
        replicas = self.standbys.get(shard_id)
        if not replicas:
            raise ShardError(
                f"shard {shard_id} has no standby replicas to promote"
            )
        return max(replicas, key=lambda r: (r.applied_lsn, -r.replica_id))

    def promote(self, shard_id: int, replica: StandbyReplica) -> Path:
        """Remove ``replica`` from the standby set (its directory becomes
        the shard's primary); returns that directory."""
        self.detach(shard_id)
        if replica in self.standbys[shard_id]:
            replica.close()
            self.standbys[shard_id].remove(replica)
        return replica.directory

    def demote(self, shard_id: int, directory: Path) -> StandbyReplica:
        """Recycle a directory (the dead primary's) as a new standby.

        The new standby adopts whatever snapshot + journal the directory
        already holds — anti-entropy from the new primary then overwrites
        it with current state. Replica ids restart the numbering after
        the highest survivor, keeping ids unique within the shard.
        Idempotent: demoting an already-enrolled directory replaces that
        standby with a fresh one over the same state.
        """
        survivors = self.standbys[shard_id]
        for existing in list(survivors):
            if existing.directory == Path(directory):
                existing.close()
                survivors.remove(existing)
        replica_id = 1 + max(
            (r.replica_id for r in survivors),
            default=self.config.replicas - 1,
        )
        replica = StandbyReplica(
            shard_id, replica_id, directory, fsync=self.fsync
        )
        survivors.append(replica)
        return replica

    # -- status --------------------------------------------------------------

    def lag(self, shard_id: int) -> dict[int, int]:
        """Replica id -> records behind the shard's primary."""
        primary = self.primary_lsn.get(shard_id, 0)
        return {
            r.replica_id: r.lag(primary) for r in self.standbys[shard_id]
        }

    def status(self) -> dict[int, dict]:
        """Per-shard replication state (the CLI's status table)."""
        return {
            shard_id: {
                "primary_lsn": self.primary_lsn[shard_id],
                "shipped_records": self.shipped_records[shard_id],
                "failovers": self.failovers[shard_id],
                "catch_ups": self.catch_ups[shard_id],
                "replicas": {
                    r.replica_id: {
                        "directory": r.directory.name,
                        "applied_lsn": r.applied_lsn,
                        "lag": r.lag(self.primary_lsn[shard_id]),
                        "frames_rejected": r.frames_rejected,
                    }
                    for r in sorted(
                        self.standbys[shard_id], key=lambda r: r.replica_id
                    )
                },
            }
            for shard_id in sorted(self.standbys)
        }

    def close(self) -> None:
        """Detach every observer and close every standby (idempotent)."""
        for shard_id in list(self._detach):
            self.detach(shard_id)
        for replicas in self.standbys.values():
            for replica in replicas:
                replica.close()
