"""Lifecycle-tiering policy: the knobs of the background recompression daemon.

One frozen dataclass, hanging off
:class:`~repro.core.config.HCompressConfig` like the QoS/recovery
policies: **off by default**, and when disabled the engine constructs no
daemon at all, so behavior is byte-identical to a build without the
subsystem (the access-note hooks pay one ``is None`` check).

The objective the daemon optimizes is a TCO-style modeled cost rate
(docs/LIFECYCLE.md): storage dollars per byte-second on each tier —
derived from the tier's :class:`~repro.tiers.TierSpec` — plus an access
penalty that prices every expected second a reader waits. The prices are
modeled currency; only their *ratios* matter, and the defaults are tuned
so hot blobs earn DRAM while cold blobs pay their way down to the PFS.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LifecycleConfig"]


@dataclass(frozen=True)
class LifecycleConfig:
    """Policy of the background lifecycle daemon (docs/LIFECYCLE.md).

    Attributes:
        enabled: Master switch. When off the engine holds no daemon and
            every code path is byte-identical to the pre-lifecycle build.
        scan_interval: Modeled seconds between catalog scans; a
            :meth:`~repro.lifecycle.daemon.LifecycleDaemon.step` call
            before the interval elapses is a no-op (0 scans every step).
        half_life: Exponential-decay half-life, in modeled seconds, of
            the per-blob access temperature. A blob's temperature halves
            after this much idle time; the expected read rate used by the
            objective is ``temperature / half_life``.
        storage_price: Modeled dollars per GB·second on the *slowest*
            tier. Faster tiers scale this by
            ``sqrt(latency_slowest / latency_tier)`` (see
            :class:`~repro.lifecycle.cost.TierCostModel`).
        access_price: Modeled dollars per second of expected reader wait
            (tier I/O plus codec decode). This is the term that pulls hot
            data up; storage_price is the term that pushes cold data down.
        horizon: Amortization window in modeled seconds: a migration pays
            off when its one-time cost is recovered within this long.
        threshold: Minimum net modeled-dollar saving (over ``horizon``)
            before a migration is worth scheduling — hysteresis against
            ping-ponging blobs whose scores sit near the break-even line.
        promote_codecs: Codec preference order for blobs moving *up*;
            the first roster member wins (cache-line codecs when the
            engine runs ``EXTENDED_LIBRARIES``, byte-LZ otherwise).
        demote_codecs: Codec preference order for blobs moving *down*
            (heavy, ratio-first codecs).
        max_migrations_per_step: Cap on migrations executed per scan, so
            a cold catalog drains over several steps instead of stalling
            foreground traffic behind one giant sweep.
        max_brownout_level: Highest QoS brownout rung at which the daemon
            still runs; above it every step pauses (0 = pause at the
            first sign of overload). Ignored without a QoS governor.
    """

    enabled: bool = False
    scan_interval: float = 4.0
    half_life: float = 16.0
    storage_price: float = 1.0
    access_price: float = 1.0
    horizon: float = 32.0
    threshold: float = 0.0
    promote_codecs: tuple[str, ...] = ("bdi", "fpc", "lz4", "snappy")
    demote_codecs: tuple[str, ...] = ("lzma", "bsc", "bzip2")
    max_migrations_per_step: int = 4
    max_brownout_level: int = 0

    def __post_init__(self) -> None:
        if self.scan_interval < 0:
            raise ValueError("scan_interval must be >= 0")
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if self.storage_price < 0 or self.access_price < 0:
            raise ValueError("storage_price and access_price must be >= 0")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")
        if not self.promote_codecs or not self.demote_codecs:
            raise ValueError("promote_codecs and demote_codecs need >= 1 entry")
        if self.max_migrations_per_step < 1:
            raise ValueError("max_migrations_per_step must be >= 1")
        if self.max_brownout_level < 0:
            raise ValueError("max_brownout_level must be >= 0")
