"""Zipfian access-trace driver: lifecycle tiering vs write-time placement.

One deterministic workload backs the `hcompress lifecycle` CLI, the
``lifecycle`` figure in the experiments report, and
``benchmarks/bench_lifecycle.py``: write a population of blobs onto a
small hierarchy (write-time HCDP placement spills most of them down),
then replay a zipfian read trace — a few blobs absorb most of the reads —
stepping the lifecycle daemon on the simulated clock between reads.

The comparison is *empirical*, not re-modeled: both runs replay the same
seeded trace and are billed with the same prices —

* **storage dollars**: the integral of every blob's stored footprint
  times its tier's $/byte·s over the run;
* **access dollars**: the modeled seconds readers actually waited
  (tier I/O + codec decode), priced at ``access_price``;
* **migration dollars**: the daemon's own modeled migration seconds at
  the same price (zero for the baseline).

Lifecycle tiering wins when storage savings (cold blobs demoted) plus
read-wait savings (hot blobs promoted) outrun what the migrations cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import HCompress, HCompressConfig
from ..datagen import synthetic_buffer
from ..sim.clock import SimClock
from ..tiers import ares_hierarchy
from ..units import KiB
from .config import LifecycleConfig
from .cost import TierCostModel

__all__ = ["ZipfTraceConfig", "ZipfTraceResult", "run_zipf_trace"]


@dataclass(frozen=True)
class ZipfTraceConfig:
    """Shape of the zipfian lifecycle workload.

    Attributes:
        tasks: Blob population (rank r's read probability is
            proportional to ``1 / (r + 1) ** zipf_s``).
        task_kib: Blob size in KiB.
        reads: Trace length (draws from the zipf distribution).
        zipf_s: Skew exponent; ~1.2 sends most reads to a few blobs.
        hot_ranks: How many top ranks count as "hot" for the hot-read
            latency metric (0: ``max(1, tasks // 8)``).
        step_seconds: Simulated seconds between reads — the clock the
            temperatures decay and the daemon scans on.
        rng_seed: Seed of the data generator and the trace sampler.
        dtype/distribution: Synthetic buffer shape (analyzer hints stay
            inferred, like any real write).
        shuffle_writes: Write the population in a seeded-shuffled order,
            so arrival order does not correlate with future hotness (in
            write order, write-time placement would park the hottest
            ranks on the fastest tier by accident and there would be
            nothing left for lifecycle tiering to fix).
        lifecycle: Daemon policy for the lifecycle run;
            :func:`run_zipf_trace` forces ``enabled`` per run.
    """

    tasks: int = 48
    task_kib: int = 4
    reads: int = 384
    zipf_s: float = 1.4
    hot_ranks: int = 0
    step_seconds: float = 0.25
    rng_seed: int = 0
    dtype: str = "float64"
    distribution: str = "gamma"
    shuffle_writes: bool = True
    lifecycle: LifecycleConfig = field(
        default_factory=lambda: LifecycleConfig(enabled=True, scan_interval=2.0)
    )

    @property
    def hot_count(self) -> int:
        return self.hot_ranks if self.hot_ranks else max(1, self.tasks // 8)


@dataclass
class ZipfTraceResult:
    """One run's empirical bill and latency profile."""

    lifecycle_enabled: bool
    storage_dollars: float = 0.0
    access_dollars: float = 0.0
    migration_dollars: float = 0.0
    reads: int = 0
    hot_reads: int = 0
    read_seconds: float = 0.0      # modeled wait, all reads
    hot_read_seconds: float = 0.0  # modeled wait, reads of hot-rank blobs
    promotions: int = 0
    demotions: int = 0
    tier_residency: dict = field(default_factory=dict)
    status: dict | None = None

    @property
    def total_dollars(self) -> float:
        return self.storage_dollars + self.access_dollars + self.migration_dollars

    @property
    def mean_read_seconds(self) -> float:
        return self.read_seconds / self.reads if self.reads else 0.0

    @property
    def mean_hot_read_seconds(self) -> float:
        return self.hot_read_seconds / self.hot_reads if self.hot_reads else 0.0


def _trace_hierarchy(config: ZipfTraceConfig):
    """RAM holds only a sliver of the population, so write-time placement
    must spill most blobs down — the gap lifecycle tiering then closes."""
    total = config.tasks * config.task_kib * KiB
    return ares_hierarchy(
        ram_capacity=max(total // 12, 2 * config.task_kib * KiB),
        nvme_capacity=max(total // 3, 4 * config.task_kib * KiB),
        bb_capacity=total,
        nodes=1,
    )


def zipf_probabilities(tasks: int, s: float) -> np.ndarray:
    """Rank-indexed zipf pmf: ``p[r] ∝ 1 / (r + 1) ** s``."""
    weights = 1.0 / np.power(np.arange(1, tasks + 1, dtype=np.float64), s)
    return weights / weights.sum()


def run_zipf_trace(
    config: ZipfTraceConfig | None = None,
    lifecycle: bool = True,
    seed=None,
) -> ZipfTraceResult:
    """Replay the seeded zipfian trace; returns the empirical bill.

    ``lifecycle=False`` runs the write-time-placement baseline: same
    engine, same trace, daemon disabled — the control the acceptance
    gate compares against. Pass a shared profiling ``seed`` to amortize
    bootstrap across runs (and keep both engines' plans identical).
    """
    config = config if config is not None else ZipfTraceConfig()
    lc = config.lifecycle
    daemon_config = LifecycleConfig(
        **{**lc.__dict__, "enabled": lifecycle}
    )
    hierarchy = _trace_hierarchy(config)
    clock = SimClock()
    engine = HCompress(
        hierarchy,
        HCompressConfig(lifecycle=daemon_config),
        seed=seed,
        clock=lambda: clock.now,
    )
    cost = TierCostModel(
        hierarchy,
        storage_price=lc.storage_price,
        access_price=lc.access_price,
    )
    rng = np.random.default_rng(config.rng_seed)
    result = ZipfTraceResult(lifecycle_enabled=lifecycle)

    buffers = {
        f"zipf/t{rank}": synthetic_buffer(
            config.dtype, config.distribution, config.task_kib * KiB, rng
        )
        for rank in range(config.tasks)
    }
    write_order = list(buffers)
    if config.shuffle_writes:
        write_order = [write_order[i] for i in rng.permutation(config.tasks)]
    for task_id in write_order:
        written = engine.compress(buffers[task_id], task_id=task_id)
        clock.advance(written.io_seconds + written.compress_seconds)

    def bill_storage(dt: float) -> None:
        for task_id in engine.manager.task_ids():
            for entry in engine.manager.task_entries(task_id):
                tier = hierarchy.find(entry.key)
                if tier is not None:
                    result.storage_dollars += (
                        cost.storage_rate(tier.spec.name,
                                          tier.extent(entry.key).accounted_size)
                        * dt
                    )

    probabilities = zipf_probabilities(config.tasks, config.zipf_s)
    trace = rng.choice(config.tasks, size=config.reads, p=probabilities)
    hot = set(range(config.hot_count))
    for rank in trace:
        clock.advance(config.step_seconds)
        bill_storage(config.step_seconds)
        read = engine.decompress(f"zipf/t{rank}")
        wait = read.io_seconds + read.decompress_seconds
        clock.advance(wait)
        result.reads += 1
        result.read_seconds += wait
        result.access_dollars += wait * lc.access_price
        if int(rank) in hot:
            result.hot_reads += 1
            result.hot_read_seconds += wait
        if engine.lifecycle is not None:
            engine.lifecycle.step()

    if engine.lifecycle is not None:
        stats = engine.lifecycle.stats
        result.migration_dollars = stats.migration_seconds * lc.access_price
        result.promotions = stats.promotions
        result.demotions = stats.demotions
        result.status = engine.lifecycle.status()
    residency: dict[str, int] = {}
    for task_id in engine.manager.task_ids():
        entry = engine.manager.task_entries(task_id)[0]
        tier = hierarchy.find(entry.key)
        if tier is not None:
            name = tier.spec.name
            residency[name] = residency.get(name, 0) + 1
    result.tier_residency = residency
    engine.close()
    return result
