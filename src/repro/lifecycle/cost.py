"""TCO cost model: modeled dollars per tier, derived from the TierSpecs.

Real tier pricing tracks speed: DRAM costs orders of magnitude more per
GB·s than a parallel file system. The reproduction has no price sheet, so
the model derives one from the only spec field that cleanly orders the
hierarchy — access latency — and anchors it at the slowest tier:

    price(tier) = storage_price * sqrt(latency_slowest / latency_tier)

per GB·second. On the Ares specs (DESIGN.md §2) that yields roughly
1x (PFS) : 5x (burst buffer) : 16x (NVMe) : 71x (RAM) — a compressed but
correctly-ordered version of real $/GB spreads, and monotone for *any*
hierarchy whose latencies order its tiers. The square root keeps the top
tier affordable enough that hot data can earn it (docs/LIFECYCLE.md walks
a worked example).

The second half of the objective prices time: every expected second a
reader waits (tier I/O + codec decode) costs ``access_price`` modeled
dollars. Storage cost pushes cold data down; access cost pulls hot data
up; the daemon migrates when the net saving amortizes the migration's own
I/O within the configured horizon.
"""

from __future__ import annotations

import math

from ..codecs.profiles import get_profile
from ..units import MB, GiB

__all__ = ["TierCostModel"]


class TierCostModel:
    """Modeled $/GB·s per tier plus the access/migration cost terms.

    Args:
        hierarchy: The :class:`~repro.tiers.StorageHierarchy` to price.
        storage_price: Dollars per GB·second on the slowest tier.
        access_price: Dollars per second of expected reader wait.
    """

    def __init__(
        self,
        hierarchy,
        storage_price: float = 1.0,
        access_price: float = 1.0,
    ) -> None:
        self.hierarchy = hierarchy
        self.access_price = access_price
        anchor = max(tier.spec.latency for tier in hierarchy)
        if anchor <= 0:
            anchor = 1.0
        self._per_byte_second: dict[str, float] = {}
        for tier in hierarchy:
            latency = tier.spec.latency if tier.spec.latency > 0 else anchor
            grade = math.sqrt(anchor / latency)
            self._per_byte_second[tier.spec.name] = (
                storage_price * grade / GiB
            )

    def dollars_per_gb_s(self, tier_name: str) -> float:
        """The tier's modeled price in dollars per GB·second."""
        return self._per_byte_second[tier_name] * GiB

    def storage_rate(self, tier_name: str, nbytes: int) -> float:
        """Dollars per second to keep ``nbytes`` resident on the tier."""
        return nbytes * self._per_byte_second[tier_name]

    def read_seconds(self, tier, nbytes: int, codec: str, length: int) -> float:
        """Expected modeled seconds for one read of a blob: tier I/O on
        the stored footprint plus nominal decode time on the logical
        length (``codec == "none"`` decodes for free)."""
        seconds = tier.io_seconds(nbytes)
        if codec != "none":
            profile = get_profile(codec)
            seconds += length / (profile.decompress_mbps * MB)
        return seconds

    def access_rate(
        self, tier, nbytes: int, codec: str, length: int, read_rate: float
    ) -> float:
        """Dollars per second of expected reader wait at ``read_rate``
        reads per modeled second."""
        return (
            read_rate
            * self.read_seconds(tier, nbytes, codec, length)
            * self.access_price
        )

    def cost_rate(
        self, tier, nbytes: int, codec: str, length: int, read_rate: float
    ) -> float:
        """The full objective for one blob: storage + access, $/second."""
        return self.storage_rate(tier.spec.name, nbytes) + self.access_rate(
            tier, nbytes, codec, length, read_rate
        )

    def migration_dollars(
        self,
        src,
        dst,
        src_bytes: int,
        dst_bytes: int,
        old_codec: str,
        new_codec: str,
        length: int,
    ) -> float:
        """One-time cost of moving a blob: read it off the source, decode
        the old codec, encode the new one, write the destination — every
        modeled second priced at ``access_price`` (migration I/O competes
        with readers for the same lanes)."""
        seconds = src.io_seconds(src_bytes) + dst.io_seconds(dst_bytes)
        if old_codec != "none":
            seconds += length / (get_profile(old_codec).decompress_mbps * MB)
        if new_codec != "none":
            seconds += length / (get_profile(new_codec).compress_mbps * MB)
        return seconds * self.access_price

    def expected_ratio(self, codec: str) -> float:
        """Generic expected compression ratio of a codec: the mean of its
        profile's distribution hints (1.0 when the profile carries none).
        Used to size re-encoded *modeled* pieces, whose payloads were
        never materialised."""
        if codec == "none":
            return 1.0
        hints = get_profile(codec).ratio_hints
        if not hints:
            return 1.0
        return sum(hints.values()) / len(hints)
