"""Data lifecycle tiering: background recompression + TCO cost optimizer.

Write-time placement (HCDP) is a one-shot decision; this package makes
placement *follow* data temperature over its lifetime. A per-engine
:class:`LifecycleDaemon` — off by default, stepped cooperatively on the
simulated clock — tracks per-blob access recency/frequency, prices every
blob's residence against a :class:`TierCostModel` (modeled $/GB·s per
tier derived from the TierSpecs, plus an access-latency penalty), and
migrates the biggest savers: hot blobs up with fast codecs, cold blobs
down re-encoded with heavy ones. Migrations ride the engine's WAL +
checkpoint machinery so a crash at any point leaves each blob readable
at exactly one tier. See docs/LIFECYCLE.md.
"""

from .config import LifecycleConfig
from .cost import TierCostModel
from .daemon import AccessRecord, LifecycleDaemon, LifecycleStats, Migration

__all__ = [
    "AccessRecord",
    "LifecycleConfig",
    "LifecycleDaemon",
    "LifecycleStats",
    "Migration",
    "TierCostModel",
]
