"""The background lifecycle daemon: track temperature, re-decide placement.

Write-time placement (the HCDP plan) is the paper's contribution; this
daemon is the arc beyond it: placement should *follow* data temperature
over its lifetime. The daemon keeps a per-task access record (decayed
exponentially on the simulated clock), scores every cataloged blob
against the :class:`~repro.lifecycle.cost.TierCostModel` objective, and
migrates the biggest savers — hot blobs up, re-encoded with a fast codec;
cold blobs down, re-encoded with a heavy one.

Migrations ride the engine's existing durability machinery
(docs/LIFECYCLE.md has the full crash argument):

1. **copy** — every piece is re-encoded and placed on the destination
   tier under a *new* key (``task/gN/i``), while the catalog and journal
   still reference the old keys. A crash here strands the new copies as
   orphans, which recovery's sweep reclaims; the blob stays readable at
   the source.
2. **journal** — one idempotent ``commit`` record re-points the task at
   the new entries, durable *before* the in-memory catalog mutates (the
   same WAL discipline as writes). A crash after the sync replays the new
   placement and strands the *old* keys as orphans instead.
3. **evict** — the old extents are released. A crash mid-loop leaves the
   remainder as orphans; either way exactly one readable copy survives.

Four crash sites (``lifecycle.pre_copy`` / ``post_copy`` /
``post_journal`` / ``post_evict``) pin those windows for the
``sweep_crash_sites`` harness.

The daemon is strictly cooperative: it runs only when :meth:`step` is
called, self-rate-limits to ``scan_interval``, caps migrations per step,
pauses when the QoS brownout ladder climbs past its configured rung, and
skips destinations a circuit breaker has quarantined — background
re-placement must never starve foreground deadlines.
"""

from __future__ import annotations

import math
import time
import zlib
from dataclasses import dataclass, field

from ..codecs.metadata import HEADER_SIZE, unwrap_payload, wrap_payload
from ..errors import CapacityError, CorruptDataError, TierError
from ..hashing import content_hash64
from .config import LifecycleConfig
from .cost import TierCostModel

__all__ = ["AccessRecord", "LifecycleDaemon", "LifecycleStats", "Migration"]


@dataclass
class AccessRecord:
    """Exponentially-decayed access temperature of one task.

    ``temperature`` counts recent accesses, halving every
    ``half_life`` modeled seconds of idleness; ``touched_at`` is the
    modeled time of the last update. The expected read rate the
    objective consumes is ``temperature / half_life``.
    """

    temperature: float
    touched_at: float

    def decayed(self, now: float, half_life: float) -> float:
        idle = max(now - self.touched_at, 0.0)
        return self.temperature * math.pow(2.0, -idle / half_life)


@dataclass(frozen=True)
class Migration:
    """One executed (or scheduled) migration, for status/tests."""

    task_id: str
    src_tier: str
    dst_tier: str
    old_codec: str
    new_codec: str
    direction: str  # "promote" | "demote"
    bytes_moved: int
    modeled_seconds: float
    saving_rate: float  # modeled $/s the move earns


@dataclass
class LifecycleStats:
    """Cumulative daemon counters (mirrored by ``Observability``)."""

    scans: int = 0
    paused: int = 0
    promotions: int = 0
    demotions: int = 0
    failed: int = 0
    skipped_quarantined: int = 0
    bytes_moved: int = 0
    migration_seconds: float = 0.0
    saved_rate: float = 0.0  # cumulative modeled $/s earned by migrations
    cost_rate: float = 0.0   # catalog-wide modeled $/s at the last scan
    last_scan: float = 0.0
    migrations: list[Migration] = field(default_factory=list)


class LifecycleDaemon:
    """Per-engine background recompression/re-tiering daemon.

    Constructed by :class:`~repro.core.hcompress.HCompress` when
    ``LifecycleConfig.enabled`` — engines with the subsystem off hold
    ``None`` and stay byte-identical. The daemon only reads the engine's
    public surfaces (catalog helpers, hierarchy, pool, journal via the
    manager, QoS governor read-only) and mutates placement exclusively
    through the manager's WAL-disciplined
    :meth:`~repro.core.manager.CompressionManager.replace_task_entries`.
    """

    def __init__(self, engine, config: LifecycleConfig) -> None:
        self.engine = engine
        self.config = config
        self.clock = engine._clock if engine._clock is not None else time.monotonic
        self.cost = TierCostModel(
            engine.hierarchy,
            storage_price=config.storage_price,
            access_price=config.access_price,
        )
        self.stats = LifecycleStats()
        self.access: dict[str, AccessRecord] = {}
        self._next_scan = float("-inf")
        # Codec preference resolved once against the engine's roster.
        pool = engine.pool
        self.promote_codec = next(
            (c for c in config.promote_codecs if c in pool), "none"
        )
        self.demote_codec = next(
            (c for c in config.demote_codecs if c in pool), "none"
        )

    # -- access tracking (called from the engine's read/write paths) ---------

    def note_write(self, task_id: str) -> None:
        """Record a write: a fresh blob starts warm (one access)."""
        self._touch(task_id)

    def note_read(self, task_id: str) -> None:
        """Record a read against the task's decayed temperature."""
        self._touch(task_id)

    def _touch(self, task_id: str) -> None:
        now = self.clock()
        record = self.access.get(task_id)
        if record is None:
            self.access[task_id] = AccessRecord(1.0, now)
        else:
            record.temperature = (
                record.decayed(now, self.config.half_life) + 1.0
            )
            record.touched_at = now

    def read_rate(self, task_id: str, now: float | None = None) -> float:
        """Expected reads per modeled second for a task (0 if untracked)."""
        record = self.access.get(task_id)
        if record is None:
            return 0.0
        if now is None:
            now = self.clock()
        return (
            record.decayed(now, self.config.half_life) / self.config.half_life
        )

    # -- the daemon step ------------------------------------------------------

    def step(self, force: bool = False) -> list[Migration]:
        """One daemon tick: scan, score, migrate the best candidates.

        Self-rate-limited to ``scan_interval`` unless ``force``; returns
        the migrations executed this step (empty on a skipped or paused
        tick). Raises nothing the engine's callers don't already handle —
        a migration that loses a race with capacity rolls itself back and
        is counted in ``stats.failed``.
        """
        now = self.clock()
        if not force and now < self._next_scan:
            return []
        qos = self.engine.qos
        if (
            qos is not None
            and int(qos.brownout.level) > self.config.max_brownout_level
        ):
            # Overloaded: background I/O yields to foreground traffic. The
            # scan clock still advances so a long brownout does not queue
            # up a burst of back-to-back scans when pressure lifts.
            self.stats.paused += 1
            self._next_scan = now + self.config.scan_interval
            return []
        obs = self.engine.obs
        if obs is None:
            return self._step(now)
        with obs.region("lifecycle.step") as sp:
            migrations = self._step(now)
            sp.set_attr("migrations", len(migrations))
            modeled = sum(m.modeled_seconds for m in migrations)
            sp.charge_modeled(modeled)
        return migrations

    def _step(self, now: float) -> list[Migration]:
        self.stats.scans += 1
        self.stats.last_scan = now
        self._next_scan = now + self.config.scan_interval
        obs = self.engine.obs
        if obs is not None:
            obs.record_lifecycle_scan()

        candidates = self._scan(now)
        executed: list[Migration] = []
        for plan in candidates[: self.config.max_migrations_per_step]:
            done = self._migrate(plan)
            if done is None:
                self.stats.failed += 1
                continue
            executed.append(done)
            self.stats.migrations.append(done)
            self.stats.bytes_moved += done.bytes_moved
            self.stats.migration_seconds += done.modeled_seconds
            self.stats.saved_rate += done.saving_rate
            if done.direction == "promote":
                self.stats.promotions += 1
            else:
                self.stats.demotions += 1
            if obs is not None:
                obs.record_lifecycle_migration(
                    done.direction, done.bytes_moved, done.modeled_seconds
                )
        if obs is not None:
            obs.m_lifecycle_cost.set(self.stats.cost_rate)
        return executed

    # -- scan + score ---------------------------------------------------------

    def _scan(self, now: float) -> list[Migration]:
        """Score every cataloged task; return migrations worth executing,
        best saver first. Also drops access records of evicted tasks and
        refreshes the catalog-wide cost rate."""
        engine = self.engine
        manager = engine.manager
        hierarchy = engine.hierarchy
        cost = self.cost
        config = self.config
        qos = engine.qos
        live = manager.task_ids()
        live_set = set(live)
        for task_id in [t for t in self.access if t not in live_set]:
            del self.access[task_id]

        total_rate = 0.0
        candidates: list[Migration] = []
        for task_id in live:
            entries = manager.task_entries(task_id)
            if not entries:
                continue
            src = hierarchy.find(entries[0].key)
            if src is None:
                continue
            src_level = hierarchy.level_of(src.spec.name)
            rate = self.read_rate(task_id, now)
            old_codec = entries[0].codec
            stored = 0
            length = 0
            for entry in entries:
                tier = hierarchy.find(entry.key)
                if tier is None:
                    stored = -1
                    break
                stored += tier.extent(entry.key).accounted_size
                length += entry.length
            if stored < 0:
                continue
            current = cost.cost_rate(src, stored, old_codec, length, rate)
            total_rate += current

            best: Migration | None = None
            for level, dst in enumerate(hierarchy):
                if level == src_level or not dst.available:
                    continue
                direction = "promote" if level < src_level else "demote"
                new_codec = (
                    self.promote_codec
                    if direction == "promote"
                    else self.demote_codec
                )
                new_stored = self._estimate_stored(
                    entries, stored, old_codec, new_codec
                )
                if not dst.fits(new_stored):
                    continue
                if qos is not None and qos.tier_quarantined(dst.spec.name):
                    self.stats.skipped_quarantined += 1
                    continue
                saving = current - cost.cost_rate(
                    dst, new_stored, new_codec, length, rate
                )
                payoff = saving * config.horizon - cost.migration_dollars(
                    src, dst, stored, new_stored, old_codec, new_codec, length
                )
                if payoff <= config.threshold:
                    continue
                if best is None or saving > best.saving_rate:
                    best = Migration(
                        task_id=task_id,
                        src_tier=src.spec.name,
                        dst_tier=dst.spec.name,
                        old_codec=old_codec,
                        new_codec=new_codec,
                        direction=direction,
                        bytes_moved=new_stored,
                        modeled_seconds=0.0,
                        saving_rate=saving,
                    )
            if best is not None:
                candidates.append(best)
        self.stats.cost_rate = total_rate
        candidates.sort(key=lambda m: (-m.saving_rate, m.task_id))
        return candidates

    def _estimate_stored(
        self, entries, stored: int, old_codec: str, new_codec: str
    ) -> int:
        """Estimated footprint after re-encoding with ``new_codec``.

        Scaled from the blob's *actual* current size by the codecs'
        relative profile ratios, not from the profile's absolute hint —
        absolute hints average over every distribution and badly misprice
        poorly-compressible data. For a same-codec move (the common
        promote) the estimate is exact, which is what kills promote/demote
        ping-pong: the post-migration rescoring sees the same numbers the
        scan did.
        """
        if new_codec == old_codec:
            return stored
        headers = len(entries) * HEADER_SIZE
        payload = max(stored - headers, 1)
        scale = self.cost.expected_ratio(old_codec) / max(
            self.cost.expected_ratio(new_codec), 1e-9
        )
        return headers + max(1, math.ceil(payload * scale))

    # -- migration executor ---------------------------------------------------

    def _migrate(self, plan: Migration) -> Migration | None:
        """Execute one migration under the crash discipline above.

        Returns the realized migration (actual bytes/seconds), or ``None``
        when the move lost a race (capacity changed, piece vanished) — the
        copy phase rolls itself back and the blob stays where it was.
        ``SimulatedCrashError`` deliberately propagates: it models process
        death, and the recovery sweeps must clean up whatever it strands.
        """
        # Imported here, not at module scope: core.config carries a
        # LifecycleConfig field, so a top-level import would be circular.
        from ..core.manager import CatalogEntry

        engine = self.engine
        manager = engine.manager
        hierarchy = engine.hierarchy
        crashpoints = engine.crashpoints
        try:
            entries = manager.task_entries(plan.task_id)
        except TierError:
            return None
        dst = hierarchy.by_name(plan.dst_tier)
        generation = self._next_generation(plan.task_id, entries)

        if crashpoints is not None:
            crashpoints.reached("lifecycle.pre_copy")
        placed: list[str] = []
        new_entries: list[CatalogEntry] = []
        sources = []
        seconds = 0.0
        moved = 0
        try:
            for index, entry in enumerate(entries):
                src = hierarchy.find(entry.key)
                if src is None:
                    raise TierError(f"piece {entry.key!r} lost from every tier")
                sources.append(src)
                extent = src.extent(entry.key)
                new_key = f"{plan.task_id}/g{generation}/{index}"
                if extent.has_payload:
                    blob = src.get(entry.key)
                    if entry.crc32 is not None and zlib.crc32(blob) != entry.crc32:
                        raise CorruptDataError(
                            f"piece {entry.key!r} failed checksum validation "
                            "during migration"
                        )
                    data, header = unwrap_payload(blob)
                    if (
                        entry.digest is not None
                        and content_hash64(data) != entry.digest
                    ):
                        raise CorruptDataError(
                            f"piece {entry.key!r} failed content-digest "
                            "validation during migration"
                        )
                    new_blob, _ = wrap_payload(
                        data,
                        start_offset=header.start_offset,
                        codec_name=plan.new_codec,
                    )
                    accounted = len(new_blob)
                    crc = (
                        zlib.crc32(new_blob)
                        if entry.crc32 is not None
                        else None
                    )
                    payload: bytes | None = new_blob
                else:
                    # Modeled piece (no payload to transcode): re-size by
                    # the same relative-ratio estimate the scan used.
                    accounted = self._estimate_stored(
                        [entry], extent.accounted_size,
                        entry.codec, plan.new_codec,
                    )
                    payload = None
                    crc = None
                seconds += src.io_seconds(extent.accounted_size)
                seconds += dst.io_seconds(accounted)
                dst.put(new_key, payload, accounted_size=accounted)
                placed.append(new_key)
                moved += accounted
                new_entries.append(
                    # The re-encode changes the stored bytes (codec, CRC)
                    # but never the content — the end-to-end digest rides
                    # along unchanged.
                    CatalogEntry(
                        new_key, entry.length, plan.new_codec, crc,
                        entry.digest,
                    )
                )
        except (TierError, CapacityError, CorruptDataError):
            # Lost a race (the scan's fits() estimate went stale, a tier
            # flapped, a piece moved) or hit corruption: roll the
            # half-copied migration back; the blob stays where it was.
            for key in placed:
                dst.evict(key)
            return None
        if crashpoints is not None:
            crashpoints.reached("lifecycle.post_copy")

        # WAL discipline: the journal re-points the task before the
        # in-memory catalog does (lifecycle.post_journal fires between).
        manager.replace_task_entries(plan.task_id, new_entries)

        for entry, src in zip(entries, sources):
            src.evict(entry.key)
        if crashpoints is not None:
            crashpoints.reached("lifecycle.post_evict")
        return Migration(
            task_id=plan.task_id,
            src_tier=plan.src_tier,
            dst_tier=plan.dst_tier,
            old_codec=plan.old_codec,
            new_codec=plan.new_codec,
            direction=plan.direction,
            bytes_moved=moved,
            modeled_seconds=seconds,
            saving_rate=plan.saving_rate,
        )

    @staticmethod
    def _next_generation(task_id: str, entries: list[CatalogEntry]) -> int:
        """Migration generation for fresh piece keys.

        Keys must never collide with live extents: originals are
        ``task/N``, generation ``g`` rewrites are ``task/gG/N``. Parsing
        the current keys (instead of counting in daemon state) keeps the
        scheme deterministic across restores, where recovery has already
        swept every non-catalog key off the tiers.
        """
        generation = 0
        prefix = f"{task_id}/g"
        for entry in entries:
            if entry.key.startswith(prefix):
                tail = entry.key[len(prefix):].split("/", 1)[0]
                if tail.isdigit():
                    generation = max(generation, int(tail))
        return generation + 1

    # -- status ---------------------------------------------------------------

    def status(self) -> dict:
        """JSON-friendly daemon state for the CLI and the shard router."""
        stats = self.stats
        return {
            "enabled": True,
            "scans": stats.scans,
            "paused": stats.paused,
            "promotions": stats.promotions,
            "demotions": stats.demotions,
            "failed": stats.failed,
            "skipped_quarantined": stats.skipped_quarantined,
            "bytes_moved": stats.bytes_moved,
            "migration_seconds": round(stats.migration_seconds, 9),
            "saved_rate": round(stats.saved_rate, 9),
            "cost_rate": round(stats.cost_rate, 9),
            "tracked_tasks": len(self.access),
            "promote_codec": self.promote_codec,
            "demote_codec": self.demote_codec,
        }
