"""Command-line interface: ``hcompress <subcommand>``.

Subcommands:

* ``profile``  — run the HCompress Profiler and write a JSON seed
  (the paper's HP-before-application step).
* ``codecs``   — measure the codec pool on a synthetic buffer.
* ``report``   — regenerate the paper's evaluation tables
  (``--fast`` for the smoke profile).
* ``demo``     — one compress/decompress round trip with the schema shown.
* ``chaos``    — run a workload under fault injection (tier outage,
  transient errors, corruption) and print the recovery report.
* ``stats``    — drive a repeated-burst workload and print the engine's
  hot-path counters (plan cache, DP memo, sample-ratio cache, executor).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .units import GiB, KiB, MiB, fmt_bytes

__all__ = ["main"]


def _cmd_profile(args: argparse.Namespace) -> int:
    from .ccp import save_seed
    from .core import HCompressProfiler
    from .tiers import ares_hierarchy

    profiler = HCompressProfiler(
        mode=args.mode, rng=np.random.default_rng(args.rng_seed)
    )
    hierarchy = ares_hierarchy() if args.signature else None
    sizes = tuple(int(s) * KiB for s in args.sizes)
    seed = profiler.generate_seed(hierarchy=hierarchy, sizes=sizes)
    save_seed(seed, args.output)
    print(
        f"wrote {len(seed.observations)} observations to {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    from .codecs import CompressionLibraryPool
    from .datagen import synthetic_buffer

    pool = CompressionLibraryPool()
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    print(
        f"{args.kib} KiB of {args.dtype}/{args.distribution} data "
        f"(measured wall-clock; the simulator uses nominal profiles)\n"
    )
    print(f"{'codec':10s} {'ratio':>7s} {'comp MB/s':>10s} {'decomp MB/s':>12s}")
    for name in pool.names[1:]:
        cost = pool.measure(name, data)
        print(
            f"{name:10s} {cost.ratio:7.2f} {cost.compress_mbps:10.1f} "
            f"{cost.decompress_mbps:12.1f}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import main as report_main

    argv = []
    if args.fast:
        argv.append("--fast")
    if args.output:
        argv += ["--output", str(args.output)]
    return report_main(argv)


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import HCompress
    from .datagen import synthetic_buffer
    from .tiers import ares_hierarchy

    hierarchy = ares_hierarchy(
        ram_capacity=2 * MiB, nvme_capacity=4 * MiB, bb_capacity=1 * GiB,
        nodes=2,
    )
    print("bootstrapping engine (inline profiling)...", file=sys.stderr)
    engine = HCompress(hierarchy)
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    result = engine.compress(data, task_id="demo")
    print(f"input {fmt_bytes(len(data))}; schema:")
    for piece in result.pieces:
        print(
            f"  {piece.tier:<12} {piece.plan.codec:<8} "
            f"stored={fmt_bytes(piece.stored_size)} "
            f"ratio={piece.actual_ratio:.2f}"
        )
    assert engine.decompress("demo").data == data
    print("round-trip OK")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosConfig, FaultPlan, default_chaos_plan, run_chaos

    config = ChaosConfig(
        ranks=args.ranks,
        steps=args.steps,
        step_kib=args.step_kib,
        rng_seed=args.rng_seed,
    )
    plan = (
        FaultPlan.from_json(args.plan)
        if args.plan is not None
        else default_chaos_plan(config)
    )
    backends = ("HC", "BASE", "MTNC") if args.backend == "all" else (args.backend,)
    print(
        f"fault plan: {len(plan.events)} events over {plan.horizon:.1f}s "
        f"(seed {plan.seed}); workload: {config.ranks} ranks x "
        f"{config.steps} steps x {config.step_kib} KiB\n"
    )
    failed = 0
    for backend in backends:
        outcome = run_chaos(backend, plan=plan, config=config)
        print(outcome.summary())
        if args.verbose:
            print(
                f"      degraded plans={outcome.degraded_plans} "
                f"corruption detected={outcome.corruption_detected} "
                f"injected: {outcome.injected_errors} transient errors, "
                f"{outcome.injected_corruptions} corruptions"
            )
        if not outcome.all_data_intact:
            failed += 1
    if len(backends) == 1:
        return 0 if failed == 0 else 1
    return 0  # comparison mode: baseline failures are the expected result


def _cmd_stats(args: argparse.Namespace) -> int:
    import time

    from .core import HCompress, HCompressConfig, PlanCacheConfig
    from .datagen import synthetic_buffer
    from .tiers import ares_hierarchy

    hierarchy = ares_hierarchy(
        ram_capacity=64 * MiB, nvme_capacity=128 * MiB, bb_capacity=4 * GiB,
        nodes=2,
    )
    config = HCompressConfig(
        plan_cache=PlanCacheConfig(enabled=not args.no_cache)
    )
    print("bootstrapping engine (inline profiling)...", file=sys.stderr)
    engine = HCompress(hierarchy, config)
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    wall = time.perf_counter()
    for i in range(args.tasks):
        engine.compress(
            data, modeled_size=args.modeled_kib * KiB, task_id=f"stats-{i}"
        )
    wall = time.perf_counter() - wall
    stats = engine.engine.stats
    manager = engine.manager
    print(
        f"burst: {args.tasks} x {fmt_bytes(args.modeled_kib * KiB)} modeled "
        f"tasks ({fmt_bytes(args.kib * KiB)} sample) in {wall:.3f}s "
        f"({args.tasks / wall:,.0f} tasks/s)"
    )
    print(
        f"plan cache  : {'on' if config.plan_cache.enabled else 'off'}  "
        f"hits={stats.plan_cache_hits} misses={stats.plan_cache_misses} "
        f"invalidations={stats.plan_cache_invalidations} "
        f"hit-rate={stats.plan_cache_hit_rate:.1%}"
    )
    print(
        f"DP memo     : hits={stats.memo_hits} misses={stats.memo_misses} "
        f"hit-rate={stats.hit_rate:.1%}"
    )
    print(
        f"plans       : tasks={stats.tasks_planned} "
        f"pieces={stats.pieces_emitted} degraded={stats.degraded_plans} "
        f"replans={engine.replans}"
    )
    print(
        f"sample cache: hits={manager.sample_cache_hits} "
        f"misses={manager.sample_cache_misses}"
    )
    print(
        f"executor    : {'on' if config.executor.enabled else 'off'}  "
        f"parallel pieces={manager.parallel_pieces} "
        f"spills={manager.spill_events}"
    )
    accuracy = engine.accuracy()
    print(
        f"cost model  : version={engine.predictor.model_version} "
        f"accuracy={'n/a' if accuracy is None else f'{accuracy:.1%}'} "
        f"monitor epoch={engine.monitor.state_epoch}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hcompress", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="generate a JSON profiler seed")
    p.add_argument("--output", type=Path, default=Path("hcompress_seed.json"))
    p.add_argument("--mode", choices=("nominal", "measured"), default="nominal")
    p.add_argument("--sizes", nargs="+", default=["8", "32"],
                   help="corpus buffer sizes in KiB (need >= 2 distinct)")
    p.add_argument("--signature", action="store_true",
                   help="include the default Ares system signature")
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("codecs", help="measure the codec pool")
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--kib", type=int, default=256)
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_codecs)

    p = sub.add_parser("report", help="regenerate the paper's evaluation")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--output", type=Path, default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("demo", help="one compress/decompress round trip")
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--kib", type=int, default=1024)
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser(
        "chaos", help="run a workload under fault injection"
    )
    p.add_argument(
        "--plan", type=Path, default=None,
        help="JSON FaultPlan (default: mid-run NVMe outage + flaky tiers)",
    )
    p.add_argument(
        "--backend", choices=("HC", "BASE", "MTNC", "all"), default="all",
        help="engine(s) to drive through the faulty hierarchy",
    )
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--step-kib", type=int, default=16)
    p.add_argument("--rng-seed", type=int, default=7)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "stats", help="hot-path counters over a repeated-burst workload"
    )
    p.add_argument("--tasks", type=int, default=256)
    p.add_argument("--kib", type=int, default=64, help="sample buffer KiB")
    p.add_argument("--modeled-kib", type=int, default=1024,
                   help="modeled task size in KiB")
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the plan cache (seed behaviour)")
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
