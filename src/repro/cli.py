"""Command-line interface: ``hcompress <subcommand>``.

Subcommands:

* ``profile``  — run the HCompress Profiler and write a JSON seed
  (the paper's HP-before-application step).
* ``codecs``   — measure the codec pool on a synthetic buffer.
* ``report``   — regenerate the paper's evaluation tables
  (``--fast`` for the smoke profile).
* ``demo``     — one compress/decompress round trip with the schema shown.
* ``chaos``    — run a workload under fault injection (tier outage,
  transient errors, corruption) and print the recovery report; with
  ``--crash-at`` run the crash-consistency harness instead (``all``
  sweeps every crash site); with ``--overload`` run the QoS overload
  storm (load above the drain rate plus a flapping tier); with
  ``--kill-shard`` run the shard-failover harness: kill one shard of a
  sharded deployment mid-storm and verify failure-domain isolation;
  with ``--scrub`` run the crash harness with latent at-rest corruption
  planted between writes and the background scrubber healing it
  (pairs with ``--crash-at scrub.*`` to die mid-repair).
* ``fsck``     — offline integrity check of a recovery directory or
  sharded deployment root: snapshot/journal structure, LSN continuity,
  catalog reconstruction, shard manifest and replica directories
  (``--repair`` fixes the safe subset: torn journal tails and stale
  temp files).
* ``checkpoint`` — run a journaled workload and snapshot the engine into
  a recovery directory.
* ``recover``  — crash a journaled workload at a chosen site, restore
  from the recovery directory, and verify the durability invariants.
* ``lifecycle`` — replay a seeded zipfian access trace with the
  background lifecycle daemon stepping on the simulated clock, against
  the write-time-placement baseline: per-run modeled TCO bill (storage +
  access + migration dollars), hot-read latency, tier residency, and the
  daemon's status counters (``--json`` for the raw dicts).
* ``stats``    — drive a repeated-burst workload and print the engine's
  hot-path counters (plan cache, DP memo, sample-ratio cache, executor);
  ``--shards N`` drives a sharded deployment and sums the counters.
* ``metrics``  — run an instrumented VPIC checkpoint workload and export
  the full metrics registry (human table or ``--json``); ``--shards N``
  runs a multi-tenant burst over N shards and exports one merged
  registry with a ``shard`` label per series.
* ``trace``    — same workload; export the span trace (per-span rollup,
  or Chrome ``chrome://tracing`` JSON via ``--json`` / ``--output``);
  ``--shards N`` exports each shard's spans as its own trace process.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .units import GiB, KiB, MiB, fmt_bytes

__all__ = ["main"]


def _cmd_profile(args: argparse.Namespace) -> int:
    from .ccp import save_seed
    from .core import HCompressProfiler
    from .tiers import ares_hierarchy

    profiler = HCompressProfiler(
        mode=args.mode, rng=np.random.default_rng(args.rng_seed)
    )
    hierarchy = ares_hierarchy() if args.signature else None
    sizes = tuple(int(s) * KiB for s in args.sizes)
    seed = profiler.generate_seed(hierarchy=hierarchy, sizes=sizes)
    save_seed(seed, args.output)
    print(
        f"wrote {len(seed.observations)} observations to {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    from .codecs import CompressionLibraryPool
    from .datagen import synthetic_buffer

    pool = CompressionLibraryPool()
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    print(
        f"{args.kib} KiB of {args.dtype}/{args.distribution} data "
        f"(measured wall-clock; the simulator uses nominal profiles)\n"
    )
    print(f"{'codec':10s} {'ratio':>7s} {'comp MB/s':>10s} {'decomp MB/s':>12s}")
    for name in pool.names[1:]:
        cost = pool.measure(name, data)
        print(
            f"{name:10s} {cost.ratio:7.2f} {cost.compress_mbps:10.1f} "
            f"{cost.decompress_mbps:12.1f}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import main as report_main

    argv = []
    if args.fast:
        argv.append("--fast")
    if args.output:
        argv += ["--output", str(args.output)]
    return report_main(argv)


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import HCompress
    from .datagen import synthetic_buffer
    from .tiers import ares_hierarchy

    hierarchy = ares_hierarchy(
        ram_capacity=2 * MiB, nvme_capacity=4 * MiB, bb_capacity=1 * GiB,
        nodes=2,
    )
    print("bootstrapping engine (inline profiling)...", file=sys.stderr)
    engine = HCompress(hierarchy)
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    result = engine.compress(data, task_id="demo")
    print(f"input {fmt_bytes(len(data))}; schema:")
    for piece in result.pieces:
        print(
            f"  {piece.tier:<12} {piece.plan.codec:<8} "
            f"stored={fmt_bytes(piece.stored_size)} "
            f"ratio={piece.actual_ratio:.2f}"
        )
    assert engine.decompress("demo").data == data
    print("round-trip OK")
    return 0


def _crash_detail(outcome) -> str:
    return (
        f"      journal: {outcome.records_replayed} records replayed, "
        f"truncated tail={outcome.journal_truncated}; swept "
        f"{outcome.orphans_evicted} orphans, "
        f"{outcome.duplicates_evicted} duplicates; "
        f"idempotent replay={outcome.replay_idempotent}, "
        f"deterministic restore={outcome.double_restore_identical}"
    )


def _cmd_crash(args: argparse.Namespace) -> int:
    """The ``chaos --crash-at`` / ``recover`` harness driver."""
    from .faults import CrashConfig, run_crash_recovery, sweep_crash_sites
    from .recovery import CrashPlan

    # Arming a scrub.* site implies scrub mode — the site can only fire
    # while the scrubber is repairing planted rot.
    scrub = getattr(args, "scrub", False) or (
        args.crash_at is not None
        and args.crash_at != "all"
        and args.crash_at.startswith("scrub.")
    )
    config = CrashConfig(
        rng_seed=args.rng_seed,
        scrub=scrub,
        corrupt_every=getattr(args, "corrupt_every", 2) if scrub else 0,
        # Lifecycle migrations rename piece keys mid-run, which would
        # decouple the planted rot from the mirror the scrubber heals
        # from — scrub mode runs with the daemon off (as the sweep does).
        lifecycle=not scrub,
    )
    if args.crash_at == "all":
        hits = (1,) if getattr(args, "quick", False) else (1, 2)
        outcomes = sweep_crash_sites(hits=hits, config=config)
        violations = 0
        for outcome in outcomes:
            plan = outcome.plan
            status = "ok  " if outcome.holds else "FAIL"
            fired = "crashed" if outcome.crashed else "not reached"
            print(f"{status} {plan.site}@{plan.hit}: {fired}")
            if not outcome.holds:
                violations += 1
                print(_crash_detail(outcome))
        fired_count = sum(1 for o in outcomes if o.crashed)
        print(
            f"\n{len(outcomes)} crash points: {fired_count} fired, "
            f"{violations} invariant violations"
        )
        return 0 if violations == 0 else 1
    plan = CrashPlan(
        site=args.crash_at, hit=args.crash_hit, seed=args.rng_seed
    )
    outcome = run_crash_recovery(
        plan=plan, config=config, recovery_dir=getattr(args, "dir", None)
    )
    print(outcome.summary())
    print(_crash_detail(outcome))
    if scrub:
        print(
            f"      scrub: {outcome.corruptions_planted} corruptions "
            f"planted, {outcome.scrub_repairs} repairs; after restore: "
            f"{outcome.quarantined_after} quarantined, "
            f"{outcome.fsck_errors_after} fsck errors"
        )
    return 0 if outcome.holds else 1


def _cmd_overload(args: argparse.Namespace) -> int:
    """The ``chaos --overload`` storm driver (docs/RESILIENCE.md)."""
    from .faults import OverloadConfig, run_overload
    from .recovery import CRASH_SITES

    base = dict(
        tasks=args.overload_tasks,
        load_factor=args.load_factor,
        rng_seed=args.rng_seed,
    )
    if args.crash_at == "all":
        violations = 0
        for site in CRASH_SITES:
            outcome = run_overload(OverloadConfig(
                crash_site=site, crash_hit=args.crash_hit, **base
            ))
            status = "ok  " if outcome.holds else "FAIL"
            fired = "crashed" if outcome.crashed else "not reached"
            print(f"{status} {site}@{args.crash_hit}: {fired}")
            if not outcome.holds:
                violations += 1
                print(f"      {outcome.summary()}")
        print(f"\n{len(CRASH_SITES)} storm crash points: "
              f"{violations} contract violations")
        return 0 if violations == 0 else 1
    outcome = run_overload(OverloadConfig(
        crash_site=args.crash_at, crash_hit=args.crash_hit, **base
    ))
    print(outcome.summary())
    return 0 if outcome.holds else 1


def _cmd_shard_chaos(args: argparse.Namespace) -> int:
    """The ``chaos --kill-shard`` shard-failover harness driver."""
    from .faults import ShardChaosConfig, run_shard_chaos

    target = args.kill_shard
    base = dict(
        shards=args.shards,
        tasks=args.shard_tasks,
        tenants=args.tenants,
        rng_seed=args.rng_seed,
    )
    if target == "none":
        config = ShardChaosConfig(**base)
    elif target == "auto":
        config = ShardChaosConfig(kill_owner_of="tenant-0", **base)
    else:
        try:
            shard = int(target)
        except ValueError:
            print(
                f"--kill-shard must be a shard id, 'auto', or 'none', "
                f"not {target!r}",
                file=sys.stderr,
            )
            return 2
        config = ShardChaosConfig(kill_shard=shard, **base)
    outcome = run_shard_chaos(config)
    print(outcome.summary())
    if args.verbose:
        per_shard: dict[tuple[int, str], int] = {}
        for _, _, _, shard_id, status in outcome.events:
            key = (shard_id, status)
            per_shard[key] = per_shard.get(key, 0) + 1
        for (shard_id, status), count in sorted(per_shard.items()):
            print(f"      shard {shard_id}: {count} {status}")
    return 0 if outcome.holds else 1


def _cmd_failover_chaos(args: argparse.Namespace) -> int:
    """The ``chaos --failover`` replicated kill-and-promote driver."""
    from .faults import FailoverChaosConfig, run_failover_chaos
    from .recovery import CRASH_SITES

    base = dict(
        shards=args.shards,
        tasks=args.shard_tasks,
        tenants=args.tenants,
        replicas=args.replicas,
        promotion_seconds=args.promotion_seconds,
        # Keep the default 24/64 kill point and 12/64 checkpoint point
        # proportional when the storm is resized.
        kill_after=max(1, args.shard_tasks * 3 // 8),
        checkpoint_after=max(1, args.shard_tasks * 3 // 16),
        rng_seed=args.rng_seed,
    )
    target = args.kill_shard if args.kill_shard is not None else "auto"
    if target == "none":
        kill = {}
    elif target == "auto":
        kill = dict(kill_owner_of="tenant-0")
    else:
        try:
            kill = dict(kill_shard=int(target))
        except ValueError:
            print(
                f"--kill-shard must be a shard id, 'auto', or 'none', "
                f"not {target!r}",
                file=sys.stderr,
            )
            return 2
    if args.crash_at == "all":
        sites = tuple(
            s for s in CRASH_SITES if s.startswith("replication.")
        )
        violations = 0
        for site in sites:
            outcome = run_failover_chaos(FailoverChaosConfig(
                crash_site=site, crash_hit=args.crash_hit, **base, **kill
            ))
            status = "ok  " if outcome.holds else "FAIL"
            fired = "crashed" if outcome.crash_fired else "not reached"
            print(f"{status} {site}@{args.crash_hit}: {fired}")
            if not outcome.holds:
                violations += 1
                print(f"      {outcome.summary()}")
        print(
            f"\n{len(sites)} promotion crash points: "
            f"{violations} contract violations"
        )
        return 0 if violations == 0 else 1
    if args.crash_at is not None and not args.crash_at.startswith(
        "replication."
    ):
        print(
            "--failover arms replication.* crash sites only "
            "(use plain --crash-at for the engine sites)",
            file=sys.stderr,
        )
        return 2
    outcome = run_failover_chaos(FailoverChaosConfig(
        crash_site=args.crash_at, crash_hit=args.crash_hit, **base, **kill
    ))
    print(outcome.summary())
    if args.verbose:
        per_shard: dict[tuple[int, str], int] = {}
        for _, _, _, shard_id, status in outcome.events:
            key = (shard_id, status)
            per_shard[key] = per_shard.get(key, 0) + 1
        for (shard_id, status), count in sorted(per_shard.items()):
            print(f"      shard {shard_id}: {count} {status}")
    return 0 if outcome.holds else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosConfig, FaultPlan, default_chaos_plan, run_chaos

    if getattr(args, "failover", False):
        return _cmd_failover_chaos(args)
    if getattr(args, "kill_shard", None) is not None:
        return _cmd_shard_chaos(args)
    if getattr(args, "overload", False):
        return _cmd_overload(args)
    if args.crash_at is not None:
        return _cmd_crash(args)
    config = ChaosConfig(
        ranks=args.ranks,
        steps=args.steps,
        step_kib=args.step_kib,
        rng_seed=args.rng_seed,
    )
    plan = (
        FaultPlan.from_json(args.plan)
        if args.plan is not None
        else default_chaos_plan(config)
    )
    backends = ("HC", "BASE", "MTNC") if args.backend == "all" else (args.backend,)
    print(
        f"fault plan: {len(plan.events)} events over {plan.horizon:.1f}s "
        f"(seed {plan.seed}); workload: {config.ranks} ranks x "
        f"{config.steps} steps x {config.step_kib} KiB\n"
    )
    failed = 0
    for backend in backends:
        outcome = run_chaos(backend, plan=plan, config=config)
        print(outcome.summary())
        if args.verbose:
            print(
                f"      degraded plans={outcome.degraded_plans} "
                f"corruption detected={outcome.corruption_detected} "
                f"injected: {outcome.injected_errors} transient errors, "
                f"{outcome.injected_corruptions} corruptions"
            )
        if not outcome.all_data_intact:
            failed += 1
    if len(backends) == 1:
        return 0 if failed == 0 else 1
    return 0  # comparison mode: baseline failures are the expected result


def _cmd_replication(args: argparse.Namespace) -> int:
    """The ``replication`` demo: ship WAL, kill a primary, auto-promote."""
    import tempfile

    from .core import HCompressConfig
    from .core.config import RecoveryConfig
    from .datagen import synthetic_buffer
    from .replication import ReplicationConfig
    from .shard import ShardConfig, ShardedHCompress
    from .sim import SimClock
    from .tiers import ares_specs

    shards = args.shards
    specs = ares_specs(
        64 * MiB * shards, 128 * MiB * shards, 4 * GiB * shards,
        nodes=2 * shards,
    )
    clock = SimClock()
    print(
        "bootstrapping replicated shards (one shared profiling pass)...",
        file=sys.stderr,
    )
    data = synthetic_buffer(
        "float64", "gamma", args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    tenants = max(4, 2 * shards)
    with tempfile.TemporaryDirectory(prefix="hcompress-repl-") as root:
        sharded = ShardedHCompress(
            specs,
            HCompressConfig(recovery=RecoveryConfig(fsync=False)),
            ShardConfig(
                shards=shards,
                directory=root,
                replication=ReplicationConfig(
                    enabled=True,
                    replicas=args.replicas,
                    promotion_seconds=args.promotion_seconds,
                ),
            ),
            clock=lambda: clock.now,
        )
        task_ids = []
        for i in range(args.tasks):
            clock.advance(0.05)
            result = sharded.compress(
                data, task_id=f"repl-{i}", tenant=f"tenant-{i % tenants}"
            )
            task_ids.append(result.task.task_id)
        target = args.kill_shard
        killed = None
        if target != "none":
            killed = (
                sharded.ring.route("tenant-0")
                if target == "auto"
                else int(target)
            )
            sharded.kill_shard(killed)
            # The next dispatch triggers the promotion; while the modeled
            # window runs, the shard sheds retryably — run the clock out,
            # then verify.
            from .errors import FailoverInProgressError

            try:
                sharded.decompress(task_ids[0])
            except FailoverInProgressError:
                pass
            clock.advance_to(
                sharded.supervisor.health[killed].promote_ready_at + 0.01
            )
            verified = sum(
                1 for tid in task_ids
                if sharded.decompress(tid).data == data
            )
        else:
            verified = len(task_ids)
        status = sharded.replication_status()
        manifest_version = sharded.manifest.version
        sharded.close()
    if args.json:
        report = {
            "shards": shards,
            "replicas": args.replicas,
            "killed_shard": killed,
            "verified": verified,
            "tasks": len(task_ids),
            "manifest_version": manifest_version,
            "replication": {str(k): v for k, v in status.items()},
        }
        print(json.dumps(report, indent=2))
        return 0 if verified == len(task_ids) else 1
    print(
        f"{'shard':>5s} {'primary_lsn':>11s} {'shipped':>8s} "
        f"{'failovers':>9s} {'catch_ups':>9s}  replicas (id: lsn/lag @ dir)"
    )
    for shard_id, entry in sorted(status.items()):
        replicas = " ".join(
            f"r{rid}: {r['applied_lsn']}/{r['lag']} @ {r['directory']}"
            for rid, r in sorted(entry["replicas"].items())
        )
        print(
            f"{shard_id:5d} {entry['primary_lsn']:11d} "
            f"{entry['shipped_records']:8d} {entry['failovers']:9d} "
            f"{entry['catch_ups']:9d}  {replicas}"
        )
    kill_note = (
        f"killed shard {killed}, auto-promoted its standby; "
        if killed is not None
        else ""
    )
    print(
        f"\n{kill_note}{verified}/{len(task_ids)} acked writes read back "
        f"byte-identical; manifest v{manifest_version}"
    )
    return 0 if verified == len(task_ids) else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    """The offline ``fsck`` driver (docs/INTEGRITY.md)."""
    from .scrub import fsck_store

    report = fsck_store(args.dir, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    print(
        f"fsck {report.store}: {report.tasks} tasks, {report.pieces} "
        f"pieces, {report.digests_checked} digests checked"
    )
    for finding in report.findings:
        fixed = " [repaired]" if finding.repaired else ""
        print(f"  {finding.severity:7s} {finding.check}: "
              f"{finding.detail}{fixed}")
    verdict = (
        "clean" if report.clean
        else f"{report.count('fatal')} fatal, {report.count('error')} "
             f"errors, {report.count('warning')} warnings"
    )
    print(f"verdict: {verdict} (exit {report.exit_code})")
    return report.exit_code


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from .core import HCompress, HCompressConfig, RecoveryConfig
    from .datagen import synthetic_buffer
    from .tiers import ares_hierarchy

    hierarchy = ares_hierarchy(
        ram_capacity=4 * MiB, nvme_capacity=64 * MiB, bb_capacity=1 * GiB,
        nodes=1,
    )
    config = HCompressConfig(
        recovery=RecoveryConfig(
            enabled=True, directory=str(args.dir), fsync=not args.no_fsync
        )
    )
    print("bootstrapping engine (inline profiling)...", file=sys.stderr)
    engine = HCompress(hierarchy, config)
    rng = np.random.default_rng(args.rng_seed)
    for index in range(args.tasks):
        data = synthetic_buffer(
            args.dtype, args.distribution, args.kib * KiB, rng
        )
        engine.compress(data, task_id=f"ckpt-{index}")
    path = engine.checkpoint()
    journal = engine.journal
    report = {
        "snapshot": str(path),
        "snapshot_bytes": path.stat().st_size,
        "tasks": args.tasks,
        "journal_records": journal.records_appended,
        "journal_syncs": journal.syncs,
        "durable_lsn": journal.durable_lsn,
    }
    engine.close()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(
        f"checkpointed {args.tasks} tasks to {path} "
        f"({fmt_bytes(report['snapshot_bytes'])})"
    )
    print(
        f"journal: {report['journal_records']} records in "
        f"{report['journal_syncs']} syncs, durable LSN "
        f"{report['durable_lsn']} (compacted into the snapshot)"
    )
    return 0


def _stats_report(engine, config, args, wall: float) -> dict:
    """Build the ``stats`` report as one JSON-ready dict.

    Well-formed at any task count — including zero, where every counter is
    simply 0 and the throughput is reported as 0 rather than dividing by a
    degenerate wall time.
    """
    stats = engine.engine.stats
    manager = engine.manager
    accuracy = engine.accuracy()
    return {
        "burst": {
            "tasks": args.tasks,
            "batch_size": args.batch_size,
            "modeled_bytes_per_task": args.modeled_kib * KiB,
            "sample_bytes": args.kib * KiB,
            "wall_seconds": wall,
            "tasks_per_second": (args.tasks / wall) if wall > 0 else 0.0,
        },
        "plan_cache": {
            "enabled": config.plan_cache.enabled,
            "hits": stats.plan_cache_hits,
            "misses": stats.plan_cache_misses,
            "invalidations": stats.plan_cache_invalidations,
            "hit_rate": stats.plan_cache_hit_rate,
        },
        "dp_memo": {
            "hits": stats.memo_hits,
            "misses": stats.memo_misses,
            "hit_rate": stats.hit_rate,
        },
        "plans": {
            "tasks_planned": stats.tasks_planned,
            "pieces_emitted": stats.pieces_emitted,
            "degraded": stats.degraded_plans,
            "replans": engine.replans,
        },
        "sample_cache": {
            "hits": manager.sample_cache_hits,
            "misses": manager.sample_cache_misses,
        },
        "executor": {
            "enabled": config.executor.enabled,
            "parallel_pieces": manager.parallel_pieces,
            "spills": manager.spill_events,
        },
        "cost_model": {
            "version": engine.predictor.model_version,
            "accuracy": accuracy,
            "monitor_epoch": engine.monitor.state_epoch,
        },
    }


def _stats_report_sharded(sharded, config, args, wall: float) -> dict:
    """Aggregate the ``stats`` report across every live shard.

    Counters are summed, rates recomputed from the sums, and a
    ``shards`` section records the deployment shape and how the catalog
    distributed — the rest of the document keeps the single-engine
    schema so downstream tooling reads both.
    """
    engines = [
        engine
        for _, engine in sorted(sharded.engines.items())
        if engine is not None
    ]

    def total(get) -> float:
        return sum(get(engine) for engine in engines)

    def rate(hits, misses) -> float:
        return hits / (hits + misses) if hits + misses else 0.0

    pc_hits = total(lambda e: e.engine.stats.plan_cache_hits)
    pc_misses = total(lambda e: e.engine.stats.plan_cache_misses)
    memo_hits = total(lambda e: e.engine.stats.memo_hits)
    memo_misses = total(lambda e: e.engine.stats.memo_misses)
    accuracies = [
        accuracy
        for engine in engines
        if (accuracy := engine.accuracy()) is not None
    ]
    return {
        "burst": {
            "tasks": args.tasks,
            "batch_size": args.batch_size,
            "modeled_bytes_per_task": args.modeled_kib * KiB,
            "sample_bytes": args.kib * KiB,
            "wall_seconds": wall,
            "tasks_per_second": (args.tasks / wall) if wall > 0 else 0.0,
        },
        "plan_cache": {
            "enabled": config.plan_cache.enabled,
            "hits": pc_hits,
            "misses": pc_misses,
            "invalidations": total(
                lambda e: e.engine.stats.plan_cache_invalidations
            ),
            "hit_rate": rate(pc_hits, pc_misses),
        },
        "dp_memo": {
            "hits": memo_hits,
            "misses": memo_misses,
            "hit_rate": rate(memo_hits, memo_misses),
        },
        "plans": {
            "tasks_planned": total(lambda e: e.engine.stats.tasks_planned),
            "pieces_emitted": total(lambda e: e.engine.stats.pieces_emitted),
            "degraded": total(lambda e: e.engine.stats.degraded_plans),
            "replans": total(lambda e: e.replans),
        },
        "sample_cache": {
            "hits": total(lambda e: e.manager.sample_cache_hits),
            "misses": total(lambda e: e.manager.sample_cache_misses),
        },
        "executor": {
            "enabled": config.executor.enabled,
            "parallel_pieces": total(lambda e: e.manager.parallel_pieces),
            "spills": total(lambda e: e.manager.spill_events),
        },
        "cost_model": {
            "version": engines[0].predictor.model_version,
            "accuracy": (
                sum(accuracies) / len(accuracies) if accuracies else None
            ),
            "monitor_epoch": max(e.monitor.state_epoch for e in engines),
        },
        "shards": {
            "count": sharded.shards,
            "tasks_by_shard": sharded.task_count_by_shard(),
        },
    }


def _print_stats_report(report: dict) -> None:
    burst = report["burst"]
    plan_cache = report["plan_cache"]
    memo = report["dp_memo"]
    plans = report["plans"]
    batch = (
        f" batch={burst['batch_size']}" if burst.get("batch_size", 1) > 1 else ""
    )
    print(
        f"burst: {burst['tasks']} x "
        f"{fmt_bytes(burst['modeled_bytes_per_task'])} modeled "
        f"tasks ({fmt_bytes(burst['sample_bytes'])} sample){batch} in "
        f"{burst['wall_seconds']:.3f}s "
        f"({burst['tasks_per_second']:,.0f} tasks/s)"
    )
    print(
        f"plan cache  : {'on' if plan_cache['enabled'] else 'off'}  "
        f"hits={plan_cache['hits']} misses={plan_cache['misses']} "
        f"invalidations={plan_cache['invalidations']} "
        f"hit-rate={plan_cache['hit_rate']:.1%}"
    )
    print(
        f"DP memo     : hits={memo['hits']} misses={memo['misses']} "
        f"hit-rate={memo['hit_rate']:.1%}"
    )
    print(
        f"plans       : tasks={plans['tasks_planned']} "
        f"pieces={plans['pieces_emitted']} degraded={plans['degraded']} "
        f"replans={plans['replans']}"
    )
    print(
        f"sample cache: hits={report['sample_cache']['hits']} "
        f"misses={report['sample_cache']['misses']}"
    )
    print(
        f"executor    : {'on' if report['executor']['enabled'] else 'off'}  "
        f"parallel pieces={report['executor']['parallel_pieces']} "
        f"spills={report['executor']['spills']}"
    )
    accuracy = report["cost_model"]["accuracy"]
    print(
        f"cost model  : version={report['cost_model']['version']} "
        f"accuracy={'n/a' if accuracy is None else f'{accuracy:.1%}'} "
        f"monitor epoch={report['cost_model']['monitor_epoch']}"
    )


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    from .core import HCompressProfiler
    from .lifecycle import LifecycleConfig
    from .lifecycle.workload import ZipfTraceConfig, run_zipf_trace

    config = ZipfTraceConfig(
        tasks=args.tasks,
        task_kib=args.kib,
        reads=args.reads,
        zipf_s=args.zipf_s,
        rng_seed=args.rng_seed,
        lifecycle=LifecycleConfig(
            enabled=True,
            scan_interval=args.scan_interval,
            storage_price=args.storage_price,
            access_price=args.access_price,
        ),
    )
    print("bootstrapping engines (quick profiling seed)...", file=sys.stderr)
    profiler = HCompressProfiler(rng=np.random.default_rng(args.rng_seed))
    seed = profiler.quick_seed(
        sizes=(args.kib * KiB, 4 * args.kib * KiB)
    )
    runs = [run_zipf_trace(config, lifecycle=False, seed=seed)]
    if not args.baseline_only:
        runs.append(run_zipf_trace(config, lifecycle=True, seed=seed))

    if args.json:
        print(json.dumps([
            {
                "lifecycle": run.lifecycle_enabled,
                "total_dollars": run.total_dollars,
                "storage_dollars": run.storage_dollars,
                "access_dollars": run.access_dollars,
                "migration_dollars": run.migration_dollars,
                "mean_hot_read_seconds": run.mean_hot_read_seconds,
                "mean_read_seconds": run.mean_read_seconds,
                "tier_residency": run.tier_residency,
                "status": run.status,
            }
            for run in runs
        ], indent=2))
        return 0
    print(
        f"{config.tasks} blobs x {config.task_kib} KiB, {config.reads} "
        f"zipf(s={config.zipf_s}) reads, daemon scan every "
        f"{config.lifecycle.scan_interval}s\n"
    )
    print(
        f"{'run':12s} {'total $':>9s} {'storage $':>10s} {'access $':>9s} "
        f"{'migr $':>8s} {'hot read':>9s} {'all reads':>10s}"
    )
    for run in runs:
        name = "lifecycle" if run.lifecycle_enabled else "baseline"
        print(
            f"{name:12s} {run.total_dollars:9.4f} "
            f"{run.storage_dollars:10.4f} {run.access_dollars:9.4f} "
            f"{run.migration_dollars:8.4f} "
            f"{run.mean_hot_read_seconds * 1e3:7.3f}ms "
            f"{run.mean_read_seconds * 1e3:8.3f}ms"
        )
    for run in runs:
        name = "lifecycle" if run.lifecycle_enabled else "baseline"
        residency = ", ".join(
            f"{tier}={count}" for tier, count in run.tier_residency.items()
        )
        print(f"\n{name}: blobs by tier: {residency}")
        if run.status is not None:
            status = run.status
            print(
                f"  daemon: {status['scans']} scans, "
                f"{status['promotions']} promotions, "
                f"{status['demotions']} demotions, "
                f"{status['bytes_moved']} bytes moved "
                f"(codecs up={status['promote_codec']} "
                f"down={status['demote_codec']})"
            )
    if len(runs) == 2 and runs[0].total_dollars > 0:
        saving = 1.0 - runs[1].total_dollars / runs[0].total_dollars
        print(f"\nlifecycle tiering saves {saving:.1%} of the modeled bill")
    return 0


def _cmd_stats_sharded(args: argparse.Namespace) -> int:
    """The ``stats --shards N`` driver: one burst over N shards."""
    import time

    from .core import HCompressConfig, PlanCacheConfig
    from .datagen import synthetic_buffer
    from .shard import ShardConfig, ShardedHCompress
    from .tiers import ares_specs

    shards = args.shards
    # Scale the deployment so each shard's slice matches the budgets the
    # single-engine burst runs against.
    specs = ares_specs(
        64 * MiB * shards, 128 * MiB * shards, 4 * GiB * shards,
        nodes=2 * shards,
    )
    config = HCompressConfig(
        plan_cache=PlanCacheConfig(enabled=not args.no_cache)
    )
    print(
        "bootstrapping shards (one shared profiling pass)...",
        file=sys.stderr,
    )
    sharded = ShardedHCompress(specs, config, ShardConfig(shards=shards))
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    tenants = max(8, 2 * shards)
    wall = time.perf_counter()
    if args.batch_size > 1:
        # Per-item tenants route each task exactly like the per-task loop.
        items = [
            {
                "data": data, "modeled_size": args.modeled_kib * KiB,
                "task_id": f"stats-{i}", "tenant": f"tenant-{i % tenants}",
            }
            for i in range(args.tasks)
        ]
        for start in range(0, args.tasks, args.batch_size):
            sharded.compress_batch(items[start:start + args.batch_size])
    else:
        for i in range(args.tasks):
            sharded.compress(
                data, modeled_size=args.modeled_kib * KiB,
                task_id=f"stats-{i}", tenant=f"tenant-{i % tenants}",
            )
    wall = time.perf_counter() - wall
    report = _stats_report_sharded(sharded, config, args, wall)
    sharded.close()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    _print_stats_report(report)
    by_shard = report["shards"]["tasks_by_shard"]
    print(
        f"shards      : {report['shards']['count']}  tasks by shard: "
        + " ".join(f"{sid}:{count}" for sid, count in sorted(by_shard.items()))
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import time

    from .core import HCompress, HCompressConfig, PlanCacheConfig
    from .datagen import synthetic_buffer
    from .tiers import ares_hierarchy

    if args.shards > 1:
        return _cmd_stats_sharded(args)
    hierarchy = ares_hierarchy(
        ram_capacity=64 * MiB, nvme_capacity=128 * MiB, bb_capacity=4 * GiB,
        nodes=2,
    )
    config = HCompressConfig(
        plan_cache=PlanCacheConfig(enabled=not args.no_cache)
    )
    print("bootstrapping engine (inline profiling)...", file=sys.stderr)
    engine = HCompress(hierarchy, config)
    data = synthetic_buffer(
        args.dtype, args.distribution, args.kib * KiB,
        np.random.default_rng(args.rng_seed),
    )
    wall = time.perf_counter()
    if args.batch_size > 1:
        items = [
            {
                "data": data, "modeled_size": args.modeled_kib * KiB,
                "task_id": f"stats-{i}",
            }
            for i in range(args.tasks)
        ]
        for start in range(0, args.tasks, args.batch_size):
            engine.compress_batch(items[start:start + args.batch_size])
    else:
        for i in range(args.tasks):
            engine.compress(
                data, modeled_size=args.modeled_kib * KiB, task_id=f"stats-{i}"
            )
    wall = time.perf_counter() - wall
    report = _stats_report(engine, config, args, wall)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    _print_stats_report(report)
    return 0


def _instrumented_vpic(args: argparse.Namespace):
    """Run a scaled fig7 VPIC checkpoint workload with telemetry enabled.

    Returns ``(engine, run_result)`` — the engine's ``obs`` holds the
    synced registry and the span trace of the whole run. The engine
    journals into a scratch recovery directory and the run ends with one
    checkpoint + restore cycle, so the ``recovery.*`` spans and
    ``hcompress_recovery_*`` metric families are populated in the export.
    """
    import tempfile
    from dataclasses import replace

    from .core import HCompress, HCompressConfig, ObservabilityConfig, RecoveryConfig
    from .experiments.fig7_vpic import (
        WRITE_PRIORITY,
        fig7_hierarchy,
        fig7_vpic_config,
    )
    from .hermes.flusher import TierFlusher
    from .workloads import HCompressBackend, run_vpic

    config = fig7_vpic_config(args.nprocs, args.scale)
    config = replace(
        config,
        timesteps=args.steps,
        # Deep shrinks push the modeled task below the default 64 KiB
        # representative sample; the sample may never exceed the task.
        sample_bytes=min(config.sample_bytes, config.bytes_per_rank_per_step),
    )
    hierarchy = fig7_hierarchy(args.scale)
    print(
        f"instrumented VPIC run: {args.nprocs} ranks x {args.steps} steps x "
        f"{fmt_bytes(config.bytes_per_rank_per_step)} (scale 1/{args.scale})",
        file=sys.stderr,
    )
    with tempfile.TemporaryDirectory(prefix="hcompress-obs-") as recovery_dir:
        engine = HCompress(
            hierarchy,
            HCompressConfig(
                priority=WRITE_PRIORITY,
                observability=ObservabilityConfig(enabled=True),
                recovery=RecoveryConfig(
                    enabled=True, directory=recovery_dir, fsync=False
                ),
            ),
        )
        flusher = TierFlusher(hierarchy, obs=engine.obs, qos=engine.qos)
        result = run_vpic(
            HCompressBackend(engine),
            config,
            hierarchy,
            rng=np.random.default_rng(args.rng_seed),
            flusher=flusher,
        )
        # One checkpoint/restore cycle under the same telemetry sinks.
        engine.checkpoint()
        restored = HCompress.restore(
            recovery_dir, hierarchy, seed=engine.seed, obs=engine.obs
        )
        restored.close()
        engine.sync_telemetry()
        engine.obs.sync_flusher(flusher.stats)
    return engine, result


def _instrumented_shards(args: argparse.Namespace):
    """Run a multi-tenant burst over a sharded deployment with telemetry.

    Returns ``(observabilities, info)``: shard id -> synced
    :class:`~repro.obs.Observability` for every live shard, plus run
    facts for the human report. Every shard runs exactly the
    single-engine instrumentation, so the per-shard registries merge
    into one ``hcompress.metrics.v1`` document with a ``shard`` label
    (:func:`~repro.obs.merge_registries`) and the per-shard span traces
    export as separate Chrome trace processes.
    """
    import tempfile

    from .core import HCompressConfig, ObservabilityConfig, RecoveryConfig
    from .shard import ShardConfig, ShardedHCompress
    from .tiers import ares_specs
    from .workloads.vpic import vpic_sample

    shards = args.shards
    tenants = max(8, 2 * shards)
    tasks = args.steps * tenants
    task_bytes = 64 * KiB
    specs = ares_specs(
        2 * tasks * task_bytes, 2 * tasks * task_bytes,
        2 * tasks * task_bytes, nodes=max(8, shards),
    )
    print(
        f"instrumented sharded burst: {tasks} x {fmt_bytes(task_bytes)} "
        f"tasks over {shards} shards, {tenants} tenants",
        file=sys.stderr,
    )
    rng = np.random.default_rng(args.rng_seed)
    with tempfile.TemporaryDirectory(prefix="hcompress-shard-obs-") as root:
        sharded = ShardedHCompress(
            specs,
            HCompressConfig(
                observability=ObservabilityConfig(enabled=True),
                recovery=RecoveryConfig(fsync=False),
            ),
            ShardConfig(shards=shards, directory=root),
        )
        for index in range(tasks):
            payload = vpic_sample(task_bytes, rng)
            sharded.compress(
                payload,
                task_id=f"burst/t{index}",
                tenant=f"tenant-{index % tenants}",
            )
        # One deployment-wide checkpoint so the recovery telemetry the
        # single-engine export carries shows up per shard too.
        sharded.checkpoint()
        observabilities = sharded.observabilities()
        info = {
            "tasks": tasks,
            "tenants": tenants,
            "task_bytes": task_bytes,
            "by_shard": sharded.task_count_by_shard(),
        }
        sharded.close()
    return observabilities, info


def _cmd_metrics_sharded(args: argparse.Namespace) -> int:
    """The ``metrics --shards N`` driver: one merged registry export."""
    from .obs import merge_registries

    observabilities, info = _instrumented_shards(args)
    merged = merge_registries(
        [
            (str(shard_id), obs.registry)
            for shard_id, obs in sorted(observabilities.items())
        ]
    )
    if args.output is not None:
        args.output.write_text(merged.to_json() + "\n")
        print(f"wrote merged metrics to {args.output}", file=sys.stderr)
    if args.json:
        print(merged.to_json())
        return 0
    by_shard = info["by_shard"]
    print(
        f"run: {info['tasks']} tasks over {len(observabilities)} shards "
        f"({info['tenants']} tenants); tasks by shard: "
        + " ".join(
            f"{sid}:{count}" for sid, count in sorted(by_shard.items())
        )
        + "\n"
    )
    families = merged.collect()["metrics"]
    series = sum(len(entry["series"]) for entry in families.values())
    print(
        f"{len(families)} metric families, {series} series "
        f"(every series labeled shard=<id>; --json for the full export)"
    )
    return 0


def _cmd_trace_sharded(args: argparse.Namespace) -> int:
    """The ``trace --shards N`` driver: one trace, one process per shard.

    Shard ``k``'s wall/modeled Chrome trace processes keep the 1/2 pid
    split but shifted to ``2k+1``/``2k+2`` and renamed ``shardK/...``,
    so shard 0 of a one-shard run matches the unsharded export layout.
    """
    observabilities, info = _instrumented_shards(args)
    events = []
    spans = 0
    for shard_id, obs in sorted(observabilities.items()):
        trace = obs.export_chrome_trace()
        for event in trace["traceEvents"]:
            event = dict(event)
            event["pid"] = 2 * shard_id + event.get("pid", 1)
            if event.get("ph") == "M" and event.get("name") == "process_name":
                event["args"] = {
                    "name": f"shard{shard_id}/" + event["args"]["name"]
                }
            events.append(event)
        spans += len(obs.tracer.spans)
    merged = {"traceEvents": events, "displayTimeUnit": "ms"}
    if args.output is not None:
        args.output.write_text(json.dumps(merged) + "\n")
        print(
            f"wrote {len(events)} trace events to {args.output} "
            f"(load in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(merged))
        return 0
    print(
        f"run: {info['tasks']} tasks over {len(observabilities)} shards; "
        f"{spans} spans recorded\n"
    )
    for shard_id, obs in sorted(observabilities.items()):
        print(f"-- shard {shard_id} --")
        print(obs.span_summary())
    if args.output is None:
        print("\n(use --output trace.json to export for chrome://tracing)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.shards > 1:
        return _cmd_metrics_sharded(args)
    engine, result = _instrumented_vpic(args)
    obs = engine.obs
    if args.output is not None:
        args.output.write_text(obs.registry.to_json() + "\n")
        print(f"wrote metrics to {args.output}", file=sys.stderr)
    if args.json:
        print(obs.registry.to_json())
        return 0
    print(
        f"run: {result.tasks_written} tasks, "
        f"{fmt_bytes(result.bytes_written)} written, "
        f"{fmt_bytes(result.stored_bytes)} stored "
        f"(ratio {result.achieved_ratio:.2f}), "
        f"{result.elapsed_seconds:.2f}s simulated\n"
    )
    print(obs.summary())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.shards > 1:
        return _cmd_trace_sharded(args)
    engine, result = _instrumented_vpic(args)
    obs = engine.obs
    trace = obs.export_chrome_trace()
    if args.output is not None:
        args.output.write_text(json.dumps(trace) + "\n")
        print(
            f"wrote {len(trace['traceEvents'])} trace events to "
            f"{args.output} (load in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(trace))
        return 0
    print(
        f"run: {result.tasks_written} tasks in {result.elapsed_seconds:.2f}s "
        f"simulated; {len(obs.tracer.spans)} spans recorded "
        f"({obs.tracer.dropped} dropped)\n"
    )
    print(obs.span_summary())
    if args.output is None:
        print(
            "\n(use --output trace.json to export for chrome://tracing)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .recovery import CRASH_SITES

    parser = argparse.ArgumentParser(
        prog="hcompress", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="generate a JSON profiler seed")
    p.add_argument("--output", type=Path, default=Path("hcompress_seed.json"))
    p.add_argument("--mode", choices=("nominal", "measured"), default="nominal")
    p.add_argument("--sizes", nargs="+", default=["8", "32"],
                   help="corpus buffer sizes in KiB (need >= 2 distinct)")
    p.add_argument("--signature", action="store_true",
                   help="include the default Ares system signature")
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("codecs", help="measure the codec pool")
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--kib", type=int, default=256)
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_codecs)

    p = sub.add_parser("report", help="regenerate the paper's evaluation")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--output", type=Path, default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("demo", help="one compress/decompress round trip")
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--kib", type=int, default=1024)
    p.add_argument("--rng-seed", type=int, default=0)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser(
        "chaos", help="run a workload under fault injection"
    )
    p.add_argument(
        "--plan", type=Path, default=None,
        help="JSON FaultPlan (default: mid-run NVMe outage + flaky tiers)",
    )
    p.add_argument(
        "--backend", choices=("HC", "BASE", "MTNC", "all"), default="all",
        help="engine(s) to drive through the faulty hierarchy",
    )
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--step-kib", type=int, default=16)
    p.add_argument("--rng-seed", type=int, default=7)
    p.add_argument(
        "--crash-at", choices=CRASH_SITES + ("all",), default=None,
        metavar="SITE",
        help="run the crash-consistency harness instead: kill the engine "
             "at this crash site and verify recovery ('all' sweeps every "
             "site; see docs/RECOVERY.md for the site list)",
    )
    p.add_argument("--crash-hit", type=int, default=1,
                   help="fire on the Nth visit to the crash site")
    p.add_argument("--quick", action="store_true",
                   help="with --crash-at all: sweep first hits only")
    p.add_argument(
        "--overload", action="store_true",
        help="run the QoS overload storm instead: writes offered above "
             "the admission drain rate while a tier flaps, checking the "
             "shed/deadline/breaker contract (docs/RESILIENCE.md); "
             "combine with --crash-at to also die mid-storm and verify "
             "the restored engine",
    )
    p.add_argument("--overload-tasks", type=int, default=48,
                   help="with --overload: writes offered during the storm")
    p.add_argument("--load-factor", type=float, default=2.0,
                   help="with --overload: offered load as a multiple of "
                        "the admission drain rate")
    p.add_argument(
        "--kill-shard", default=None, metavar="SHARD",
        help="run the shard-failover harness instead: kill this shard of "
             "a sharded deployment mid-storm ('auto' kills the shard "
             "owning live traffic, 'none' runs the undisturbed baseline) "
             "and verify failure-domain isolation (docs/SHARDING.md)",
    )
    p.add_argument("--shards", type=int, default=4,
                   help="with --kill-shard: shard count of the deployment")
    p.add_argument("--tenants", type=int, default=8,
                   help="with --kill-shard: distinct tenants in the storm")
    p.add_argument("--shard-tasks", type=int, default=64,
                   help="with --kill-shard: writes offered during the storm")
    p.add_argument(
        "--failover", action="store_true",
        help="run the replicated failover harness instead: every shard "
             "ships its WAL to standbys, the killed primary's standby is "
             "promoted automatically (--kill-shard picks the victim, "
             "default 'auto'), and the zero-acked-loss / bounded-window "
             "contract is verified (docs/SHARDING.md); combine with "
             "--crash-at replication.* (or 'all') to also die mid-"
             "promotion and verify the retried failover converges",
    )
    p.add_argument("--replicas", type=int, default=1,
                   help="with --failover: standby replicas per shard")
    p.add_argument("--promotion-seconds", type=float, default=0.25,
                   help="with --failover: modeled promotion window during "
                        "which the shard sheds retryably")
    p.add_argument(
        "--scrub", action="store_true",
        help="with --crash-at: run the crash harness in scrub mode — "
             "plant seeded latent corruption between writes and let the "
             "background scrubber detect and heal it (docs/INTEGRITY.md); "
             "implied by arming a scrub.* crash site",
    )
    p.add_argument("--corrupt-every", type=int, default=2,
                   help="with --scrub: plant one at-rest byte flip after "
                        "every Nth write")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "fsck",
        help="offline integrity check of a recovery directory or "
             "deployment root",
    )
    p.add_argument("dir", type=Path,
                   help="recovery directory (snapshot + journal) or a "
                        "sharded deployment root (shard-map.json)")
    p.add_argument("--repair", action="store_true",
                   help="fix the safe subset: truncate torn journal "
                        "tails, remove stale temp files")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser(
        "checkpoint",
        help="run a journaled workload and snapshot the engine",
    )
    p.add_argument("--dir", type=Path, required=True,
                   help="recovery directory (snapshot + journal)")
    p.add_argument("--tasks", type=int, default=16)
    p.add_argument("--kib", type=int, default=64)
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip os.fsync on journal/snapshot writes")
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    p.set_defaults(func=_cmd_checkpoint)

    p = sub.add_parser(
        "recover",
        help="crash a journaled workload and verify restore invariants",
    )
    p.add_argument(
        "--crash-at", choices=CRASH_SITES + ("all",),
        default="manager.write.piece_placed", metavar="SITE",
        help="crash site to arm ('all' sweeps every site)",
    )
    p.add_argument("--crash-hit", type=int, default=1,
                   help="fire on the Nth visit to the crash site")
    p.add_argument("--dir", type=Path, default=None,
                   help="recovery directory to use (default: temp dir)")
    p.add_argument("--quick", action="store_true",
                   help="with --crash-at all: sweep first hits only")
    p.add_argument("--rng-seed", type=int, default=7)
    p.set_defaults(func=_cmd_crash)

    p = sub.add_parser(
        "lifecycle",
        help="zipfian trace: lifecycle tiering vs write-time placement",
    )
    p.add_argument("--tasks", type=int, default=48, help="blob population")
    p.add_argument("--kib", type=int, default=4, help="blob size in KiB")
    p.add_argument("--reads", type=int, default=384, help="trace length")
    p.add_argument("--zipf-s", type=float, default=1.4,
                   help="zipf skew exponent of the read trace")
    p.add_argument("--scan-interval", type=float, default=2.0,
                   help="simulated seconds between daemon scans")
    p.add_argument("--storage-price", type=float, default=1.0,
                   help="TCO $/GiB-s on the slowest tier")
    p.add_argument("--access-price", type=float, default=1.0,
                   help="TCO $ per modeled second of read wait")
    p.add_argument("--baseline-only", action="store_true",
                   help="run only the write-time-placement baseline")
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit both runs' bills and status as JSON")
    p.set_defaults(func=_cmd_lifecycle)

    p = sub.add_parser(
        "replication",
        help="replicated demo: WAL shipping, kill a primary, auto-failover",
    )
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--replicas", type=int, default=1,
                   help="standby replicas per shard")
    p.add_argument("--tasks", type=int, default=12)
    p.add_argument("--kib", type=int, default=64)
    p.add_argument("--promotion-seconds", type=float, default=0.25,
                   help="modeled promotion window after the kill")
    p.add_argument(
        "--kill-shard", default="auto", metavar="SHARD",
        help="primary to kill after the writes ('auto' kills the shard "
             "owning tenant-0, 'none' skips the kill and just reports "
             "shipping status)",
    )
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the status report as JSON instead of text")
    p.set_defaults(func=_cmd_replication)

    p = sub.add_parser(
        "stats", help="hot-path counters over a repeated-burst workload"
    )
    p.add_argument("--tasks", type=int, default=256)
    p.add_argument("--kib", type=int, default=64, help="sample buffer KiB")
    p.add_argument("--modeled-kib", type=int, default=1024,
                   help="modeled task size in KiB")
    p.add_argument("--dtype", default="float64")
    p.add_argument("--distribution", default="gamma")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the plan cache (seed behaviour)")
    p.add_argument("--batch-size", type=int, default=1,
                   help="submit the burst through compress_batch in chunks "
                        "of this many tasks (1: the per-task path)")
    p.add_argument("--shards", type=int, default=1,
                   help="drive a sharded deployment and sum the counters "
                        "(1: the unsharded engine, byte-identical output)")
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "metrics",
        help="run an instrumented VPIC workload and export the registry",
    )
    p.add_argument("--nprocs", type=int, default=320, help="MPI rank count")
    p.add_argument("--steps", type=int, default=10, help="checkpoint steps")
    p.add_argument("--scale", type=int, default=4096,
                   help="shrink divisor on the paper's Fig. 7 sizes")
    p.add_argument("--shards", type=int, default=1,
                   help="run a multi-tenant burst over N shards and export "
                        "one merged registry with a shard label per series "
                        "(1: the unsharded VPIC run, byte-identical output)")
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the hcompress.metrics.v1 JSON snapshot")
    p.add_argument("--output", type=Path, default=None,
                   help="also write the JSON snapshot to a file")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="run an instrumented VPIC workload and export the span trace",
    )
    p.add_argument("--nprocs", type=int, default=320, help="MPI rank count")
    p.add_argument("--steps", type=int, default=10, help="checkpoint steps")
    p.add_argument("--scale", type=int, default=4096,
                   help="shrink divisor on the paper's Fig. 7 sizes")
    p.add_argument("--shards", type=int, default=1,
                   help="run a multi-tenant burst over N shards and export "
                        "each shard's spans as its own trace process "
                        "(1: the unsharded VPIC run, byte-identical output)")
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit Chrome trace-event JSON to stdout")
    p.add_argument("--output", type=Path, default=None,
                   help="write Chrome trace-event JSON to a file")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
