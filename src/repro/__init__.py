"""HCompress reproduction: hierarchical data compression for multi-tiered
storage environments (Devarajan et al., IPDPS 2020).

Quickstart::

    from repro import HCompress, ares_hierarchy
    from repro.units import GiB

    hierarchy = ares_hierarchy(ram_capacity=1 * GiB)
    engine = HCompress(hierarchy)
    result = engine.compress(my_bytes)
    restored = engine.decompress(result.task.task_id).data

Subpackages: ``codecs`` (the compression library pool), ``tiers`` (the
storage hierarchy), ``sim`` (discrete-event cluster simulation),
``analyzer`` / ``ccp`` / ``monitor`` / ``hcdp`` (the engine's components),
``core`` (the HCompress engine itself), ``hermes`` (the baseline),
``workloads`` (VPIC-IO, BD-CATS-IO, micro-benchmarks), ``experiments``
(per-figure reproduction harnesses), ``faults`` (deterministic fault
injection and chaos runs), ``obs`` (opt-in metrics, tracing, and
profiling hooks — see docs/OBSERVABILITY.md).
"""

from .analyzer import DataFormat, DataType, Distribution, InputAnalyzer, MetadataHints
from .ccp import CompressionCostPredictor, FeedbackLoop, SeedData, load_seed, save_seed
from .codecs import CompressionLibraryPool, get_codec
from .core import (
    HCompress,
    HCompressConfig,
    HCompressFile,
    HCompressProfiler,
    hcompress_session,
)
from .core.config import RecoveryConfig, ResilienceConfig
from .errors import HCompressError
from .faults import FaultInjector, FaultPlan, run_chaos
from .hcdp import (
    ARCHIVAL_IO,
    ASYNC_IO,
    EQUAL,
    READ_AFTER_WRITE,
    HcdpEngine,
    IOTask,
    Priority,
)
from .hermes import HermesBuffering, HermesWithStaticCompression
from .monitor import SystemMonitor
from .obs import Observability, ObservabilityConfig
from .sim import Simulation
from .tiers import StorageHierarchy, Tier, TierSpec, ares_hierarchy

__version__ = "1.0.0"

__all__ = [
    "ARCHIVAL_IO",
    "ASYNC_IO",
    "CompressionCostPredictor",
    "CompressionLibraryPool",
    "DataFormat",
    "DataType",
    "Distribution",
    "EQUAL",
    "FaultInjector",
    "FaultPlan",
    "FeedbackLoop",
    "HCompress",
    "HCompressConfig",
    "HCompressError",
    "HCompressFile",
    "HCompressProfiler",
    "HcdpEngine",
    "HermesBuffering",
    "HermesWithStaticCompression",
    "IOTask",
    "InputAnalyzer",
    "MetadataHints",
    "Observability",
    "ObservabilityConfig",
    "Priority",
    "READ_AFTER_WRITE",
    "RecoveryConfig",
    "ResilienceConfig",
    "SeedData",
    "Simulation",
    "StorageHierarchy",
    "SystemMonitor",
    "Tier",
    "TierSpec",
    "ares_hierarchy",
    "get_codec",
    "hcompress_session",
    "load_seed",
    "run_chaos",
    "save_seed",
    "__version__",
]
