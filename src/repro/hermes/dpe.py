"""Hermes-style Data Placement Engines (DPE).

Hermes (HPDC'18) places incoming buffers into the tier hierarchy without
any data reduction; its placement policies are reproduced here as the
baseline HCompress is compared against. Every policy sees the same
:class:`SystemStatus` snapshot the HCDP engine does, but decides on
**uncompressed** sizes — the under-utilisation the paper's Fig. 5 exposes.

Policies return a list of (tier name, nbytes) placements that exactly tile
the request.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import CapacityError
from ..monitor.system_monitor import SystemStatus
from ..units import PAGE, align_down

__all__ = [
    "DataPlacementEngine",
    "MaxBandwidthDpe",
    "RoundRobinDpe",
    "RandomDpe",
    "MinIoTimeDpe",
]


class DataPlacementEngine(abc.ABC):
    """Base class: split a request across tiers using a placement policy."""

    grain: int = PAGE

    @abc.abstractmethod
    def place(self, size: int, status: SystemStatus) -> list[tuple[str, int]]:
        """Tile ``size`` bytes over the hierarchy; raises
        :class:`CapacityError` when the stack cannot hold the request."""

    # -- shared helpers ------------------------------------------------------

    def _usable(self, status: SystemStatus) -> list[tuple[str, float]]:
        """(tier, remaining) for available tiers, hierarchy order."""
        out = []
        for tier in status.tiers:
            remaining = tier.effective_remaining()
            out.append((tier.name, float("inf") if remaining is None else remaining))
        return out

    def _fill_order(
        self, size: int, order: list[tuple[str, float]]
    ) -> list[tuple[str, int]]:
        """Greedy fill following ``order``, grain-aligned splits."""
        placements: list[tuple[str, int]] = []
        left = size
        for name, remaining in order:
            if left <= 0:
                break
            if remaining <= 0:
                continue
            if left <= remaining:
                placements.append((name, left))
                left = 0
                break
            take = align_down(int(remaining), self.grain)
            if take <= 0:
                continue
            placements.append((name, take))
            left -= take
        if left > 0:
            raise CapacityError(
                f"hierarchy cannot hold {size} bytes ({left} left unplaced)"
            )
        return placements


class MaxBandwidthDpe(DataPlacementEngine):
    """Hermes's default: fill the fastest (topmost) tiers first."""

    def place(self, size: int, status: SystemStatus) -> list[tuple[str, int]]:
        if size == 0:
            return []
        return self._fill_order(size, self._usable(status))


class RoundRobinDpe(DataPlacementEngine):
    """Rotate the starting tier per request (load spreading)."""

    def __init__(self) -> None:
        self._next = 0

    def place(self, size: int, status: SystemStatus) -> list[tuple[str, int]]:
        if size == 0:
            return []
        usable = self._usable(status)
        start = self._next % len(usable)
        self._next += 1
        rotated = usable[start:] + usable[:start]
        # Unbounded trailing tiers stay last so rotation cannot starve
        # the upper tiers permanently.
        return self._fill_order(size, rotated)


class RandomDpe(DataPlacementEngine):
    """Uniformly random starting tier among those with room."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def place(self, size: int, status: SystemStatus) -> list[tuple[str, int]]:
        if size == 0:
            return []
        usable = self._usable(status)
        candidates = [i for i, (_, rem) in enumerate(usable) if rem > 0]
        if not candidates:
            raise CapacityError(f"no tier has room for {size} bytes")
        start = int(self._rng.choice(candidates))
        rotated = usable[start:] + usable[:start]
        return self._fill_order(size, rotated)


class MinIoTimeDpe(DataPlacementEngine):
    """Pick the tier minimising modeled I/O time (latency + size/bw,
    inflated by observed load), spilling by the same criterion."""

    def __init__(self, specs_by_name: dict) -> None:
        self._specs = specs_by_name

    def place(self, size: int, status: SystemStatus) -> list[tuple[str, int]]:
        if size == 0:
            return []
        usable = self._usable(status)

        def cost(entry: tuple[str, float]) -> float:
            name, _ = entry
            spec = self._specs[name]
            tier_status = status.tier(name)
            base = spec.latency + size / spec.lane_bandwidth
            return base * (1.0 + tier_status.load / spec.lanes)

        ordered = sorted(usable, key=cost)
        return self._fill_order(size, ordered)
