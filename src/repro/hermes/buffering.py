"""Hermes-like multi-tiered I/O buffering (the paper's MTNC baseline).

Places task data into the hierarchy through a pluggable DPE, with no data
reduction whatsoever — compression belongs to the adapters module. Keeps
the same receipts shape as the Compression Manager so experiment harnesses
can drive either engine interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TierError
from ..monitor import SystemMonitor
from ..tiers import StorageHierarchy
from .dpe import DataPlacementEngine, MaxBandwidthDpe

__all__ = ["HermesBuffering", "BufferReceipt", "BufferedTask"]


@dataclass(frozen=True)
class BufferReceipt:
    """One placed piece: where it went and its modeled I/O time."""

    key: str
    tier: str
    nbytes: int
    stored_size: int
    io_seconds: float
    compress_seconds: float = 0.0


@dataclass
class BufferedTask:
    """All receipts of one buffered task."""

    task_id: str
    size: int
    receipts: list[BufferReceipt] = field(default_factory=list)

    @property
    def total_stored(self) -> int:
        return sum(r.stored_size for r in self.receipts)

    @property
    def io_seconds(self) -> float:
        return sum(r.io_seconds for r in self.receipts)

    @property
    def compress_seconds(self) -> float:
        return sum(r.compress_seconds for r in self.receipts)


class HermesBuffering:
    """Multi-tier buffering without compression.

    Args:
        hierarchy: Target tier stack.
        dpe: Placement policy (MaxBandwidth, the Hermes default, if None).
        monitor: Optional shared monitor; a private one is created
            otherwise.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        dpe: DataPlacementEngine | None = None,
        monitor: SystemMonitor | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.dpe = dpe if dpe is not None else MaxBandwidthDpe()
        self.monitor = monitor if monitor is not None else SystemMonitor(hierarchy)
        self._tasks: dict[str, BufferedTask] = {}

    def put(
        self, task_id: str, size: int, data: bytes | None = None
    ) -> BufferedTask:
        """Place one task's bytes into the hierarchy (uncompressed).

        ``data`` (when provided and full-length) is stored; otherwise only
        capacity accounting happens (modeled runs).
        """
        if task_id in self._tasks:
            raise TierError(f"task {task_id!r} already buffered")
        placements = self.dpe.place(size, self.monitor.sample())
        record = BufferedTask(task_id=task_id, size=size)
        offset = 0
        for index, (tier_name, nbytes) in enumerate(placements):
            key = f"{task_id}/{index}"
            tier = self.hierarchy.by_name(tier_name)
            payload = None
            if data is not None and len(data) == size:
                payload = data[offset : offset + nbytes]
            tier.put(key, payload, accounted_size=nbytes)
            record.receipts.append(
                BufferReceipt(
                    key=key,
                    tier=tier_name,
                    nbytes=nbytes,
                    stored_size=nbytes,
                    io_seconds=tier.spec.io_seconds(nbytes),
                )
            )
            offset += nbytes
        self._tasks[task_id] = record
        return record

    def get(self, task_id: str) -> tuple[bytes | None, float]:
        """Read a buffered task back; returns (data or None, io seconds).

        Pieces are located dynamically: the background flusher may have
        moved them to a lower tier since they were written.
        """
        record = self._task(task_id)
        io_seconds = 0.0
        parts: list[bytes] = []
        have_payload = True
        for receipt in record.receipts:
            tier = self.hierarchy.find(receipt.key)
            if tier is None:
                raise TierError(f"piece {receipt.key!r} missing from every tier")
            extent = tier.extent(receipt.key)
            io_seconds += tier.spec.io_seconds(extent.accounted_size)
            if extent.has_payload:
                parts.append(tier.get(receipt.key))
            else:
                have_payload = False
        return (b"".join(parts) if have_payload else None), io_seconds

    def locate(self, key: str):
        """Current tier of a piece (pieces migrate as the flusher drains)."""
        return self.hierarchy.find(key)

    def evict(self, task_id: str) -> int:
        """Drop a task from the hierarchy; returns released bytes."""
        record = self._task(task_id)
        released = 0
        for receipt in record.receipts:
            released += self.hierarchy.by_name(receipt.tier).evict(receipt.key)
        del self._tasks[task_id]
        return released

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> BufferedTask:
        return self._task(task_id)

    def _task(self, task_id: str) -> BufferedTask:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
