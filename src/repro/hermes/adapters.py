"""Hermes + static compression (the paper's Fig. 5 comparator).

Reproduces the exact behaviour the paper critiques: Hermes solves data
placement on the **uncompressed** task size, and only then is a single,
fixed compression library applied to each placed piece. Placement reserves
capacity in uncompressed bytes, so tiers end up under-utilised (Hermes with
lz4 leaves most of RAM's reserved budget holding nothing), while the actual
stored footprint is the compressed size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ccp.seed import CostObservation  # noqa: F401  (re-export convenience)
from ..codecs.metadata import HEADER_SIZE
from ..codecs.pool import CompressionLibraryPool
from ..errors import CapacityError, TierError
from ..hashing import stable_hash32
from ..monitor import SystemMonitor
from ..tiers import StorageHierarchy
from ..units import MB
from .buffering import BufferedTask, BufferReceipt
from .dpe import DataPlacementEngine, MaxBandwidthDpe

__all__ = ["HermesWithStaticCompression"]


@dataclass
class _Reservation:
    """Uncompressed-byte ledger Hermes plans against, per tier."""

    reserved: dict[str, int] = field(default_factory=dict)

    def add(self, tier: str, nbytes: int) -> None:
        self.reserved[tier] = self.reserved.get(tier, 0) + nbytes

    def release(self, tier: str, nbytes: int) -> None:
        self.reserved[tier] = max(self.reserved.get(tier, 0) - nbytes, 0)


class HermesWithStaticCompression:
    """Placement-then-compression baseline (STWC/Fig.-5 "Hermes + codec").

    Args:
        hierarchy: Target tier stack.
        codec: The single library applied everywhere (the paper sweeps
            this across the pool).
        dpe: Hermes placement policy.
        sample_ratio_source: When tasks are modeled (no full payload), a
            callable ``(codec_name, sample) -> ratio`` used to extrapolate
            footprints; defaults to measuring the codec on the sample.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        codec: str,
        dpe: DataPlacementEngine | None = None,
        monitor: SystemMonitor | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.pool = CompressionLibraryPool()
        if codec not in self.pool.names:
            raise TierError(f"codec {codec!r} not in the pool")
        self.codec_name = codec
        self.dpe = dpe if dpe is not None else MaxBandwidthDpe()
        self.monitor = monitor if monitor is not None else SystemMonitor(hierarchy)
        self._reservations = _Reservation()
        self._tasks: dict[str, BufferedTask] = {}
        self._ratio_cache: dict[int, float] = {}

    # -- placement with the uncompressed-size ledger --------------------------

    def _planning_status(self):
        """Monitor snapshot with Hermes's own reservations subtracted.

        The tiers' real ``used`` reflects compressed bytes; Hermes believes
        its reservations are the occupancy, which is the under-utilisation
        the paper measures.
        """
        status = self.monitor.sample()
        tiers = []
        for tier_status in status.tiers:
            reserved = self._reservations.reserved.get(tier_status.name, 0)
            if tier_status.remaining is None:
                adjusted = None
            else:
                capacity = tier_status.remaining + tier_status.used
                adjusted = max(capacity - reserved, 0)
            tiers.append(
                type(tier_status)(
                    name=tier_status.name,
                    level=tier_status.level,
                    available=tier_status.available,
                    load=tier_status.load,
                    remaining=adjusted,
                    used=reserved,
                )
            )
        return type(status)(time=status.time, tiers=tuple(tiers))

    def ratio_for(self, sample: bytes) -> float:
        """Measured ratio of the static codec on a sample (cached)."""
        if self.codec_name == "none":
            return 1.0
        # Process-stable cache key (PYTHONHASHSEED-independent).
        key = stable_hash32(sample[:256]) ^ len(sample)
        cached = self._ratio_cache.get(key)
        if cached is None:
            codec = self.pool.codec(self.codec_name)
            payload = codec.compress(sample)
            cached = len(sample) / max(len(payload), 1)
            self._ratio_cache[key] = cached
        return cached

    def put(
        self, task_id: str, size: int, data: bytes | None = None
    ) -> BufferedTask:
        """Place (by uncompressed size) then compress each piece."""
        if task_id in self._tasks:
            raise TierError(f"task {task_id!r} already buffered")
        placements = self.dpe.place(size, self._planning_status())
        record = BufferedTask(task_id=task_id, size=size)
        materialised = data is not None and len(data) == size
        sample = data if data else b""
        profile = self.pool.profile(self.codec_name)
        codec = self.pool.codec(self.codec_name)

        offset = 0
        for index, (tier_name, nbytes) in enumerate(placements):
            key = f"{task_id}/{index}"
            tier = self.hierarchy.by_name(tier_name)
            if materialised:
                piece = data[offset : offset + nbytes]
                payload = codec.compress(piece)
                blob: bytes | None = payload
                stored = len(payload) + HEADER_SIZE
            else:
                ratio = self.ratio_for(sample) if sample else 1.0
                blob = None
                stored = max(int(nbytes / max(ratio, 1e-9)), 1) + HEADER_SIZE
            if not tier.fits(stored):
                # The codec expanded the piece (stored-mode fallback plus
                # the header) past what the uncompressed reservation left;
                # spill downward exactly as the runtime would.
                level = self.hierarchy.level_of(tier_name)
                tier = None
                for lower in range(level + 1, len(self.hierarchy)):
                    candidate = self.hierarchy[lower]
                    if candidate.fits(stored):
                        tier = candidate
                        tier_name = candidate.spec.name
                        break
                if tier is None:
                    raise CapacityError(
                        f"compressed piece ({stored} B) fits no tier at or "
                        f"below the planned one"
                    )
            tier.put(key, blob, accounted_size=stored)
            self._reservations.add(tier_name, nbytes)
            comp_seconds = (
                nbytes / (profile.compress_mbps * MB)
                if self.codec_name != "none"
                else 0.0
            )
            record.receipts.append(
                BufferReceipt(
                    key=key,
                    tier=tier_name,
                    nbytes=nbytes,
                    stored_size=stored,
                    io_seconds=tier.spec.io_seconds(stored),
                    compress_seconds=comp_seconds,
                )
            )
            offset += nbytes
        self._tasks[task_id] = record
        return record

    def get(self, task_id: str) -> tuple[bytes | None, float, float]:
        """Read back: (data or None, io seconds, decompress seconds)."""
        record = self._task(task_id)
        profile = self.pool.profile(self.codec_name)
        codec = self.pool.codec(self.codec_name)
        io_seconds = 0.0
        decompress_seconds = 0.0
        parts: list[bytes] = []
        have_payload = True
        for receipt in record.receipts:
            tier = self.hierarchy.find(receipt.key)
            if tier is None:
                raise TierError(f"piece {receipt.key!r} missing from every tier")
            extent = tier.extent(receipt.key)
            io_seconds += tier.spec.io_seconds(extent.accounted_size)
            if self.codec_name != "none":
                decompress_seconds += receipt.nbytes / (
                    profile.decompress_mbps * MB
                )
            if extent.has_payload:
                parts.append(codec.decompress(tier.get(receipt.key)))
            else:
                have_payload = False
        data = b"".join(parts) if have_payload else None
        return data, io_seconds, decompress_seconds

    def evict(self, task_id: str) -> int:
        record = self._task(task_id)
        released = 0
        for receipt in record.receipts:
            released += self.hierarchy.by_name(receipt.tier).evict(receipt.key)
            self._reservations.release(receipt.tier, receipt.nbytes)
        del self._tasks[task_id]
        return released

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def _task(self, task_id: str) -> BufferedTask:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
