"""Asynchronous tier draining (Hermes's buffering core).

Multi-tiered buffering works because the upper tiers are *emptied* while
the application computes: a background flusher moves the oldest extents of
any tier that crosses its high-water mark down the hierarchy, paying real
(simulated) I/O on both ends. Both the Hermes baseline and HCompress run on
top of this mechanism — for HCompress, the flushed bytes are the compressed
footprint, which is precisely why compression multiplies the value of the
hierarchy (the paper's central claim).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TierError
from ..sim import IO, Delay
from ..tiers import StorageHierarchy, Tier

__all__ = ["TierFlusher", "FlushStats"]


@dataclass
class FlushStats:
    """Cumulative flusher counters."""

    moves: int = 0
    bytes_moved: int = 0
    polls: int = 0


class TierFlusher:
    """Background drain process over a hierarchy.

    Args:
        hierarchy: The managed tier stack. Only bounded tiers are drained;
            the terminal (unbounded) tier is the sink.
        high_water: Fill fraction that triggers draining.
        low_water: Fill fraction draining stops at.
        poll_seconds: Sleep between checks when nothing needs draining.
        batch_moves: Max extents moved per wake-up (bounds event pressure).
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        high_water: float = 0.7,
        low_water: float = 0.4,
        poll_seconds: float = 0.05,
        batch_moves: int = 8,
    ) -> None:
        if not 0.0 < low_water < high_water <= 1.0:
            raise TierError(
                f"need 0 < low_water < high_water <= 1, got "
                f"{low_water}/{high_water}"
            )
        if poll_seconds <= 0:
            raise TierError("poll_seconds must be positive")
        if batch_moves < 1:
            raise TierError("batch_moves must be >= 1")
        self.hierarchy = hierarchy
        self.high_water = high_water
        self.low_water = low_water
        self.poll_seconds = poll_seconds
        self.batch_moves = batch_moves
        self.stats = FlushStats()
        # FIFO order per tier: first-placed extents flush first (they are
        # the least likely to be re-read while still hot).
        self._fifo: dict[str, list[str]] = {}

    def _fill(self, tier: Tier) -> float:
        if tier.spec.capacity in (None, 0):
            return 0.0
        return tier.used / tier.spec.capacity

    def _next_victim(self, tier: Tier) -> str | None:
        queue = self._fifo.setdefault(tier.spec.name, [])
        # Lazily refresh from the tier's extents, preserving FIFO for keys
        # we have already seen.
        seen = set(queue)
        for key in tier.keys():
            if key not in seen:
                queue.append(key)
        while queue:
            key = queue[0]
            if key in tier:
                return key
            queue.pop(0)  # evicted/moved by someone else
        return None

    def _destination(self, level: int, nbytes: int) -> Tier | None:
        for lower in range(level + 1, len(self.hierarchy)):
            tier = self.hierarchy[lower]
            if tier.available and tier.fits(nbytes):
                return tier
        return None

    def process(self):
        """The daemon generator: run via ``sim.add_process(..., daemon=True)``."""
        while True:
            moved = 0
            for level in range(len(self.hierarchy) - 1):
                tier = self.hierarchy[level]
                if not tier.spec.bounded:
                    continue
                while (
                    self._fill(tier) > self.high_water
                    and moved < self.batch_moves
                ):
                    key = self._next_victim(tier)
                    if key is None:
                        break
                    extent = tier.extent(key)
                    dst = self._destination(level, extent.accounted_size)
                    if dst is None:
                        break
                    payload = tier.get(key) if extent.has_payload else None
                    nbytes = extent.accounted_size
                    yield IO(tier.spec.name, nbytes, "read")
                    yield IO(dst.spec.name, nbytes, "write")
                    # Re-check: a foreground writer may have claimed the
                    # destination's room while our I/O was in flight.
                    if key not in tier:
                        continue
                    if not dst.fits(nbytes):
                        continue
                    tier.evict(key)
                    dst.put(key, payload, accounted_size=nbytes)
                    try:
                        self._fifo[tier.spec.name].remove(key)
                    except ValueError:
                        pass
                    self.stats.moves += 1
                    self.stats.bytes_moved += nbytes
                    moved += 1
                    if self._fill(tier) <= self.low_water:
                        break
            self.stats.polls += 1
            yield Delay(self.poll_seconds)
