"""Asynchronous tier draining (Hermes's buffering core).

Multi-tiered buffering works because the upper tiers are *emptied* while
the application computes: a background flusher moves the oldest extents of
any tier that crosses its high-water mark down the hierarchy, paying real
(simulated) I/O on both ends. Both the Hermes baseline and HCompress run on
top of this mechanism — for HCompress, the flushed bytes are the compressed
footprint, which is precisely why compression multiplies the value of the
hierarchy (the paper's central claim).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TierError, TierUnavailableError, TransientIOError
from ..sim import IO, Delay
from ..tiers import StorageHierarchy, Tier

__all__ = ["TierFlusher", "FlushStats"]


@dataclass
class FlushStats:
    """Cumulative flusher counters."""

    moves: int = 0
    bytes_moved: int = 0
    polls: int = 0
    failed_moves: int = 0  # transient failures; the move is retried later
    skipped_unavailable: int = 0  # polls that skipped a down source tier


class TierFlusher:
    """Background drain process over a hierarchy.

    Args:
        hierarchy: The managed tier stack. Only bounded tiers are drained;
            the terminal (unbounded) tier is the sink.
        high_water: Fill fraction that triggers draining.
        low_water: Fill fraction draining stops at.
        poll_seconds: Sleep between checks when nothing needs draining.
        batch_moves: Max extents moved per wake-up (bounds event pressure).
        obs: Optional :class:`~repro.obs.Observability` sink; each poll
            fires the ``flusher.poll`` profiling hooks and the cumulative
            ``FlushStats`` are mirrored at export via ``sync_flusher``.
        crashpoints: Optional crash-point arbiter
            (:class:`~repro.recovery.Crashpoints`); the move step honours
            the ``flusher.pre_copy``/``post_copy``/``post_evict`` sites.
            A crash between copy and evict leaves the key on two tiers —
            recovery's duplicate sweep reclaims the stale copy.
        qos: Optional :class:`~repro.qos.QosGovernor`; destination
            selection skips tiers whose circuit breaker currently
            quarantines them (via the non-mutating ``tier_quarantined``
            check, so the flusher never consumes a half-open probe slot
            that foreground writes should spend).
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        high_water: float = 0.7,
        low_water: float = 0.4,
        poll_seconds: float = 0.05,
        batch_moves: int = 8,
        obs=None,
        crashpoints=None,
        qos=None,
    ) -> None:
        if not 0.0 < low_water < high_water <= 1.0:
            raise TierError(
                f"need 0 < low_water < high_water <= 1, got "
                f"{low_water}/{high_water}"
            )
        if poll_seconds <= 0:
            raise TierError("poll_seconds must be positive")
        if batch_moves < 1:
            raise TierError("batch_moves must be >= 1")
        self.hierarchy = hierarchy
        self.high_water = high_water
        self.low_water = low_water
        self.poll_seconds = poll_seconds
        self.batch_moves = batch_moves
        self.obs = obs
        self.crashpoints = crashpoints
        self.qos = qos
        self.stats = FlushStats()
        # FIFO order per tier: first-placed extents flush first (they are
        # the least likely to be re-read while still hot).
        self._fifo: dict[str, list[str]] = {}

    def _fill(self, tier: Tier) -> float:
        if tier.spec.capacity in (None, 0):
            return 0.0
        return tier.used / tier.spec.capacity

    def _next_victim(self, tier: Tier) -> str | None:
        queue = self._fifo.setdefault(tier.spec.name, [])
        # Lazily refresh from the tier's extents, preserving FIFO for keys
        # we have already seen.
        seen = set(queue)
        for key in tier.keys():
            if key not in seen:
                queue.append(key)
        while queue:
            key = queue[0]
            if key in tier:
                return key
            queue.pop(0)  # evicted/moved by someone else
        return None

    def _destination(self, level: int, nbytes: int) -> Tier | None:
        for lower in range(level + 1, len(self.hierarchy)):
            tier = self.hierarchy[lower]
            if not tier.available or not tier.fits(nbytes):
                continue
            if self.qos is not None and self.qos.tier_quarantined(
                tier.spec.name
            ):
                continue
            return tier
        return None

    def _defer(self, tier: Tier, key: str) -> None:
        """Rotate a key whose move failed to the back of the FIFO so the
        next poll retries it instead of hot-looping on the same victim."""
        queue = self._fifo.setdefault(tier.spec.name, [])
        try:
            queue.remove(key)
        except ValueError:
            pass
        queue.append(key)
        self.stats.failed_moves += 1

    def process(self):
        """The daemon generator: run via ``sim.add_process(..., daemon=True)``.

        Resilient by construction: a down source tier is skipped until it
        recovers, and a move that fails mid-flight (transient device error,
        destination outage, destination filled by a foreground writer) is
        deferred and retried on a later poll — the drain loop itself never
        crashes on tier faults.
        """
        while True:
            moved = 0
            if self.obs is not None:
                self.obs.hooks.enter("flusher.poll")
            for level in range(len(self.hierarchy) - 1):
                tier = self.hierarchy[level]
                if not tier.spec.bounded:
                    continue
                if not tier.available:
                    # Outage: nothing can be read off this tier right now.
                    self.stats.skipped_unavailable += 1
                    continue
                while (
                    self._fill(tier) > self.high_water
                    and moved < self.batch_moves
                ):
                    key = self._next_victim(tier)
                    if key is None:
                        break
                    try:
                        extent = tier.extent(key)
                        dst = self._destination(level, extent.accounted_size)
                        if dst is None:
                            break
                        payload = tier.get(key) if extent.has_payload else None
                    except (TransientIOError, TierUnavailableError):
                        self._defer(tier, key)
                        break  # retry on the next poll
                    nbytes = extent.accounted_size
                    yield IO(tier.spec.name, nbytes, "read")
                    yield IO(dst.spec.name, nbytes, "write")
                    # Re-check: a foreground writer may have claimed the
                    # destination's room (or a fault may have hit either
                    # end) while our I/O was in flight.
                    if key not in tier:
                        continue
                    if not dst.fits(nbytes):
                        self._defer(tier, key)
                        continue
                    if self.crashpoints is not None:
                        self.crashpoints.reached("flusher.pre_copy")
                    try:
                        # Copy before evict: if the destination write fails
                        # the source extent is untouched and no data is
                        # ever lost (both tiers briefly hold the key; the
                        # top-down ``find`` keeps reads on the source).
                        dst.put(key, payload, accounted_size=nbytes)
                    except (TransientIOError, TierUnavailableError, TierError):
                        self._defer(tier, key)
                        break
                    if self.crashpoints is not None:
                        self.crashpoints.reached("flusher.post_copy")
                    tier.evict(key)
                    if self.crashpoints is not None:
                        self.crashpoints.reached("flusher.post_evict")
                    try:
                        self._fifo[tier.spec.name].remove(key)
                    except ValueError:
                        pass
                    self.stats.moves += 1
                    self.stats.bytes_moved += nbytes
                    moved += 1
                    if self._fill(tier) <= self.low_water:
                        break
            self.stats.polls += 1
            if self.obs is not None:
                self.obs.hooks.exit("flusher.poll", moved=moved)
            yield Delay(self.poll_seconds)
