"""Hermes baseline: multi-tier buffering with pluggable placement.

Hermes (HPDC'18) is the multi-tiered I/O buffering system the paper
builds on and compares against; this package reproduces the pieces the
evaluation needs:

* ``dpe`` — the data-placement engines (MaxBW, round-robin, random,
  min-IO-time) that choose a tier for each incoming buffer,
* ``buffering`` — :class:`HermesBuffering`, tiering with **no** data
  reduction (the paper's MTNC configuration),
* ``adapters`` — :class:`HermesWithStaticCompression`, placement first
  and a single fixed codec after (Fig. 5's comparator, demonstrating the
  under-utilisation HCompress fixes),
* ``flusher`` — :class:`TierFlusher`, the asynchronous drain daemon that
  empties upper tiers during compute phases. Both the baseline **and**
  HCompress run on top of it (DESIGN.md §5b.4).

All engines consume the same hierarchy, simulator, and receipts as the
HCompress core, so experiment harnesses drive them interchangeably.
"""

from .adapters import HermesWithStaticCompression
from .buffering import BufferedTask, BufferReceipt, HermesBuffering
from .dpe import (
    DataPlacementEngine,
    MaxBandwidthDpe,
    MinIoTimeDpe,
    RandomDpe,
    RoundRobinDpe,
)

__all__ = [
    "BufferReceipt",
    "BufferedTask",
    "DataPlacementEngine",
    "HermesBuffering",
    "HermesWithStaticCompression",
    "MaxBandwidthDpe",
    "MinIoTimeDpe",
    "RandomDpe",
    "RoundRobinDpe",
]
