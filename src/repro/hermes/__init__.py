"""Hermes baseline: multi-tier buffering with pluggable placement, and the
placement-then-compression adapter the paper compares against."""

from .adapters import HermesWithStaticCompression
from .buffering import BufferedTask, BufferReceipt, HermesBuffering
from .dpe import (
    DataPlacementEngine,
    MaxBandwidthDpe,
    MinIoTimeDpe,
    RandomDpe,
    RoundRobinDpe,
)

__all__ = [
    "BufferReceipt",
    "BufferedTask",
    "DataPlacementEngine",
    "HermesBuffering",
    "HermesWithStaticCompression",
    "MaxBandwidthDpe",
    "MinIoTimeDpe",
    "RandomDpe",
    "RoundRobinDpe",
]
