"""From-scratch Brotli-style codec (pool member ``brotli``).

Two-stage design mirroring Brotli's architecture: a wide-window LZ77 pass
(4 MiB window, deep hash table) produces a compact token serialisation
(varint literal length + literals + varint match length + varint offset),
which is then entropy-coded with the canonical Huffman stage. Sits between
the byte-LZ family and the block-sorting family on the speed/ratio curve —
the paper's Fig. 1 uses it as the "light but effective" choice for VPIC.
"""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, get_codec, register_codec
from .lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
    read_varint,
    write_varint,
)

_PARAMS = MatchParams(
    hash_bits=17, min_match=4, max_match=1 << 20, window=1 << 22, skip_trigger=7
)


@register_codec
class BrotliCodec(Codec):
    """Wide-window LZ77 with a Huffman entropy stage."""

    meta = CodecMeta(name="brotli", codec_id=10, family="dictionary")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 64:
            return frame_wrap(MODE_STORED, n, data)
        tokens = find_tokens(data, _PARAMS)
        serial = bytearray()
        for tok in tokens:
            write_varint(serial, tok.lit_len)
            serial += data[tok.lit_start : tok.lit_start + tok.lit_len]
            write_varint(serial, tok.match_len)
            if tok.match_len:
                write_varint(serial, tok.offset)
        payload = get_codec("huffman").compress(bytes(serial))
        if len(payload) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, payload)

    def decompress(self, payload: bytes) -> bytes:
        mode, size, body = frame_parse(ensure_bytes(payload, "payload"), "brotli")
        if mode == MODE_STORED:
            return bytes(body)
        serial = get_codec("huffman").decompress(body)
        out = bytearray()
        pos = 0
        n = len(serial)
        while pos < n:
            lit_len, pos = read_varint(serial, pos)
            if pos + lit_len > n:
                raise CorruptDataError("brotli: literal run past end")
            out += serial[pos : pos + lit_len]
            pos += lit_len
            match_len, pos = read_varint(serial, pos)
            if match_len:
                offset, pos = read_varint(serial, pos)
                copy_match(out, offset, match_len)
        if len(out) != size:
            raise CorruptDataError(
                f"brotli: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
