"""The 16-byte sub-task header (paper §IV-G2, "HCDP Algorithm metadata").

Because the engine may pick a different library for every sub-task and tier,
each stored payload is decorated with a fixed 16-byte header carrying the
4-tuple {start-offset, length, compression library, resulting size}. The
decompression path reads the codec id straight from the data, so any process
can decode independently of the engine that produced the schema.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SchemaError, UnknownCodecError
from .base import codec_ids, get_codec

__all__ = [
    "SubTaskHeader",
    "HEADER_SIZE",
    "pack_headers",
    "unpack_headers",
    "wrap_payload",
    "unwrap_payload",
]

_STRUCT = struct.Struct("<IIII")
HEADER_SIZE: int = _STRUCT.size
assert HEADER_SIZE == 16, "paper specifies a 16-byte header"

_U32_MAX = 0xFFFFFFFF


@dataclass(frozen=True)
class SubTaskHeader:
    """{start-offset, length, compression library, resulting size}.

    Attributes:
        start_offset: Byte offset of this piece within the original task
            buffer.
        length: Uncompressed length of the piece.
        codec_id: Registry id of the library applied (0 = none).
        resulting_size: Stored (compressed) payload length.
    """

    start_offset: int
    length: int
    codec_id: int
    resulting_size: int

    def __post_init__(self) -> None:
        for fname in ("start_offset", "length", "codec_id", "resulting_size"):
            value = getattr(self, fname)
            if not 0 <= value <= _U32_MAX:
                raise SchemaError(f"header field {fname}={value} outside u32 range")
        # The piece's end offset must itself be u32-addressable, or the
        # reassembly slice ``buffer[start:start+length]`` could silently
        # mis-place data from a corrupted header.
        if self.start_offset + self.length > _U32_MAX:
            raise SchemaError(
                f"piece end offset {self.start_offset + self.length} "
                f"(start {self.start_offset} + length {self.length}) "
                f"overflows u32"
            )

    def pack(self) -> bytes:
        return _STRUCT.pack(
            self.start_offset, self.length, self.codec_id, self.resulting_size
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "SubTaskHeader":
        """Decode the leading 16 bytes; trailing bytes are ignored.

        Raises :class:`~repro.errors.SchemaError` on a short buffer, a
        field outside u32 bounds, or a codec id with no registered
        implementation — corrupt metadata must never reach the slicing or
        decompression machinery as a surprise ``KeyError``/``IndexError``.
        """
        if len(blob) < HEADER_SIZE:
            raise SchemaError(
                f"sub-task header needs {HEADER_SIZE} bytes, got {len(blob)}"
            )
        header = cls(*_STRUCT.unpack_from(blob))
        try:
            get_codec(header.codec_id)
        except UnknownCodecError:
            raise SchemaError(
                f"sub-task header carries unknown codec id {header.codec_id}"
            ) from None
        return header


def wrap_payload(
    data: bytes, start_offset: int, codec_name: str | int
) -> tuple[bytes, SubTaskHeader]:
    """Compress one piece and decorate it with its header.

    Returns ``(header + payload, header)``; the header's ``resulting_size``
    reflects the payload only (header excluded), matching the paper's
    accounting of compressed footprint.
    """
    codec = get_codec(codec_name)
    payload = codec.compress(data)
    header = SubTaskHeader(
        start_offset=start_offset,
        length=len(data),
        codec_id=codec.meta.codec_id,
        resulting_size=len(payload),
    )
    return header.pack() + payload, header


def pack_headers(headers: Sequence[SubTaskHeader]) -> bytes:
    """Vectorised batch form of :meth:`SubTaskHeader.pack`.

    Byte-compatible with the per-header path: the result equals
    ``b"".join(h.pack() for h in headers)``. Fields were already validated
    at header construction, so the whole batch reduces to one ``<u4``
    array fill and a single ``tobytes()``.
    """
    if not headers:
        return b""
    arr = np.array(
        [
            (h.start_offset, h.length, h.codec_id, h.resulting_size)
            for h in headers
        ],
        dtype="<u4",
    )
    return arr.tobytes()


def unpack_headers(blobs: Sequence[bytes]) -> list[SubTaskHeader]:
    """Vectorised batch form of :meth:`SubTaskHeader.unpack`.

    Decodes the leading 16 bytes of every blob with one numpy pass and
    validates all four header invariants (u32 fields, end-offset
    overflow, registered codec id) across the whole batch at once. When
    any blob fails validation the batch falls back to the sequential
    decoder so the raised :class:`SchemaError` is byte-for-byte the one
    the per-blob path would have produced for the first bad blob.
    """
    if not blobs:
        return []
    if any(len(blob) < HEADER_SIZE for blob in blobs):
        return [SubTaskHeader.unpack(blob) for blob in blobs]
    joined = b"".join(bytes(blob[:HEADER_SIZE]) for blob in blobs)
    fields = np.frombuffer(joined, dtype="<u4").reshape(len(blobs), 4)
    wide = fields.astype(np.int64)
    known = np.array(codec_ids(), dtype=np.int64)
    if (wide[:, 0] + wide[:, 1] > _U32_MAX).any() or not np.isin(
        wide[:, 2], known
    ).all():
        return [SubTaskHeader.unpack(blob) for blob in blobs]
    rows = wide.tolist()
    return [SubTaskHeader(r[0], r[1], r[2], r[3]) for r in rows]


def unwrap_payload(
    blob: bytes, _header: SubTaskHeader | None = None
) -> tuple[bytes, SubTaskHeader]:
    """Decode a header-decorated piece back to its original bytes.

    The blob must be exactly ``header + payload``: a short blob means the
    payload was truncated, a long one means ``resulting_size`` no longer
    matches the stored bytes — both are typed :class:`SchemaError`s, as is
    a decompressed length that disagrees with the header. Batch readers
    pass ``_header`` when they already parsed this blob's header through
    :func:`unpack_headers`; every payload-level check still runs.
    """
    header = _header if _header is not None else SubTaskHeader.unpack(blob)
    stored = len(blob) - HEADER_SIZE
    if stored != header.resulting_size:
        raise SchemaError(
            f"payload size mismatch: header says {header.resulting_size}, "
            f"blob carries {stored}"
        )
    payload = blob[HEADER_SIZE:]
    data = get_codec(header.codec_id).decompress(payload)
    if len(data) != header.length:
        raise SchemaError(
            f"decompressed length {len(data)} != header length {header.length}"
        )
    return data, header
