"""LZMA wrapper — the highest-ratio, slowest member of the pool.

Matches the paper's use of lzma as the "archival" end of the compression
spectrum (Table II pairs archival I/O with a pure-ratio priority).
"""

from __future__ import annotations

import lzma

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec


@register_codec
class LzmaCodec(Codec):
    """LZMA via the CPython ``lzma`` module (xz container, preset 6)."""

    meta = CodecMeta(name="lzma", codec_id=3, family="dictionary", stdlib=True)

    def __init__(self, preset: int = 6) -> None:
        if not 0 <= preset <= 9:
            raise ValueError(f"lzma preset must be in [0, 9], got {preset}")
        self._preset = preset

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(ensure_bytes(data), preset=self._preset)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return lzma.decompress(ensure_bytes(payload, "payload"))
        except lzma.LZMAError as exc:
            raise CorruptDataError(f"lzma: {exc}") from exc
