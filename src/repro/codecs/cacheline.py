"""Cache-line-class codecs for the RAM tier (pool members ``bdi``, ``fpc``).

Hardware memory-compression research (Pekhimenko's base-delta-immediate
work and frequent-pattern compression) shows that trivially simple word
codecs reach useful ratios at near-memory bandwidth. That is exactly the
operating point HCDP needs for the RAM tier, where even "fast" byte-LZ is
the placement bottleneck: these codecs trade ratio for ~GB/s nominal
speed (see ``NOMINAL_PROFILES``) so the DP genuinely prefers them for
top-tier pieces.

Both codecs are fully vectorised with numpy — classification, section
packing, and reconstruction are whole-array operations with no per-word
Python loop — and share the common ``(mode, original_size)`` frame with a
stored fallback for incompressible input.

``bdi`` — base-delta-immediate over aligned words. The buffer is split
into 64-byte lines; each line stores its first word as the base plus the
remaining words as narrow signed deltas. Two granularities are tried
(8-byte words x 8, 4-byte words x 16) and the smaller encoding wins.
Per-line control codes::

    0   all-zero line                (no payload)
    1   repeat: every word == base   (base only)
    2.. base + deltas of width 2**k  (base + wpl-1 narrow words)
    R   raw line                     (all words verbatim)

Delta arithmetic wraps modulo the word size in both directions, so
overflow is self-consistent and every line round-trips exactly.

``fpc`` — frequent-pattern compression over 4-byte words. Each word is
classified into one of seven patterns (zero, sign-extended int8/int16,
repeated byte, repeated halfword, high-half-only, raw) recorded as a
nibble prefix; payload bytes are grouped per pattern class for contiguous
vectorised scatter on decode.

Decode never trusts the declared size before validating section lengths
against the actual body, so truncated or bit-flipped payloads raise
:class:`CorruptDataError` instead of over-allocating or leaking numpy
shape errors.
"""

from __future__ import annotations

import numpy as np

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import MODE_CODED, MODE_STORED, frame_parse, frame_wrap

__all__ = [
    "BdiCodec",
    "FpcCodec",
    "bdi_encode",
    "bdi_decode",
    "fpc_encode",
    "fpc_decode",
]

_LINE = 64

#: (word dtype, words per 64-byte line, delta dtypes narrow->wide)
_BDI_GRAINS = (
    (np.dtype("<i8"), 8, (np.dtype("<i1"), np.dtype("<i2"), np.dtype("<i4"))),
    (np.dtype("<i4"), 16, (np.dtype("<i1"), np.dtype("<i2"))),
)


def _pad_to(data: bytes, align: int) -> bytes:
    rem = len(data) % align
    return data if rem == 0 else data + bytes(align - rem)


# -- bdi ----------------------------------------------------------------------


def _bdi_encode_grain(padded: bytes, grain: int) -> bytes:
    """Encode one granularity; returns the body minus the grain flag byte."""
    word_dtype, wpl, delta_dtypes = _BDI_GRAINS[grain]
    words = np.frombuffer(padded, dtype=word_dtype).reshape(-1, wpl)
    base = words[:, 0]
    deltas = words - base[:, None]  # wrapping subtract; see module docstring
    raw_code = 2 + len(delta_dtypes)

    conditions = [~words.any(axis=1), ~deltas.any(axis=1)]
    choices = [0, 1]
    for k, dt in enumerate(delta_dtypes):
        info = np.iinfo(dt)
        conditions.append(((deltas >= info.min) & (deltas <= info.max)).all(axis=1))
        choices.append(2 + k)
    codes = np.select(conditions, choices, default=raw_code).astype(np.uint8)

    parts = [codes.tobytes(), base[codes == 1].tobytes()]
    for k, dt in enumerate(delta_dtypes):
        mask = codes == 2 + k
        parts.append(base[mask].tobytes())
        parts.append(deltas[mask][:, 1:].astype(dt).tobytes())
    parts.append(words[codes == raw_code].tobytes())
    return b"".join(parts)


def bdi_encode(data: bytes) -> bytes:
    """Raw BDI body (no frame): grain flag + controls + grouped sections."""
    if not data:
        return b""
    padded = _pad_to(data, _LINE)
    bodies = [_bdi_encode_grain(padded, g) for g in range(len(_BDI_GRAINS))]
    grain = min(range(len(bodies)), key=lambda g: len(bodies[g]))
    return bytes([grain]) + bodies[grain]


def bdi_decode(body: bytes, expected_size: int) -> bytes:
    """Invert :func:`bdi_encode`; malformed input raises CorruptDataError."""
    if expected_size == 0:
        if body:
            raise CorruptDataError("bdi: non-empty body for empty payload")
        return b""
    if not body:
        raise CorruptDataError("bdi: empty body")
    grain = body[0]
    if grain >= len(_BDI_GRAINS):
        raise CorruptDataError(f"bdi: unknown granularity flag {grain}")
    word_dtype, wpl, delta_dtypes = _BDI_GRAINS[grain]
    raw_code = 2 + len(delta_dtypes)
    wsize = word_dtype.itemsize

    nlines = -(-expected_size // _LINE)
    if len(body) - 1 < nlines:
        raise CorruptDataError("bdi: truncated control section")
    codes = np.frombuffer(body, dtype=np.uint8, count=nlines, offset=1)
    if codes.size and int(codes.max()) > raw_code:
        raise CorruptDataError(f"bdi: invalid control code {int(codes.max())}")
    counts = np.bincount(codes, minlength=raw_code + 1)

    expected_body = int(counts[1]) * wsize
    for k, dt in enumerate(delta_dtypes):
        expected_body += int(counts[2 + k]) * (wsize + (wpl - 1) * dt.itemsize)
    expected_body += int(counts[raw_code]) * wsize * wpl
    if len(body) - 1 - nlines != expected_body:
        raise CorruptDataError(
            f"bdi: body length {len(body) - 1 - nlines} != expected {expected_body}"
        )

    out = np.zeros((nlines, wpl), dtype=word_dtype)
    pos = 1 + nlines

    idx = np.flatnonzero(codes == 1)
    if idx.size:
        bases = np.frombuffer(body, dtype=word_dtype, count=idx.size, offset=pos)
        out[idx] = bases[:, None]
        pos += idx.size * wsize

    for k, dt in enumerate(delta_dtypes):
        idx = np.flatnonzero(codes == 2 + k)
        if not idx.size:
            continue
        bases = np.frombuffer(body, dtype=word_dtype, count=idx.size, offset=pos)
        pos += idx.size * wsize
        deltas = np.frombuffer(
            body, dtype=dt, count=idx.size * (wpl - 1), offset=pos
        ).reshape(idx.size, wpl - 1)
        pos += deltas.nbytes
        out[idx, 0] = bases
        out[idx, 1:] = bases[:, None] + deltas.astype(word_dtype)  # wrapping add

    idx = np.flatnonzero(codes == raw_code)
    if idx.size:
        out[idx] = np.frombuffer(
            body, dtype=word_dtype, count=idx.size * wpl, offset=pos
        ).reshape(idx.size, wpl)

    result = out.tobytes()[:expected_size]
    if len(result) != expected_size:
        raise CorruptDataError(
            f"bdi: reconstructed {len(result)} bytes, expected {expected_size}"
        )
    return result


# -- fpc ----------------------------------------------------------------------

#: Payload bytes per FPC pattern code (code 6 = raw word).
_FPC_DATA_BYTES = (0, 1, 1, 2, 2, 2, 4)
_FPC_RAW = 6


def fpc_encode(data: bytes) -> bytes:
    """Raw FPC body (no frame): packed nibble prefixes + grouped sections."""
    if not data:
        return b""
    padded = _pad_to(data, 4)
    w = np.frombuffer(padded, dtype="<u4")
    sv = w.view("<i4")
    low_byte = w & np.uint32(0xFF)
    low_half = w & np.uint32(0xFFFF)
    high_half = w >> np.uint32(16)
    codes = np.select(
        [
            w == 0,
            (sv >= -128) & (sv <= 127),
            w == low_byte * np.uint32(0x01010101),
            (sv >= -32768) & (sv <= 32767),
            low_half == high_half,
            low_half == 0,
        ],
        [0, 1, 2, 3, 4, 5],
        default=_FPC_RAW,
    ).astype(np.uint8)

    if codes.size % 2:
        packed_src = np.append(codes, np.uint8(0))
    else:
        packed_src = codes
    prefix = (packed_src[0::2] | (packed_src[1::2] << np.uint8(4))).tobytes()

    parts = [
        prefix,
        sv[codes == 1].astype("<i1").tobytes(),
        low_byte[codes == 2].astype("<u1").tobytes(),
        sv[codes == 3].astype("<i2").tobytes(),
        low_half[codes == 4].astype("<u2").tobytes(),
        high_half[codes == 5].astype("<u2").tobytes(),
        w[codes == _FPC_RAW].tobytes(),
    ]
    return b"".join(parts)


def fpc_decode(body: bytes, expected_size: int) -> bytes:
    """Invert :func:`fpc_encode`; malformed input raises CorruptDataError."""
    if expected_size == 0:
        if body:
            raise CorruptDataError("fpc: non-empty body for empty payload")
        return b""
    nwords = -(-expected_size // 4)
    nprefix = -(-nwords // 2)
    if len(body) < nprefix:
        raise CorruptDataError("fpc: truncated prefix section")
    packed = np.frombuffer(body, dtype=np.uint8, count=nprefix)
    unpacked = np.empty(nprefix * 2, dtype=np.uint8)
    unpacked[0::2] = packed & 0x0F
    unpacked[1::2] = packed >> 4
    codes = unpacked[:nwords]
    if int(codes.max(initial=0)) > _FPC_RAW:
        raise CorruptDataError(f"fpc: invalid pattern code {int(codes.max())}")

    counts = np.bincount(codes, minlength=_FPC_RAW + 1)
    expected_body = sum(
        int(counts[c]) * _FPC_DATA_BYTES[c] for c in range(_FPC_RAW + 1)
    )
    if len(body) - nprefix != expected_body:
        raise CorruptDataError(
            f"fpc: body length {len(body) - nprefix} != expected {expected_body}"
        )

    out = np.zeros(nwords, dtype="<u4")
    outs = out.view("<i4")
    pos = nprefix

    def _section(code: int, dtype: str) -> np.ndarray:
        nonlocal pos
        idx = np.flatnonzero(codes == code)
        arr = np.frombuffer(body, dtype=dtype, count=idx.size, offset=pos)
        pos += arr.nbytes
        return idx, arr

    idx, arr = _section(1, "<i1")
    outs[idx] = arr.astype("<i4")
    idx, arr = _section(2, "<u1")
    out[idx] = arr.astype("<u4") * np.uint32(0x01010101)
    idx, arr = _section(3, "<i2")
    outs[idx] = arr.astype("<i4")
    idx, arr = _section(4, "<u2")
    out[idx] = arr.astype("<u4") * np.uint32(0x00010001)
    idx, arr = _section(5, "<u2")
    out[idx] = arr.astype("<u4") << np.uint32(16)
    idx, arr = _section(_FPC_RAW, "<u4")
    out[idx] = arr

    result = out.tobytes()[:expected_size]
    if len(result) != expected_size:
        raise CorruptDataError(
            f"fpc: reconstructed {len(result)} bytes, expected {expected_size}"
        )
    return result


# -- framed codecs ------------------------------------------------------------


class _FramedCachelineCodec(Codec):
    """Shared frame + stored-fallback shell over a raw body encoder."""

    _encode = staticmethod(lambda data: b"")
    _decode = staticmethod(lambda body, size: b"")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        body = type(self)._encode(data)
        if len(body) >= len(data) and len(data) > 0:
            return frame_wrap(MODE_STORED, len(data), data)
        return frame_wrap(MODE_CODED, len(data), body)

    def decompress(self, payload: bytes) -> bytes:
        name = self.meta.name
        mode, size, body = frame_parse(ensure_bytes(payload, "payload"), name)
        if mode == MODE_STORED:
            return bytes(body)
        return type(self)._decode(body, size)


@register_codec
class BdiCodec(_FramedCachelineCodec):
    """Base-delta-immediate codec (see module docstring)."""

    meta = CodecMeta(name="bdi", codec_id=13, family="cacheline")
    _encode = staticmethod(bdi_encode)
    _decode = staticmethod(bdi_decode)


@register_codec
class FpcCodec(_FramedCachelineCodec):
    """Frequent-pattern codec (see module docstring)."""

    meta = CodecMeta(name="fpc", codec_id=14, family="cacheline")
    _encode = staticmethod(fpc_encode)
    _decode = staticmethod(fpc_decode)
