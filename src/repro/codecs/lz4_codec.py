"""From-scratch LZ4-style codec (pool member ``lz4``).

Uses the LZ4 block format: per sequence a token byte packs the literal run
length (high nibble) and match length minus 4 (low nibble), both with
255-extension bytes, followed by the literals and a 2-byte little-endian
offset. The final sequence is literals-only. Fast scan, modest ratio — the
"speed" end of the pool's spectrum.
"""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
)

_PARAMS = MatchParams(
    hash_bits=16, min_match=4, max_match=1 << 16, window=65535, skip_trigger=6
)
_MIN_MATCH = 4


def _write_length(out: bytearray, value: int) -> None:
    """Emit LZ4-style 255-extension bytes for a nibble overflow value."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _read_length(buf: bytes, pos: int) -> tuple[int, int]:
    total = 0
    while True:
        if pos >= len(buf):
            raise CorruptDataError("lz4: truncated length extension")
        byte = buf[pos]
        pos += 1
        total += byte
        if byte != 255:
            return total, pos


@register_codec
class Lz4Codec(Codec):
    """Greedy hash-match LZ77 with LZ4 block-format serialisation."""

    meta = CodecMeta(name="lz4", codec_id=5, family="byte-lz")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 16:
            return frame_wrap(MODE_STORED, n, data)
        tokens = find_tokens(data, _PARAMS)
        out = bytearray()
        for tok in tokens:
            lit = tok.lit_len
            if tok.match_len:
                mlen = tok.match_len - _MIN_MATCH
                token_byte = (min(lit, 15) << 4) | min(mlen, 15)
                out.append(token_byte)
                if lit >= 15:
                    _write_length(out, lit - 15)
                out += data[tok.lit_start : tok.lit_start + lit]
                out += tok.offset.to_bytes(2, "little")
                if mlen >= 15:
                    _write_length(out, mlen - 15)
            else:
                out.append(min(lit, 15) << 4)
                if lit >= 15:
                    _write_length(out, lit - 15)
                out += data[tok.lit_start : tok.lit_start + lit]
        if len(out) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, bytes(out))

    def decompress(self, payload: bytes) -> bytes:
        payload = ensure_bytes(payload, "payload")
        mode, size, body = frame_parse(payload, "lz4")
        if mode == MODE_STORED:
            return bytes(body)
        out = bytearray()
        pos = 0
        n = len(body)
        while pos < n:
            token = body[pos]
            pos += 1
            lit = token >> 4
            if lit == 15:
                extra, pos = _read_length(body, pos)
                lit += extra
            if pos + lit > n:
                raise CorruptDataError("lz4: literal run past end of payload")
            out += body[pos : pos + lit]
            pos += lit
            if pos == n:
                break  # terminal literals-only sequence
            if pos + 2 > n:
                raise CorruptDataError("lz4: truncated match offset")
            offset = int.from_bytes(body[pos : pos + 2], "little")
            pos += 2
            mlen = token & 0x0F
            if mlen == 15:
                extra, pos = _read_length(body, pos)
                mlen += extra
            copy_match(out, offset, mlen + _MIN_MATCH)
        if len(out) != size:
            raise CorruptDataError(
                f"lz4: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
