"""Nominal codec performance profiles.

The paper evaluates native C libraries whose wall-clock speeds span two
orders of magnitude (lz4 ~GB/s, lzma ~MB/s). Our from-scratch Python
implementations round-trip the same formats but their relative speeds are
distorted by the interpreter, which would invert the orderings every figure
depends on. The simulator therefore charges compression time from this
calibrated profile table (single-core MB/s figures in line with published
lzbench-era measurements of the original libraries), while compression
*ratios* are always measured live on the actual bytes.

See DESIGN.md §2 for the substitution rationale. A ``measured`` mode
(``repro.core.profiler``) exists to re-derive the table from real timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..errors import UnknownCodecError
from ..units import MB

__all__ = ["CodecProfile", "NOMINAL_PROFILES", "get_profile", "nominal_duration"]

#: Distribution classes recognised by the input analyzer; ratio hints are
#: keyed by these (plus "text" for character data and "zeros" for sparse).
DISTRIBUTION_CLASSES = ("uniform", "normal", "exponential", "gamma", "text", "zeros")


@dataclass(frozen=True)
class CodecProfile:
    """Calibrated single-core performance of one compression library.

    Attributes:
        name: Codec registry name.
        compress_mbps: Nominal compression throughput, MB/s.
        decompress_mbps: Nominal decompression throughput, MB/s.
        ratio_hints: Expected compression ratio per distribution class —
            used only to bootstrap the cost-predictor seed; live ratios
            override these as feedback arrives.
    """

    name: str
    compress_mbps: float
    decompress_mbps: float
    ratio_hints: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.compress_mbps <= 0 or self.decompress_mbps <= 0:
            raise ValueError(f"{self.name}: speeds must be positive")
        object.__setattr__(
            self, "ratio_hints", MappingProxyType(dict(self.ratio_hints))
        )

    def hint(self, distribution: str) -> float:
        """Ratio hint for a distribution class (1.0 when unknown)."""
        return self.ratio_hints.get(distribution, 1.0)


def _hints(
    uniform: float, normal: float, exponential: float, gamma: float,
    text: float, zeros: float,
) -> dict[str, float]:
    return {
        "uniform": uniform,
        "normal": normal,
        "exponential": exponential,
        "gamma": gamma,
        "text": text,
        "zeros": zeros,
    }


# Speeds: single-core MB/s, in line with lzbench-class measurements of the
# original C libraries on ~2019 Xeon hardware. Ratio hints: binary numeric
# buffers of the named distribution (uniform mantissas are incompressible;
# skewed distributions expose exponent/byte structure).
NOMINAL_PROFILES: dict[str, CodecProfile] = {
    p.name: p
    for p in (
        CodecProfile("none", 12000.0, 12000.0, _hints(1.0, 1.0, 1.0, 1.0, 1.0, 1.0)),
        # Cache-line-class codecs (Pekhimenko BDI/FPC lineage): hardware
        # proposals run at link rate; as software they are single-pass word
        # arithmetic, so the nominal table charges them at memory-bandwidth
        # class speeds — well above every byte-LZ — with modest ratios on
        # structured numeric data and ~1.0 on high-entropy mantissas.
        CodecProfile("bdi", 3000.0, 5200.0, _hints(1.0, 1.1, 1.4, 1.6, 1.0, 55.0)),
        CodecProfile("fpc", 2600.0, 4600.0, _hints(1.0, 1.1, 1.3, 1.5, 1.0, 7.5)),
        CodecProfile("lz4", 730.0, 3700.0, _hints(1.0, 1.3, 1.5, 1.6, 2.1, 50.0)),
        CodecProfile("pithy", 650.0, 2000.0, _hints(1.0, 1.2, 1.4, 1.5, 1.9, 40.0)),
        CodecProfile("lzo", 630.0, 800.0, _hints(1.0, 1.3, 1.5, 1.6, 2.0, 45.0)),
        CodecProfile("snappy", 560.0, 1800.0, _hints(1.0, 1.3, 1.5, 1.6, 2.1, 40.0)),
        CodecProfile("quicklz", 550.0, 700.0, _hints(1.0, 1.4, 1.6, 1.7, 2.2, 45.0)),
        CodecProfile("brotli", 300.0, 450.0, _hints(1.0, 1.7, 2.0, 2.2, 2.9, 60.0)),
        CodecProfile("huffman", 250.0, 300.0, _hints(1.0, 1.5, 1.7, 1.8, 1.8, 8.0)),
        CodecProfile("rle", 900.0, 1400.0, _hints(1.0, 1.0, 1.05, 1.05, 1.1, 60.0)),
        CodecProfile("zlib", 30.0, 400.0, _hints(1.02, 2.2, 2.8, 3.2, 3.6, 90.0)),
        CodecProfile("bsc", 20.0, 60.0, _hints(1.02, 2.5, 3.2, 3.6, 4.2, 100.0)),
        CodecProfile("bzip2", 14.0, 40.0, _hints(0.99, 2.3, 2.9, 3.3, 3.9, 95.0)),
        CodecProfile("lzma", 7.0, 100.0, _hints(1.03, 2.7, 3.5, 4.0, 4.5, 110.0)),
    )
}


def get_profile(name: str) -> CodecProfile:
    """Profile for a codec name; raises :class:`UnknownCodecError`."""
    try:
        return NOMINAL_PROFILES[name]
    except KeyError:
        raise UnknownCodecError(f"no nominal profile for codec {name!r}") from None


def nominal_duration(name: str, nbytes: int, direction: str = "compress") -> float:
    """Simulated seconds to run codec ``name`` over ``nbytes`` bytes.

    ``direction`` is ``"compress"`` or ``"decompress"``. The identity codec
    is effectively free but still charged a memcpy-rate cost.
    """
    profile = get_profile(name)
    if direction == "compress":
        rate = profile.compress_mbps
    elif direction == "decompress":
        rate = profile.decompress_mbps
    else:
        raise ValueError(f"direction must be compress/decompress, got {direction!r}")
    return nbytes / (rate * MB)
