"""From-scratch Snappy-style codec (pool member ``snappy``).

Follows the Snappy element format: a varint uncompressed length preamble,
then a stream of tagged elements — literals (tag low bits 00, length in the
tag or in 1-2 extension bytes) and two-byte-offset copies (tag low bits 10,
length-1 in the tag's upper six bits). Tuned toward textual/byte-structured
data with a slightly narrower hash than lz4.
"""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
    read_varint,
    write_varint,
)

_PARAMS = MatchParams(
    hash_bits=14, min_match=4, max_match=64, window=65535, skip_trigger=5
)

_TAG_LITERAL = 0
_TAG_COPY1 = 1
_TAG_COPY2 = 2
_TAG_COPY4 = 3


def _emit_literal(out: bytearray, chunk: bytes) -> None:
    length = len(chunk) - 1
    if length < 60:
        out.append((length << 2) | _TAG_LITERAL)
    elif length < 1 << 8:
        out.append((60 << 2) | _TAG_LITERAL)
        out.append(length)
    else:
        out.append((61 << 2) | _TAG_LITERAL)
        out += length.to_bytes(2, "little")
    out += chunk


def _emit_copy2(out: bytearray, offset: int, length: int) -> None:
    # Copy lengths are capped at 64 by the matcher params; the tag's upper
    # six bits hold length - 1.
    out.append(((length - 1) << 2) | _TAG_COPY2)
    out += offset.to_bytes(2, "little")


@register_codec
class SnappyCodec(Codec):
    """Snappy element-format LZ with 64-byte match cap."""

    meta = CodecMeta(name="snappy", codec_id=7, family="byte-lz")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 16:
            return frame_wrap(MODE_STORED, n, data)
        tokens = find_tokens(data, _PARAMS)
        out = bytearray()
        write_varint(out, n)
        for tok in tokens:
            if tok.lit_len:
                _emit_literal(out, data[tok.lit_start : tok.lit_start + tok.lit_len])
            if tok.match_len:
                _emit_copy2(out, tok.offset, tok.match_len)
        if len(out) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, bytes(out))

    def decompress(self, payload: bytes) -> bytes:
        payload = ensure_bytes(payload, "payload")
        mode, size, body = frame_parse(payload, "snappy")
        if mode == MODE_STORED:
            return bytes(body)
        declared, pos = read_varint(body, 0)
        if declared != size:
            raise CorruptDataError(
                f"snappy: preamble length {declared} != frame length {size}"
            )
        out = bytearray()
        n = len(body)
        while pos < n:
            tag = body[pos]
            pos += 1
            kind = tag & 3
            if kind == _TAG_LITERAL:
                length = tag >> 2
                if length < 60:
                    length += 1
                elif length == 60:
                    if pos >= n:
                        raise CorruptDataError("snappy: truncated literal length")
                    length = body[pos] + 1
                    pos += 1
                elif length == 61:
                    if pos + 2 > n:
                        raise CorruptDataError("snappy: truncated literal length")
                    length = int.from_bytes(body[pos : pos + 2], "little") + 1
                    pos += 2
                else:
                    raise CorruptDataError("snappy: oversized literal tag")
                if pos + length > n:
                    raise CorruptDataError("snappy: literal run past end")
                out += body[pos : pos + length]
                pos += length
            elif kind == _TAG_COPY1:
                if pos >= n:
                    raise CorruptDataError("snappy: truncated copy1")
                length = ((tag >> 2) & 0x7) + 4
                offset = ((tag >> 5) << 8) | body[pos]
                pos += 1
                copy_match(out, offset, length)
            elif kind == _TAG_COPY2:
                if pos + 2 > n:
                    raise CorruptDataError("snappy: truncated copy2")
                length = (tag >> 2) + 1
                offset = int.from_bytes(body[pos : pos + 2], "little")
                pos += 2
                copy_match(out, offset, length)
            else:
                if pos + 4 > n:
                    raise CorruptDataError("snappy: truncated copy4")
                length = (tag >> 2) + 1
                offset = int.from_bytes(body[pos : pos + 4], "little")
                pos += 4
                copy_match(out, offset, length)
        if len(out) != size:
            raise CorruptDataError(
                f"snappy: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
