"""Byte run-length codec (pool member ``rle``; also the post-MTF stage of
the bsc-like codec).

Run detection is vectorised: boundaries come from one ``np.diff`` pass, so
encoding is O(runs) Python work regardless of input size.

Control grammar:
    c < 0x80    c + 1 literal bytes follow
    c >= 0x80   run of (c - 0x80 + MIN_RUN) copies of the next byte
"""

from __future__ import annotations

import numpy as np

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import MODE_CODED, MODE_STORED, frame_parse, frame_wrap

__all__ = ["RleCodec", "rle_encode", "rle_decode"]

MIN_RUN = 3  # shorter repeats cost more to encode than to store literally
_MAX_RUN = 0x7F + MIN_RUN
_MAX_LIT = 0x80


def rle_encode(data: bytes) -> bytes:
    """Raw RLE body (no frame); see module docstring for the grammar."""
    n = len(data)
    if n == 0:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    boundaries = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    out = bytearray()
    lit_start = 0  # start of the pending literal region
    for start, end in zip(starts.tolist(), ends.tolist()):
        run = end - start
        if run < MIN_RUN:
            continue
        _flush_literals(out, data, lit_start, start)
        byte = data[start]
        while run >= MIN_RUN:
            chunk = min(run, _MAX_RUN)
            out.append(0x80 | (chunk - MIN_RUN))
            out.append(byte)
            run -= chunk
        # A residue shorter than MIN_RUN joins the following literals.
        lit_start = end - run
    _flush_literals(out, data, lit_start, n)
    return bytes(out)


def _flush_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
    pos = start
    while pos < end:
        chunk = min(end - pos, _MAX_LIT)
        out.append(chunk - 1)
        out += data[pos : pos + chunk]
        pos += chunk


def rle_decode(body: bytes, expected_size: int | None = None) -> bytes:
    """Invert :func:`rle_encode`."""
    out = bytearray()
    pos = 0
    n = len(body)
    while pos < n:
        control = body[pos]
        pos += 1
        if control < 0x80:
            run = control + 1
            if pos + run > n:
                raise CorruptDataError("rle: literal run past end")
            out += body[pos : pos + run]
            pos += run
        else:
            if pos >= n:
                raise CorruptDataError("rle: truncated run")
            out += body[pos : pos + 1] * ((control & 0x7F) + MIN_RUN)
            pos += 1
    if expected_size is not None and len(out) != expected_size:
        raise CorruptDataError(
            f"rle: reconstructed {len(out)} bytes, expected {expected_size}"
        )
    return bytes(out)


@register_codec
class RleCodec(Codec):
    """Standalone framed RLE codec."""

    meta = CodecMeta(name="rle", codec_id=12, family="entropy")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        body = rle_encode(data)
        if len(body) >= len(data) and len(data) > 0:
            return frame_wrap(MODE_STORED, len(data), data)
        return frame_wrap(MODE_CODED, len(data), body)

    def decompress(self, payload: bytes) -> bytes:
        mode, size, body = frame_parse(ensure_bytes(payload, "payload"), "rle")
        if mode == MODE_STORED:
            return bytes(body)
        return rle_decode(body, size)
