"""From-scratch QuickLZ-style codec (pool member ``quicklz``).

Bitmap-controlled token stream: every group of up to 32 entries is preceded
by a 32-bit little-endian control word whose bits (LSB first) say whether
the entry is a single literal byte (0) or a 3-byte match record (1) packing
a 13-bit offset-1 and an 11-bit length-3. Dense control flow makes it strong
on integer-like data with short repeating strides — the paper cites QuickLZ
as the integer-data specialist.
"""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
)

_PARAMS = MatchParams(
    hash_bits=13, min_match=4, max_match=(1 << 11) - 1 + 3, window=8192, skip_trigger=5
)

_GROUP = 32


@register_codec
class QuicklzCodec(Codec):
    """Bitmap-control LZ with 3-byte match records."""

    meta = CodecMeta(name="quicklz", codec_id=8, family="byte-lz")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 16:
            return frame_wrap(MODE_STORED, n, data)
        tokens = find_tokens(data, _PARAMS)

        # Flatten tokens into (is_match, payload) entries.
        entries: list[tuple[bool, bytes]] = []
        for tok in tokens:
            for j in range(tok.lit_start, tok.lit_start + tok.lit_len):
                entries.append((False, data[j : j + 1]))
            if tok.match_len:
                record = ((tok.offset - 1) << 11) | (tok.match_len - 3)
                entries.append((True, record.to_bytes(3, "little")))

        out = bytearray()
        for g in range(0, len(entries), _GROUP):
            group = entries[g : g + _GROUP]
            bitmap = 0
            for idx, (is_match, _) in enumerate(group):
                if is_match:
                    bitmap |= 1 << idx
            out += bitmap.to_bytes(4, "little")
            for _, blob in group:
                out += blob
        if len(out) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, bytes(out))

    def decompress(self, payload: bytes) -> bytes:
        payload = ensure_bytes(payload, "payload")
        mode, size, body = frame_parse(payload, "quicklz")
        if mode == MODE_STORED:
            return bytes(body)
        out = bytearray()
        pos = 0
        n = len(body)
        while pos < n and len(out) < size:
            if pos + 4 > n:
                raise CorruptDataError("quicklz: truncated control word")
            bitmap = int.from_bytes(body[pos : pos + 4], "little")
            pos += 4
            for idx in range(_GROUP):
                if len(out) >= size:
                    break
                if pos >= n:
                    # Short final group: remaining bitmap bits are padding.
                    break
                if bitmap & (1 << idx):
                    if pos + 3 > n:
                        raise CorruptDataError("quicklz: truncated match record")
                    record = int.from_bytes(body[pos : pos + 3], "little")
                    pos += 3
                    copy_match(out, (record >> 11) + 1, (record & 0x7FF) + 3)
                else:
                    out.append(body[pos])
                    pos += 1
        if len(out) != size:
            raise CorruptDataError(
                f"quicklz: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
