"""From-scratch Pithy-style codec (pool member ``pithy``).

Pithy is historically a Snappy fork tuned for raw scan speed; here that
translates to the most aggressive parameter point in the byte-LZ family: a
narrow 12-bit hash, long 6-byte minimum matches, early skip acceleration,
and a wide 1 MiB window reached through 3-byte offsets. It trades ratio for
the fewest matcher stalls — the fastest, lightest member of the pool.

Element grammar (after the common frame):
    tag 0x00   literal run: varint length, then the bytes
    tag 0x01   copy: u8 (length - 6), u24 little-endian offset
"""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
    read_varint,
    write_varint,
)

_PARAMS = MatchParams(
    hash_bits=12, min_match=6, max_match=255 + 6, window=1 << 20, skip_trigger=4
)

_TAG_LITERAL = 0
_TAG_COPY = 1


@register_codec
class PithyCodec(Codec):
    """Speed-first wide-window LZ with 6-byte minimum matches."""

    meta = CodecMeta(name="pithy", codec_id=9, family="byte-lz")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 16:
            return frame_wrap(MODE_STORED, n, data)
        tokens = find_tokens(data, _PARAMS)
        out = bytearray()
        for tok in tokens:
            if tok.lit_len:
                out.append(_TAG_LITERAL)
                write_varint(out, tok.lit_len)
                out += data[tok.lit_start : tok.lit_start + tok.lit_len]
            if tok.match_len:
                out.append(_TAG_COPY)
                out.append(tok.match_len - 6)
                out += tok.offset.to_bytes(3, "little")
        if len(out) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, bytes(out))

    def decompress(self, payload: bytes) -> bytes:
        payload = ensure_bytes(payload, "payload")
        mode, size, body = frame_parse(payload, "pithy")
        if mode == MODE_STORED:
            return bytes(body)
        out = bytearray()
        pos = 0
        n = len(body)
        while pos < n:
            tag = body[pos]
            pos += 1
            if tag == _TAG_LITERAL:
                run, pos = read_varint(body, pos)
                if pos + run > n:
                    raise CorruptDataError("pithy: literal run past end")
                out += body[pos : pos + run]
                pos += run
            elif tag == _TAG_COPY:
                if pos + 4 > n:
                    raise CorruptDataError("pithy: truncated copy")
                length = body[pos] + 6
                offset = int.from_bytes(body[pos + 1 : pos + 4], "little")
                pos += 4
                copy_match(out, offset, length)
            else:
                raise CorruptDataError(f"pithy: unknown tag {tag}")
        if len(out) != size:
            raise CorruptDataError(
                f"pithy: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
