"""Shared LZ77 machinery for the from-scratch byte-LZ codec family.

Each pool member (lz4-like, lzo-like, snappy-like, quicklz-like, pithy-like,
brotli-like) runs the same greedy hash-chain matcher with its own parameter
point (hash width, minimum match, window, skip acceleration) and its own
token serialisation, which is what gives the family genuinely different
speed/ratio trade-offs — mirroring how the original C libraries differ.

The matcher is a single Python loop, but all position hashes are precomputed
vectorised with numpy and match extension compares memory in chunks, so the
per-byte Python work stays small. Skip acceleration (as in LZ4) keeps the
loop sub-linear on incompressible input.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..errors import CorruptDataError

__all__ = [
    "MatchParams",
    "Token",
    "find_tokens",
    "reconstruct",
    "frame_wrap",
    "frame_parse",
    "write_varint",
    "read_varint",
]

_FRAME = struct.Struct("<BQ")

#: Knuth multiplicative hash constant (golden-ratio derived).
_HASH_MULT = np.uint32(2654435761)


@dataclass(frozen=True)
class MatchParams:
    """Parameter point for the greedy matcher.

    Attributes:
        hash_bits: log2 of the hash-table size; wider tables find more
            matches (better ratio, more cache pressure in the original C).
        min_match: Shortest match worth emitting.
        max_match: Longest match the serialisation can express.
        window: Largest back-reference offset.
        skip_trigger: After ``2**skip_trigger`` consecutive misses the scan
            step doubles (LZ4-style acceleration on incompressible data).
    """

    hash_bits: int = 16
    min_match: int = 4
    max_match: int = 1 << 16
    window: int = 65535
    skip_trigger: int = 6

    def __post_init__(self) -> None:
        if not 8 <= self.hash_bits <= 24:
            raise ValueError(f"hash_bits out of range: {self.hash_bits}")
        if self.min_match < 3:
            raise ValueError(f"min_match must be >= 3, got {self.min_match}")
        if self.max_match < self.min_match:
            raise ValueError("max_match < min_match")
        if self.window < 1:
            raise ValueError("window must be positive")


@dataclass(frozen=True)
class Token:
    """One LZ77 sequence: a run of literals followed by an optional match.

    ``match_len == 0`` marks a terminal literals-only token (and then
    ``offset`` is 0 too).
    """

    lit_start: int
    lit_len: int
    offset: int
    match_len: int


def _position_hashes(data: bytes, params: MatchParams) -> np.ndarray:
    """Vectorised hash of the ``min_match``-byte prefix at every position.

    Positions within ``min_match - 1`` of the end get no hash (array is
    shorter than ``len(data)``); the scan loop never reads past it.
    """
    arr = np.frombuffer(data, dtype=np.uint8)
    n = arr.size
    span = 4 if params.min_match >= 4 else 3
    if n < span:
        return np.empty(0, dtype=np.uint32)
    m = n - span + 1
    value = arr[:m].astype(np.uint32)
    value |= arr[1 : m + 1].astype(np.uint32) << np.uint32(8)
    value |= arr[2 : m + 2].astype(np.uint32) << np.uint32(16)
    if span == 4:
        value |= arr[3 : m + 3].astype(np.uint32) << np.uint32(24)
    return (value * _HASH_MULT) >> np.uint32(32 - params.hash_bits)


def _extend_match(data: bytes, a: int, b: int, limit: int) -> int:
    """Length of the common prefix of data[a:] and data[b:], capped at
    ``limit``. Compares in 64-byte chunks to amortise Python overhead."""
    length = 0
    chunk = 64
    while length + chunk <= limit:
        if data[a + length : a + length + chunk] == data[b + length : b + length + chunk]:
            length += chunk
            continue
        break
    while length < limit and data[a + length] == data[b + length]:
        length += 1
    return length


def find_tokens(data: bytes, params: MatchParams) -> list[Token]:
    """Greedy single-pass tokenisation of ``data``.

    Invariants (validated by the property tests): token literal spans plus
    match lengths tile the input exactly; every offset is within
    ``params.window`` and every match length within
    ``[min_match, max_match]``.
    """
    n = len(data)
    tokens: list[Token] = []
    if n == 0:
        return tokens
    hashes = _position_hashes(data, params)
    span = 4 if params.min_match >= 4 else 3
    # Leave the final 4 bytes unmatched (mirrors LZ4's end-of-block rule and
    # guarantees a terminal literal run exists for formats that need one).
    match_limit = n - span - 4
    table = np.full(1 << params.hash_bits, -1, dtype=np.int64)

    i = 0
    anchor = 0
    misses = 0
    min_match = params.min_match
    window = params.window
    max_match = params.max_match
    while i <= match_limit:
        h = hashes[i]
        cand = int(table[h])
        table[h] = i
        if (
            cand >= 0
            and i - cand <= window
            and data[cand : cand + min_match] == data[i : i + min_match]
        ):
            limit = min(n - i, max_match)
            mlen = min_match + _extend_match(
                data, cand + min_match, i + min_match, limit - min_match
            )
            tokens.append(Token(anchor, i - anchor, i - cand, mlen))
            i += mlen
            anchor = i
            misses = 0
        else:
            misses += 1
            i += 1 + (misses >> params.skip_trigger)
    if anchor < n or not tokens:
        tokens.append(Token(anchor, n - anchor, 0, 0))
    return tokens


def reconstruct(data_parts: list[bytes], total: int) -> bytes:
    """Join decoder output parts and validate the final size."""
    out = b"".join(data_parts)
    if len(out) != total:
        raise CorruptDataError(
            f"lz: reconstructed {len(out)} bytes, expected {total}"
        )
    return out


def copy_match(out: bytearray, offset: int, length: int) -> None:
    """Append a back-reference of ``length`` bytes at ``offset`` to ``out``.

    Handles the overlapping case (offset < length) by doubling the
    replicated pattern, which is the standard RLE-via-LZ trick.
    """
    if offset <= 0 or offset > len(out):
        raise CorruptDataError(f"lz: invalid match offset {offset}")
    if offset >= length:
        start = len(out) - offset
        out += out[start : start + length]
        return
    pattern = bytes(out[-offset:])
    reps = length // offset
    out += pattern * reps + pattern[: length % offset]


# -- common outer frame ------------------------------------------------------

MODE_CODED = 0
MODE_STORED = 1


def frame_wrap(mode: int, original_size: int, body: bytes) -> bytes:
    """Prefix a codec body with the common (mode, original size) frame."""
    return _FRAME.pack(mode, original_size) + body


def frame_parse(payload: bytes, codec_name: str) -> tuple[int, int, bytes]:
    """Split a framed payload into (mode, original_size, body).

    For stored mode the body length is validated against the declared size.
    """
    if len(payload) < _FRAME.size:
        raise CorruptDataError(f"{codec_name}: payload shorter than frame header")
    mode, size = _FRAME.unpack_from(payload)
    body = payload[_FRAME.size :]
    if mode == MODE_STORED and len(body) != size:
        raise CorruptDataError(
            f"{codec_name}: stored body length {len(body)} != declared {size}"
        )
    if mode not in (MODE_CODED, MODE_STORED):
        raise CorruptDataError(f"{codec_name}: unknown frame mode {mode}")
    return mode, size, body


# -- varints (LEB128, unsigned) ----------------------------------------------


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint at ``pos``; returns (value, new_pos)."""
    value = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise CorruptDataError("varint: truncated")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CorruptDataError("varint: overlong encoding")
