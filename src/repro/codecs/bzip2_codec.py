"""bzip2 wrapper (block-sorting compressor).

The paper's motivating experiment (Fig. 1) shows bzip2 failing to reduce VPIC
particle data — block-sorting buys little on high-entropy floating-point
streams — which is exactly why "no compression" stays in the HCDP choice set.
"""

from __future__ import annotations

import bz2

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec


@register_codec
class Bzip2Codec(Codec):
    """BWT+Huffman via the CPython ``bz2`` module."""

    meta = CodecMeta(name="bzip2", codec_id=2, family="block-transform", stdlib=True)

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"bzip2 level must be in [1, 9], got {level}")
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(ensure_bytes(data), self._level)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return bz2.decompress(ensure_bytes(payload, "payload"))
        except (OSError, ValueError) as exc:
            raise CorruptDataError(f"bzip2: {exc}") from exc
