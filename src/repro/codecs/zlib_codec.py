"""zlib wrapper (DEFLATE) — the paper's "heavy" general-purpose codec.

The paper runs zlib at a high effort level (Fig. 1 shows ~5x ratio at the
cost of long compression time), so the default level here is 9.
"""

from __future__ import annotations

import zlib

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec


@register_codec
class ZlibCodec(Codec):
    """DEFLATE via the CPython ``zlib`` module, level 9 by default."""

    meta = CodecMeta(name="zlib", codec_id=1, family="dictionary", stdlib=True)

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level must be in [1, 9], got {level}")
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(ensure_bytes(data), self._level)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return zlib.decompress(ensure_bytes(payload, "payload"))
        except zlib.error as exc:
            raise CorruptDataError(f"zlib: {exc}") from exc
