"""From-scratch bsc-style block-sorting codec (pool member ``bsc``).

Pipeline per block (256 KiB): BWT -> move-to-front -> RLE -> canonical
Huffman over the concatenated block bodies. This is the classic
block-sorting chain (bzip2/libbsc family): the BWT groups similar contexts,
MTF turns locality into small symbols, RLE eats the zero runs, and the
entropy stage finishes the job. High ratio, heavy CPU — the "archival"
corner of the pool together with lzma.
"""

from __future__ import annotations

import struct

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, get_codec, register_codec
from .bwt import bwt_decode, bwt_encode
from .lz77 import MODE_CODED, MODE_STORED, frame_parse, frame_wrap
from .rle import rle_decode, rle_encode

BLOCK_SIZE = 256 * 1024
_BLOCK_HDR = struct.Struct("<III")  # original len, primary index, body len


def mtf_encode(data: bytes) -> bytes:
    """Move-to-front transform (byte alphabet)."""
    table = list(range(256))
    out = bytearray(len(data))
    for i, byte in enumerate(data):
        rank = table.index(byte)
        out[i] = rank
        if rank:
            del table[rank]
            table.insert(0, byte)
    return bytes(out)


def mtf_decode(data: bytes) -> bytes:
    """Invert :func:`mtf_encode`."""
    table = list(range(256))
    out = bytearray(len(data))
    for i, rank in enumerate(data):
        byte = table[rank]
        out[i] = byte
        if rank:
            del table[rank]
            table.insert(0, byte)
    return bytes(out)


@register_codec
class BscCodec(Codec):
    """BWT + MTF + RLE + Huffman block compressor."""

    meta = CodecMeta(name="bsc", codec_id=11, family="block-transform")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 64:
            return frame_wrap(MODE_STORED, n, data)
        blocks = bytearray()
        for start in range(0, n, BLOCK_SIZE):
            chunk = data[start : start + BLOCK_SIZE]
            column, primary = bwt_encode(chunk)
            body = rle_encode(mtf_encode(column))
            blocks += _BLOCK_HDR.pack(len(chunk), primary, len(body))
            blocks += body
        payload = get_codec("huffman").compress(bytes(blocks))
        if len(payload) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, payload)

    def decompress(self, payload: bytes) -> bytes:
        mode, size, body = frame_parse(ensure_bytes(payload, "payload"), "bsc")
        if mode == MODE_STORED:
            return bytes(body)
        blocks = get_codec("huffman").decompress(body)
        out = bytearray()
        pos = 0
        n = len(blocks)
        while pos < n:
            if pos + _BLOCK_HDR.size > n:
                raise CorruptDataError("bsc: truncated block header")
            orig_len, primary, body_len = _BLOCK_HDR.unpack_from(blocks, pos)
            pos += _BLOCK_HDR.size
            if pos + body_len > n:
                raise CorruptDataError("bsc: truncated block body")
            column = mtf_decode(rle_decode(blocks[pos : pos + body_len], orig_len))
            pos += body_len
            out += bwt_decode(column, primary)
        if len(out) != size:
            raise CorruptDataError(
                f"bsc: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
