"""The "no compression" codec (id 0).

The HCDP optimizer always has "do not compress" in its choice set (paper
§IV-F1: under some configurations compression hurts), so the identity
transform is a first-class member of the pool rather than a special case in
the engine.
"""

from __future__ import annotations

from .base import Codec, CodecMeta, ensure_bytes, register_codec


@register_codec
class IdentityCodec(Codec):
    """Pass-through codec: payload is the input, ratio is exactly 1.0."""

    meta = CodecMeta(name="none", codec_id=0, family="none")

    def compress(self, data: bytes) -> bytes:
        return ensure_bytes(data)

    def decompress(self, payload: bytes) -> bytes:
        return ensure_bytes(payload, "payload")
