"""Compression codec pool: interface, registry, and all implementations.

Importing this package registers the full roster (identity + the paper's
eleven libraries + rle). Look codecs up through :func:`get_codec`; never
instantiate implementation classes directly.
"""

from .base import (
    Codec,
    CodecMeta,
    codec_ids,
    codec_names,
    get_codec,
    iter_codecs,
    register_codec,
)
from .metadata import (
    HEADER_SIZE,
    SubTaskHeader,
    pack_headers,
    unpack_headers,
    unwrap_payload,
    wrap_payload,
)
from .pool import (
    EXTENDED_LIBRARIES,
    PAPER_LIBRARIES,
    CompressionLibraryPool,
    MeasuredCost,
)
from .profiles import (
    DISTRIBUTION_CLASSES,
    NOMINAL_PROFILES,
    CodecProfile,
    get_profile,
    nominal_duration,
)

# Implementation modules self-register on import; order fixes codec ids.
from . import identity  # noqa: F401  (id 0)
from . import zlib_codec  # noqa: F401  (id 1)
from . import bzip2_codec  # noqa: F401  (id 2)
from . import lzma_codec  # noqa: F401  (id 3)
from . import huffman  # noqa: F401  (id 4)
from . import lz4_codec  # noqa: F401  (id 5)
from . import lzo_codec  # noqa: F401  (id 6)
from . import snappy_codec  # noqa: F401  (id 7)
from . import quicklz_codec  # noqa: F401  (id 8)
from . import pithy_codec  # noqa: F401  (id 9)
from . import brotli_codec  # noqa: F401  (id 10)
from . import bsc_codec  # noqa: F401  (id 11)
from . import rle  # noqa: F401  (id 12)
from . import cacheline  # noqa: F401  (ids 13-14: bdi, fpc)

__all__ = [
    "Codec",
    "CodecMeta",
    "CodecProfile",
    "CompressionLibraryPool",
    "DISTRIBUTION_CLASSES",
    "EXTENDED_LIBRARIES",
    "HEADER_SIZE",
    "MeasuredCost",
    "NOMINAL_PROFILES",
    "PAPER_LIBRARIES",
    "SubTaskHeader",
    "codec_ids",
    "codec_names",
    "get_codec",
    "get_profile",
    "iter_codecs",
    "nominal_duration",
    "pack_headers",
    "register_codec",
    "unpack_headers",
    "unwrap_payload",
    "wrap_payload",
]
