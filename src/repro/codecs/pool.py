"""Compression Library Pool (paper §IV-G1).

The pool is the Compression Manager's view of the codec registry: a fixed
roster of libraries (by default the paper's eleven plus ``none``), live
measurement helpers, and the bridge to the nominal performance profiles the
simulator charges time from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..units import MB
from .base import Codec, get_codec
from .profiles import CodecProfile, get_profile, nominal_duration

__all__ = [
    "CompressionLibraryPool",
    "MeasuredCost",
    "PAPER_LIBRARIES",
    "EXTENDED_LIBRARIES",
]

#: The paper's library roster (§IV-G1), in pool order; "none" (id 0) is
#: always prepended by the pool itself.
PAPER_LIBRARIES: tuple[str, ...] = (
    "bzip2",
    "zlib",
    "huffman",
    "brotli",
    "bsc",
    "lzma",
    "lz4",
    "lzo",
    "pithy",
    "snappy",
    "quicklz",
)

#: Opt-in roster adding the cache-line-class RAM-tier codecs
#: (:mod:`repro.codecs.cacheline`). Kept out of :data:`PAPER_LIBRARIES` so
#: the default feature encoding — and every seeded figure — is unchanged;
#: engines built with this roster get a matching wider encoder because
#: :class:`repro.core.hcompress.HCompress` keys its predictor's feature
#: vocabulary off ``pool.names``.
EXTENDED_LIBRARIES: tuple[str, ...] = (*PAPER_LIBRARIES, "bdi", "fpc")


@dataclass(frozen=True)
class MeasuredCost:
    """One live observation of a codec on a concrete buffer.

    Speeds are MB/s over the *original* size, mirroring the paper's ECC
    tuple (compression speed, decompression speed, ratio).
    """

    codec: str
    original_size: int
    compressed_size: int
    compress_mbps: float
    decompress_mbps: float

    @property
    def ratio(self) -> float:
        if self.compressed_size == 0:
            return 1.0
        return self.original_size / self.compressed_size


class CompressionLibraryPool:
    """Unified interface over a roster of codecs.

    Args:
        libraries: Codec names to expose (identity is always included and
            always first). Defaults to the paper's eleven.
    """

    def __init__(self, libraries: Iterable[str] | None = None) -> None:
        names = list(libraries) if libraries is not None else list(PAPER_LIBRARIES)
        if "none" in names:
            names.remove("none")
        self._names: tuple[str, ...] = ("none", *names)
        # Resolve everything eagerly so a bad roster fails at construction.
        self._codecs: dict[str, Codec] = {n: get_codec(n) for n in self._names}

    @property
    def names(self) -> tuple[str, ...]:
        """Roster names; index 0 is always ``none`` (the paper's c = 0)."""
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._codecs

    def codec(self, name: str | int) -> Codec:
        """Look up a roster member by name or pool index."""
        if isinstance(name, int):
            return self._codecs[self._names[name]]
        if name not in self._codecs:
            raise KeyError(f"codec {name!r} not in this pool")
        return self._codecs[name]

    def index(self, name: str) -> int:
        """Pool index of a codec name (0 is ``none``)."""
        return self._names.index(name)

    def profile(self, name: str) -> CodecProfile:
        """Nominal profile of a roster member."""
        return get_profile(name)

    def nominal_seconds(
        self, name: str, nbytes: int, direction: str = "compress"
    ) -> float:
        """Simulated codec time from the nominal profile table."""
        return nominal_duration(name, nbytes, direction)

    def measure(self, name: str, data: bytes) -> MeasuredCost:
        """Run a codec for real and report its measured cost tuple.

        Used by the profiler (seed generation) and the feedback loop. The
        measured *ratio* is authoritative; the measured speeds are only
        meaningful relative to other pure-Python codecs (see
        :mod:`repro.codecs.profiles` for why).
        """
        codec = self.codec(name)
        t0 = time.perf_counter()
        payload = codec.compress(data)
        t1 = time.perf_counter()
        restored = codec.decompress(payload)
        t2 = time.perf_counter()
        if restored != data:
            raise AssertionError(f"{name}: round-trip mismatch during measure")
        mb = len(data) / MB
        return MeasuredCost(
            codec=name,
            original_size=len(data),
            compressed_size=len(payload),
            compress_mbps=mb / max(t1 - t0, 1e-9),
            decompress_mbps=mb / max(t2 - t1, 1e-9),
        )

    def measure_all(
        self, data: bytes, skip: Sequence[str] = ("none",)
    ) -> dict[str, MeasuredCost]:
        """Measure every roster member (minus ``skip``) on one buffer."""
        return {
            name: self.measure(name, data)
            for name in self._names
            if name not in skip
        }
