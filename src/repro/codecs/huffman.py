"""From-scratch canonical Huffman codec (paper pool member ``huffman``).

Encoding is fully vectorised with numpy (per-symbol code/length lookup, bit
expansion via ``repeat`` + ``packbits``); decoding uses a flat canonical
lookup table over a 15-bit peek window, which keeps the per-symbol Python
loop down to a handful of operations.

Payload layout (little-endian):

    u8   mode            0 = huffman-coded, 1 = stored (raw)
    u64  original size
  stored:   raw bytes
  coded:    128B nibble-packed code lengths (256 symbols, max length 15)
            u64 total bit count
            packed big-endian bitstream
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec

__all__ = ["HuffmanCodec", "build_code_lengths", "canonical_codes"]

MAX_CODE_LEN = 15
_HDR = struct.Struct("<BQ")
_U64 = struct.Struct("<Q")
_STORED_THRESHOLD = 64  # below this, header overhead dominates: store raw


def build_code_lengths(freqs: np.ndarray, max_len: int = MAX_CODE_LEN) -> np.ndarray:
    """Huffman code lengths (length-limited) for a 256-entry frequency table.

    Returns a uint8 array of 256 lengths; symbols with zero frequency get
    length 0. The result always satisfies the Kraft inequality for
    ``max_len``-limited codes, via the clamp-and-repair fixup.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.shape != (256,):
        raise ValueError(f"expected 256 frequencies, got shape {freqs.shape}")
    if (freqs < 0).any():
        raise ValueError("frequencies must be non-negative")
    symbols = np.flatnonzero(freqs)
    lengths = np.zeros(256, dtype=np.uint8)
    if symbols.size == 0:
        return lengths
    if symbols.size == 1:
        lengths[symbols[0]] = 1
        return lengths

    # Standard heap construction; each heap item is (weight, tiebreak, leaves)
    # where leaves is the list of leaf symbols under that subtree. Merging
    # bumps the depth of every contained leaf by one.
    depth = np.zeros(256, dtype=np.int64)
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in symbols
    ]
    heapq.heapify(heap)
    tiebreak = 256
    while len(heap) > 1:
        w1, _, l1 = heapq.heappop(heap)
        w2, _, l2 = heapq.heappop(heap)
        merged = l1 + l2
        depth[merged] += 1
        heapq.heappush(heap, (w1 + w2, tiebreak, merged))
        tiebreak += 1
    lengths[symbols] = depth[symbols]

    if lengths.max() > max_len:
        lengths = _limit_lengths(lengths, max_len)
    return lengths


def _limit_lengths(lengths: np.ndarray, max_len: int) -> np.ndarray:
    """Clamp code lengths to ``max_len`` and repair the Kraft inequality.

    After clamping, the scaled Kraft sum K = sum(2^(max_len - l)) may exceed
    2^max_len; lengthening the deepest still-extendable codes restores it.
    """
    lengths = lengths.copy()
    lengths[lengths > max_len] = max_len
    active = lengths > 0
    budget = 1 << max_len

    def kraft() -> int:
        return int((1 << (max_len - lengths[active].astype(np.int64))).sum())

    k = kraft()
    while k > budget:
        # Lengthen the deepest code that can still grow; it frees the least
        # coding efficiency per unit of Kraft mass removed.
        candidates = np.flatnonzero(active & (lengths < max_len))
        if candidates.size == 0:  # pragma: no cover - unreachable for n<=256
            raise CorruptDataError("cannot satisfy Kraft inequality")
        deepest = candidates[np.argmax(lengths[candidates])]
        lengths[deepest] += 1
        k = kraft()
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values for the given length table.

    Codes are assigned in (length, symbol) order, per the canonical Huffman
    convention, so the decoder can rebuild the same codebook from lengths
    alone. Returns a uint16 array of 256 codes (0 where length is 0).
    """
    lengths = np.asarray(lengths, dtype=np.uint8)
    codes = np.zeros(256, dtype=np.uint16)
    code = 0
    prev_len = 0
    for length in range(1, MAX_CODE_LEN + 1):
        code <<= length - prev_len
        prev_len = length
        for sym in np.flatnonzero(lengths == length):
            codes[sym] = code
            code += 1
    return codes


def _pack_lengths(lengths: np.ndarray) -> bytes:
    """Nibble-pack 256 4-bit lengths into 128 bytes."""
    lo = lengths[0::2].astype(np.uint8)
    hi = lengths[1::2].astype(np.uint8)
    return ((hi << 4) | lo).tobytes()


def _unpack_lengths(blob: bytes) -> np.ndarray:
    arr = np.frombuffer(blob, dtype=np.uint8)
    lengths = np.empty(256, dtype=np.uint8)
    lengths[0::2] = arr & 0x0F
    lengths[1::2] = arr >> 4
    return lengths


@register_codec
class HuffmanCodec(Codec):
    """Order-0 canonical Huffman over raw bytes."""

    meta = CodecMeta(name="huffman", codec_id=4, family="entropy")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < _STORED_THRESHOLD:
            return _HDR.pack(1, n) + data

        arr = np.frombuffer(data, dtype=np.uint8)
        freqs = np.bincount(arr, minlength=256)
        lengths = build_code_lengths(freqs)
        codes = canonical_codes(lengths)

        sym_lengths = lengths[arr].astype(np.int64)
        total_bits = int(sym_lengths.sum())
        # Expand each symbol's code into its individual bits, MSB first:
        # bit k of a code with length L is (code >> (L - 1 - k)) & 1.
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(sym_lengths[:-1], out=offsets[1:])
        rep = np.repeat(np.arange(n, dtype=np.int64), sym_lengths)
        k = np.arange(total_bits, dtype=np.int64) - offsets[rep]
        shift = sym_lengths[rep] - 1 - k
        bits = (codes[arr][rep].astype(np.int64) >> shift) & 1
        packed = np.packbits(bits.astype(np.uint8)).tobytes()

        body = _pack_lengths(lengths) + _U64.pack(total_bits) + packed
        if len(body) + _HDR.size >= n + _HDR.size:
            return _HDR.pack(1, n) + data
        return _HDR.pack(0, n) + body

    def decompress(self, payload: bytes) -> bytes:
        payload = ensure_bytes(payload, "payload")
        if len(payload) < _HDR.size:
            raise CorruptDataError("huffman: payload shorter than header")
        mode, n = _HDR.unpack_from(payload)
        body = payload[_HDR.size :]
        if mode == 1:
            if len(body) != n:
                raise CorruptDataError(
                    f"huffman: stored body length {len(body)} != declared {n}"
                )
            return bytes(body)
        if mode != 0:
            raise CorruptDataError(f"huffman: unknown mode byte {mode}")
        if len(body) < 128 + _U64.size:
            raise CorruptDataError("huffman: truncated code table")

        lengths = _unpack_lengths(body[:128])
        (total_bits,) = _U64.unpack_from(body, 128)
        bitstream = body[128 + _U64.size :]
        if len(bitstream) < (total_bits + 7) // 8:
            raise CorruptDataError("huffman: truncated bitstream")
        # Every decoded symbol consumes >= 1 bit, so a declared length
        # beyond total_bits is corruption — reject it before sizing the
        # output buffer from an attacker-controlled field.
        if n > total_bits:
            raise CorruptDataError(
                f"huffman: declared length {n} exceeds "
                f"bitstream capacity {total_bits} bits"
            )
        return self._decode(lengths, bitstream, n, total_bits)

    @staticmethod
    def _decode(
        lengths: np.ndarray, bitstream: bytes, n: int, total_bits: int
    ) -> bytes:
        codes = canonical_codes(lengths)
        # Flat canonical table: every 15-bit window whose prefix is code c
        # (length L) maps to (symbol, L).
        table_sym = np.zeros(1 << MAX_CODE_LEN, dtype=np.uint8)
        table_len = np.zeros(1 << MAX_CODE_LEN, dtype=np.uint8)
        for sym in np.flatnonzero(lengths):
            length = int(lengths[sym])
            base = int(codes[sym]) << (MAX_CODE_LEN - length)
            span = 1 << (MAX_CODE_LEN - length)
            table_sym[base : base + span] = sym
            table_len[base : base + span] = length
        if (table_len == 0).any() and n > 0:
            # An unassigned window is reachable only for corrupt/partial
            # tables; mark by checking during decode below.
            pass
        sym_list = table_sym.tolist()
        len_list = table_len.tolist()

        buf = bitstream + b"\x00\x00\x00\x00"
        out = bytearray(n)
        bitpos = 0
        for i in range(n):
            byte_i = bitpos >> 3
            window = int.from_bytes(buf[byte_i : byte_i + 4], "big")
            peek = (window >> (17 - (bitpos & 7))) & 0x7FFF
            length = len_list[peek]
            if length == 0:
                raise CorruptDataError("huffman: invalid code in bitstream")
            out[i] = sym_list[peek]
            bitpos += length
        if bitpos != total_bits:
            raise CorruptDataError(
                f"huffman: consumed {bitpos} bits, expected {total_bits}"
            )
        return bytes(out)
