"""From-scratch LZO-style codec (pool member ``lzo``).

Short-range, short-match LZ: 3-byte minimum matches against an 8 KiB window
with 13-bit offsets packed into two bytes. Catches fine-grained repetition
that 4-byte-minimum codecs skip, at the cost of denser token overhead —
the classic LZO trade-off.

Control byte grammar:
    0            extended literal run: varint k follows, then k + 32 bytes
    1..31        literal run of that many bytes
    >= 32        match: length-2 in bits 5-7 (7 = +varint extension),
                 offset-1 in bits 0-4 plus one extension byte (13 bits)
"""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Codec, CodecMeta, ensure_bytes, register_codec
from .lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
    read_varint,
    write_varint,
)

_PARAMS = MatchParams(
    hash_bits=13, min_match=3, max_match=1 << 12, window=8192, skip_trigger=5
)


def _emit_literals(out: bytearray, chunk: bytes) -> None:
    pos = 0
    n = len(chunk)
    while pos < n:
        run = n - pos
        if run <= 31:
            out.append(run)
        else:
            out.append(0)
            write_varint(out, run - 32)
        out += chunk[pos : pos + run]
        pos += run


def _emit_match(out: bytearray, offset: int, length: int) -> None:
    len_code = length - 2
    packed_off = offset - 1
    control = (min(len_code, 7) << 5) | (packed_off >> 8)
    out.append(control)
    out.append(packed_off & 0xFF)
    if len_code >= 7:
        write_varint(out, len_code - 7)


@register_codec
class LzoCodec(Codec):
    """Short-window LZ with 3-byte minimum matches."""

    meta = CodecMeta(name="lzo", codec_id=6, family="byte-lz")

    def compress(self, data: bytes) -> bytes:
        data = ensure_bytes(data)
        n = len(data)
        if n < 16:
            return frame_wrap(MODE_STORED, n, data)
        tokens = find_tokens(data, _PARAMS)
        out = bytearray()
        for tok in tokens:
            if tok.lit_len:
                _emit_literals(out, data[tok.lit_start : tok.lit_start + tok.lit_len])
            if tok.match_len:
                _emit_match(out, tok.offset, tok.match_len)
        if len(out) >= n:
            return frame_wrap(MODE_STORED, n, data)
        return frame_wrap(MODE_CODED, n, bytes(out))

    def decompress(self, payload: bytes) -> bytes:
        payload = ensure_bytes(payload, "payload")
        mode, size, body = frame_parse(payload, "lzo")
        if mode == MODE_STORED:
            return bytes(body)
        out = bytearray()
        pos = 0
        n = len(body)
        while pos < n:
            control = body[pos]
            pos += 1
            if control < 32:
                if control == 0:
                    extra, pos = read_varint(body, pos)
                    run = extra + 32
                else:
                    run = control
                if pos + run > n:
                    raise CorruptDataError("lzo: literal run past end")
                out += body[pos : pos + run]
                pos += run
            else:
                if pos >= n:
                    raise CorruptDataError("lzo: truncated match")
                len_code = control >> 5
                offset = (((control & 0x1F) << 8) | body[pos]) + 1
                pos += 1
                if len_code == 7:
                    extra, pos = read_varint(body, pos)
                    len_code += extra
                copy_match(out, offset, len_code + 2)
        if len(out) != size:
            raise CorruptDataError(
                f"lzo: reconstructed {len(out)} bytes, expected {size}"
            )
        return bytes(out)
