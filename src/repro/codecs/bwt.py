"""Burrows-Wheeler transform, fully vectorised with numpy.

Forward: suffix array by prefix doubling (O(n log^2 n), all sorting done by
``np.lexsort``). Inverse: the canonical next-row chain, materialised in
O(n log n) by permutation doubling instead of an O(n) Python loop.

Both directions use an explicit end-of-string sentinel, so the transform is
over the string ``data + sentinel`` and only the sentinel's row index needs
to be carried alongside the transformed bytes.
"""

from __future__ import annotations

import numpy as np

from ..errors import CorruptDataError

__all__ = ["bwt_encode", "bwt_decode", "suffix_array"]


def suffix_array(arr: np.ndarray) -> np.ndarray:
    """Suffix array of an integer sequence via prefix doubling.

    Args:
        arr: 1-D array of non-negative integers (any width).

    Returns:
        int64 array ``sa`` with ``sa[j]`` = start of the j-th smallest suffix.
    """
    arr = np.asarray(arr)
    n = arr.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    rank = np.unique(arr, return_inverse=True)[1].astype(np.int64)
    order = np.argsort(rank, kind="stable")
    k = 1
    while True:
        key2 = np.full(n, -1, dtype=np.int64)
        key2[: n - k] = rank[k:]
        order = np.lexsort((key2, rank))
        r1 = rank[order]
        r2 = key2[order]
        changed = np.empty(n, dtype=bool)
        changed[0] = True
        changed[1:] = (r1[1:] != r1[:-1]) | (r2[1:] != r2[:-1])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(changed) - 1
        rank = new_rank
        if rank[order[-1]] == n - 1:
            return order.astype(np.int64)
        k *= 2


def bwt_encode(data: bytes) -> tuple[bytes, int]:
    """BWT of ``data`` (+ implicit sentinel).

    Returns ``(last_column, primary_index)`` where ``last_column`` has the
    same length as ``data`` (the sentinel's output character is elided) and
    ``primary_index`` is the row at which it was elided — everything
    :func:`bwt_decode` needs.
    """
    n = len(data)
    if n == 0:
        return b"", 0
    # Shift bytes to 1..256 so the sentinel 0 sorts strictly smallest.
    arr = np.frombuffer(data, dtype=np.uint8).astype(np.int32) + 1
    seq = np.concatenate([arr, np.zeros(1, dtype=np.int32)])
    sa = suffix_array(seq)
    # Row j's last character is seq[sa[j] - 1]; sa[j] == 0 is the sentinel row.
    prev = sa - 1
    last = seq[prev]  # prev == -1 wraps to the sentinel, handled below
    sentinel_row = int(np.flatnonzero(sa == 0)[0])
    keep = np.ones(n + 1, dtype=bool)
    keep[sentinel_row] = False
    column = (last[keep] - 1).astype(np.uint8)
    return column.tobytes(), sentinel_row


def bwt_decode(column: bytes, primary_index: int) -> bytes:
    """Invert :func:`bwt_encode`."""
    n = len(column)
    if n == 0:
        if primary_index != 0:
            raise CorruptDataError("bwt: nonzero index for empty column")
        return b""
    if not 0 <= primary_index <= n:
        raise CorruptDataError(f"bwt: primary index {primary_index} out of range")
    # Reinsert the sentinel (value 0; data bytes shifted to 1..256).
    full = np.empty(n + 1, dtype=np.int32)
    col = np.frombuffer(column, dtype=np.uint8).astype(np.int32) + 1
    full[:primary_index] = col[:primary_index]
    full[primary_index] = 0
    full[primary_index + 1 :] = col[primary_index:]

    # T[j] = row of L whose character occupies position j of the first
    # column; following row = T[row] from row 0 spells the string forward.
    t_perm = np.argsort(full, kind="stable").astype(np.int64)
    first_col = np.sort(full)

    rows = _chain(t_perm, start=0, count=n + 1)
    out = first_col[rows]
    if out[-1] != 0:
        raise CorruptDataError("bwt: chain did not terminate at sentinel")
    return (out[:-1] - 1).astype(np.uint8).tobytes()


def _chain(perm: np.ndarray, start: int, count: int) -> np.ndarray:
    """First ``count`` elements of the orbit ``perm(start), perm^2(start)...``

    Built by permutation doubling: with the orbit prefix P_m and composed
    permutation T_m = perm^m in hand, P_2m = P_m ++ T_m[P_m]. O(n log n)
    total work, no per-element Python loop.
    """
    orbit = perm[np.asarray([start], dtype=np.int64)]
    composed = perm
    while orbit.size < count:
        orbit = np.concatenate([orbit, composed[orbit]])
        composed = composed[composed]
    return orbit[:count]
