"""Codec interface, registry, and factory.

This is the paper's *Compression Library Interface* + *Compression Library
Factory* (§IV-G1): every compression library is wrapped behind one small
surface (``compress`` / ``decompress``), registered under a stable integer id
(carried in the 16-byte sub-task header) and a human name, and instantiated
only through :func:`get_codec` — callers never construct implementations
directly, so new libraries can be dropped in without touching call sites.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from ..errors import CodecError, UnknownCodecError

__all__ = [
    "Codec",
    "CodecMeta",
    "register_codec",
    "get_codec",
    "codec_names",
    "codec_ids",
    "iter_codecs",
    "ensure_bytes",
]


@dataclass(frozen=True)
class CodecMeta:
    """Static description of a codec implementation.

    Attributes:
        name: Registry key, lowercase (e.g. ``"zlib"``).
        codec_id: Stable non-negative integer carried in sub-task headers.
            Id 0 is reserved for the identity ("no compression") codec.
        family: Coarse algorithmic family — one of ``"none"``, ``"byte-lz"``,
            ``"entropy"``, ``"dictionary"``, ``"block-transform"``. Used as a
            model feature by the cost predictor.
        stdlib: True when the implementation delegates to a CPython stdlib
            module (zlib/bz2/lzma) rather than our from-scratch code.
    """

    name: str
    codec_id: int
    family: str
    stdlib: bool = False


_FAMILIES = {"none", "byte-lz", "entropy", "dictionary", "block-transform", "cacheline"}


class Codec(abc.ABC):
    """A lossless byte-buffer compressor.

    Implementations must be stateless (safe to share one instance across
    tasks) and must round-trip arbitrary byte strings::

        codec.decompress(codec.compress(data)) == data
    """

    meta: CodecMeta

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; never raises for valid byte input."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`. Raises :class:`CorruptDataError` (a
        :class:`CodecError`) when ``payload`` is not a valid encoding."""

    # -- convenience -------------------------------------------------------

    def ratio(self, data: bytes) -> float:
        """Measured compression ratio ``len(data) / len(compressed)``.

        Follows the paper's convention (original over compressed), so values
        above 1.0 mean the codec reduced the footprint. Empty input has
        ratio 1.0 by definition.
        """
        if len(data) == 0:
            return 1.0
        compressed = self.compress(data)
        if len(compressed) == 0:
            raise CodecError(f"{self.meta.name}: empty payload for non-empty input")
        return len(data) / len(compressed)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.meta.name!r} id={self.meta.codec_id}>"


_BY_NAME: dict[str, Codec] = {}
_BY_ID: dict[int, Codec] = {}


def register_codec(cls: type[Codec]) -> type[Codec]:
    """Class decorator: instantiate and register a codec implementation.

    Raises :class:`CodecError` on duplicate names/ids or malformed metadata,
    so registry collisions fail at import time rather than at lookup time.
    """
    meta = getattr(cls, "meta", None)
    if not isinstance(meta, CodecMeta):
        raise CodecError(f"{cls.__name__} must define a CodecMeta 'meta' attribute")
    if meta.family not in _FAMILIES:
        raise CodecError(f"{cls.__name__}: unknown codec family {meta.family!r}")
    if meta.codec_id < 0:
        raise CodecError(f"{cls.__name__}: codec_id must be non-negative")
    if meta.name in _BY_NAME:
        raise CodecError(f"duplicate codec name {meta.name!r}")
    if meta.codec_id in _BY_ID:
        raise CodecError(
            f"duplicate codec id {meta.codec_id} "
            f"({meta.name!r} vs {_BY_ID[meta.codec_id].meta.name!r})"
        )
    instance = cls()
    _BY_NAME[meta.name] = instance
    _BY_ID[meta.codec_id] = instance
    return cls


def get_codec(key: str | int) -> Codec:
    """Factory lookup by registry name or stable id.

    This is the single instantiation point for codec implementations
    (paper §IV-G1: O(1) switching between libraries).
    """
    table: Mapping = _BY_NAME if isinstance(key, str) else _BY_ID
    try:
        return table[key]
    except KeyError:
        raise UnknownCodecError(f"no codec registered under {key!r}") from None


def codec_names(include_identity: bool = True) -> list[str]:
    """All registered codec names, identity first then by id."""
    names = [c.meta.name for c in iter_codecs()]
    if not include_identity:
        names = [n for n in names if _BY_NAME[n].meta.codec_id != 0]
    return names


def codec_ids() -> list[int]:
    """All registered codec ids, ascending."""
    return sorted(_BY_ID)


def iter_codecs() -> Iterator[Codec]:
    """Iterate registered codec singletons in ascending-id order."""
    for codec_id in sorted(_BY_ID):
        yield _BY_ID[codec_id]


def ensure_bytes(data: object, what: str = "data") -> bytes:
    """Normalise bytes-like input to ``bytes``; reject everything else."""
    if isinstance(data, bytes):
        return data
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    raise TypeError(f"{what} must be bytes-like, got {type(data).__name__}")


def _clear_registry_for_tests(  # pragma: no cover - test hook
    keep: Callable[[CodecMeta], bool] | None = None,
) -> None:
    """Remove registered codecs (optionally keeping a subset). Test-only."""
    for name in list(_BY_NAME):
        meta = _BY_NAME[name].meta
        if keep is not None and keep(meta):
            continue
        del _BY_NAME[name]
        del _BY_ID[meta.codec_id]
