"""Seeded, process-stable hashing primitives.

Python's builtin ``hash()`` is salted per process (``PYTHONHASHSEED``),
so any placement, cache-key, or trace decision derived from it silently
stops being reproducible across runs — and across the shard boundary,
where two processes must agree on which shard owns a key. Every such
decision in this repository goes through this leaf module instead:

* :func:`stable_hash32` — seeded ``zlib.crc32``; cheap enough for
  hot-path cache keys (the analyzer and the baseline backends hash a
  256-byte prefix per call).
* :func:`stable_hash64` — seeded ``blake2b`` digest; used where
  distribution quality matters (the consistent-hash ring's points).
* :func:`stable_str_hash` — :func:`stable_hash64` over UTF-8 text, the
  routing hash of task/tenant keys.
* :func:`content_hash64` — vectorized 64-bit payload digest, the
  integrity check of docs/INTEGRITY.md. Orders of magnitude faster than
  ``blake2b`` on bulk data (one numpy multiply-accumulate pass), which
  is what keeps content digests affordable on the write hot path.

``tests/test_determinism_hashseed.py`` runs the same workload under two
different ``PYTHONHASHSEED`` values and asserts bit-identical placement,
catalogs, and shard routing.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import zlib

import numpy as np

__all__ = [
    "content_hash64",
    "stable_hash32",
    "stable_hash64",
    "stable_str_hash",
]

_SEED_PACK = struct.Struct("<Q")


def stable_hash32(data: bytes, seed: int = 0) -> int:
    """Seeded CRC32 of ``data`` — stable across processes and platforms.

    Not cryptographic and only 32 bits wide: use it for cache keys where
    a rare collision costs a recomputation, never for integrity (stored
    pieces carry their own CRC via the resilience layer).
    """
    return zlib.crc32(data, (seed * 0x9E3779B1 + 1) & 0xFFFFFFFF)


def stable_hash64(data: bytes, seed: int = 0) -> int:
    """Seeded 64-bit blake2b digest of ``data``.

    Well-distributed (unlike CRC over short structured keys), so ring
    points derived from it spread evenly; still fully deterministic for
    a given ``(data, seed)`` pair.
    """
    digest = hashlib.blake2b(
        data, digest_size=8, key=_SEED_PACK.pack(seed & 0xFFFFFFFFFFFFFFFF)
    ).digest()
    return int.from_bytes(digest, "little")


def stable_str_hash(text: str, seed: int = 0) -> int:
    """:func:`stable_hash64` over the UTF-8 encoding of ``text``."""
    return stable_hash64(text.encode("utf-8"), seed)


_MASK64 = (1 << 64) - 1
#: Odd multiplier whose powers weight each 8-byte word by position.
_CONTENT_MULT = 0x9E3779B97F4A7C15
#: Grown-on-demand table of ``_CONTENT_MULT ** (i + 1) mod 2**64``.
#: Replaced atomically under the lock; readers only ever slice a
#: published array, so the piece thread pool needs no reader locking.
_content_powers = np.cumprod(
    np.full(1024, _CONTENT_MULT, dtype=np.uint64), dtype=np.uint64
)
_content_lock = threading.Lock()


def _powers(count: int) -> np.ndarray:
    global _content_powers
    table = _content_powers
    if len(table) >= count:
        return table[:count]
    with _content_lock:
        table = _content_powers
        size = len(table)
        while size < count:
            size *= 2
        if size > len(table):
            _content_powers = np.cumprod(
                np.full(size, _CONTENT_MULT, dtype=np.uint64),
                dtype=np.uint64,
            )
        return _content_powers[:count]


def content_hash64(data: bytes, seed: int = 0) -> int:
    """Seeded 64-bit content digest of ``data``, built for bulk payloads.

    A position-weighted polynomial sum over little-endian 64-bit words
    (odd multiplier powers, wrapping arithmetic) with the length and the
    byte tail folded in, finished with a splitmix64 avalanche. One numpy
    multiply-accumulate pass — roughly two orders of magnitude faster
    than :func:`stable_hash64` on piece-sized buffers, which is what
    makes recording a digest per written piece affordable
    (docs/INTEGRITY.md).

    Detection, not cryptography: any change confined to one 8-byte word
    is *guaranteed* to change the digest (odd multipliers are invertible
    mod 2**64); anything wider collides with probability ~2**-64. Fully
    deterministic for a given ``(data, seed)`` across processes and
    platforms — it is persisted in catalog entries and recomputed at
    verify time, possibly by a different process (``hcompress fsck``).
    """
    nwords, tail = divmod(len(data), 8)
    acc = (seed * 0xBF58476D1CE4E5B9 + len(data) * 0x94D049BB133111EB) & _MASK64
    if nwords:
        words = np.frombuffer(data, dtype="<u8", count=nwords)
        # dot == (words * powers).sum() — wrapping addition is
        # order-independent, and BLAS-free integer dot skips the temp.
        acc = (acc + int(np.dot(words, _powers(nwords)))) & _MASK64
    if tail:
        acc = (
            acc
            + int.from_bytes(data[nwords * 8 :], "little") * _CONTENT_MULT
        ) & _MASK64
    acc ^= acc >> 30
    acc = (acc * 0xBF58476D1CE4E5B9) & _MASK64
    acc ^= acc >> 27
    acc = (acc * 0x94D049BB133111EB) & _MASK64
    return acc ^ (acc >> 31)
