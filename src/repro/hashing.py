"""Seeded, process-stable hashing primitives.

Python's builtin ``hash()`` is salted per process (``PYTHONHASHSEED``),
so any placement, cache-key, or trace decision derived from it silently
stops being reproducible across runs — and across the shard boundary,
where two processes must agree on which shard owns a key. Every such
decision in this repository goes through this leaf module instead:

* :func:`stable_hash32` — seeded ``zlib.crc32``; cheap enough for
  hot-path cache keys (the analyzer and the baseline backends hash a
  256-byte prefix per call).
* :func:`stable_hash64` — seeded ``blake2b`` digest; used where
  distribution quality matters (the consistent-hash ring's points).
* :func:`stable_str_hash` — :func:`stable_hash64` over UTF-8 text, the
  routing hash of task/tenant keys.

``tests/test_determinism_hashseed.py`` runs the same workload under two
different ``PYTHONHASHSEED`` values and asserts bit-identical placement,
catalogs, and shard routing.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

__all__ = ["stable_hash32", "stable_hash64", "stable_str_hash"]

_SEED_PACK = struct.Struct("<Q")


def stable_hash32(data: bytes, seed: int = 0) -> int:
    """Seeded CRC32 of ``data`` — stable across processes and platforms.

    Not cryptographic and only 32 bits wide: use it for cache keys where
    a rare collision costs a recomputation, never for integrity (stored
    pieces carry their own CRC via the resilience layer).
    """
    return zlib.crc32(data, (seed * 0x9E3779B1 + 1) & 0xFFFFFFFF)


def stable_hash64(data: bytes, seed: int = 0) -> int:
    """Seeded 64-bit blake2b digest of ``data``.

    Well-distributed (unlike CRC over short structured keys), so ring
    points derived from it spread evenly; still fully deterministic for
    a given ``(data, seed)`` pair.
    """
    digest = hashlib.blake2b(
        data, digest_size=8, key=_SEED_PACK.pack(seed & 0xFFFFFFFFFFFFFFFF)
    ).digest()
    return int.from_bytes(digest, "little")


def stable_str_hash(text: str, seed: int = 0) -> int:
    """:func:`stable_hash64` over the UTF-8 encoding of ``text``."""
    return stable_hash64(text.encode("utf-8"), seed)
