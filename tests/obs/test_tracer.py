"""Tracer: nesting, dual timelines, ring bound, Chrome export."""

from __future__ import annotations

import pytest

from repro.obs import NULL_SPAN, Tracer


class TestSpans:
    def test_records_wall_time_and_attrs(self) -> None:
        tracer = Tracer()
        with tracer.span("op", task="t0") as span:
            span.set_attr("pieces", 2)
        (record,) = tracer.spans
        assert record.name == "op"
        assert record.wall_seconds >= 0.0
        assert record.attrs == {"task": "t0", "pieces": 2}

    def test_nesting_depth_and_parent(self) -> None:
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # inner finishes first
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert inner.parent_index == outer.index
        assert outer.parent_index is None

    def test_charge_modeled_accumulates(self) -> None:
        tracer = Tracer()
        with tracer.span("op") as span:
            span.charge_modeled(1.5)
            span.charge_modeled(0.5)
        assert tracer.spans[0].modeled_seconds == pytest.approx(2.0)

    def test_modeled_clock_delta(self) -> None:
        now = [10.0]
        tracer = Tracer(modeled_clock=lambda: now[0])
        with tracer.span("op") as span:
            now[0] = 12.0
            span.charge_modeled(1.0)  # explicit charges add to the delta
        record = tracer.spans[0]
        assert record.start_modeled == 10.0
        assert record.modeled_seconds == pytest.approx(3.0)

    def test_error_attr_on_exception(self) -> None:
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("op"):
                raise ValueError("boom")
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_exception_unwinds_nested_stack(self) -> None:
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError
        # The stack fully unwinds; a fresh span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0


class TestBounds:
    def test_ring_buffer_drops_oldest(self) -> None:
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.spans] == ["s3", "s4"]
        assert tracer.dropped == 3

    def test_max_spans_validated(self) -> None:
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_disabled_records_nothing(self) -> None:
        tracer = Tracer(enabled=False)
        span = tracer.span("op")
        assert span is NULL_SPAN
        with span as s:
            s.set_attr("k", 1)
            s.charge_modeled(1.0)
        assert len(tracer.spans) == 0


class TestRollupAndExport:
    def test_by_name_rollup(self) -> None:
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op") as span:
                span.charge_modeled(1.0)
        entry = tracer.by_name()["op"]
        assert entry["count"] == 3
        assert entry["modeled_seconds"] == pytest.approx(3.0)
        assert entry["wall_seconds"] >= 0.0

    def test_chrome_export_shape(self) -> None:
        tracer = Tracer()
        with tracer.span("modeled-op") as span:
            span.charge_modeled(0.25)
        with tracer.span("wall-only"):
            pass
        trace = tracer.to_chrome()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"wall", "modeled"}
        wall = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        modeled = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
        assert {e["name"] for e in wall} == {"modeled-op", "wall-only"}
        # Only spans with modeled time get a modeled-row event.
        assert [e["name"] for e in modeled] == ["modeled-op"]
        assert modeled[0]["dur"] == pytest.approx(0.25e6)
        assert all(e["dur"] > 0 for e in wall)  # tracing-viewer requirement
