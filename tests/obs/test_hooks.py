"""ProfilingHooks: registration, firing, wildcard, fast path."""

from __future__ import annotations

from repro.obs import ProfilingHooks


class TestRegistration:
    def test_on_enter_returns_fn(self) -> None:
        hooks = ProfilingHooks()

        def fn(site, **ctx):
            pass

        assert hooks.on_enter("a", fn) is fn
        assert hooks.on_exit("a", fn) is fn

    def test_empty_and_clear(self) -> None:
        hooks = ProfilingHooks()
        assert hooks.empty
        hooks.on_enter("a", lambda site, **ctx: None)
        assert not hooks.empty
        hooks.clear()
        assert hooks.empty


class TestFiring:
    def test_enter_and_exit_receive_context(self) -> None:
        hooks = ProfilingHooks()
        calls = []
        hooks.on_enter("shi.write", lambda site, **ctx: calls.append(("in", site, ctx)))
        hooks.on_exit("shi.write", lambda site, **ctx: calls.append(("out", site, ctx)))
        hooks.enter("shi.write", key="t/0", tier="ram")
        hooks.exit("shi.write", key="t/0", landed_tier="nvme")
        assert calls == [
            ("in", "shi.write", {"key": "t/0", "tier": "ram"}),
            ("out", "shi.write", {"key": "t/0", "landed_tier": "nvme"}),
        ]
        assert hooks.fired == 2

    def test_wildcard_observes_every_site(self) -> None:
        hooks = ProfilingHooks()
        seen = []
        hooks.on_enter("*", lambda site, **ctx: seen.append(site))
        hooks.enter("hcdp.plan")
        hooks.enter("flusher.poll")
        assert seen == ["hcdp.plan", "flusher.poll"]

    def test_specific_fires_before_wildcard(self) -> None:
        hooks = ProfilingHooks()
        order = []
        hooks.on_enter("a", lambda site, **ctx: order.append("specific"))
        hooks.on_enter("*", lambda site, **ctx: order.append("wildcard"))
        hooks.enter("a")
        assert order == ["specific", "wildcard"]

    def test_unregistered_site_is_noop(self) -> None:
        hooks = ProfilingHooks()
        hooks.on_enter("a", lambda site, **ctx: None)
        hooks.enter("b")  # no "b" hooks, no wildcard: nothing fires
        assert hooks.fired == 0

    def test_empty_table_fast_path(self) -> None:
        hooks = ProfilingHooks()
        hooks.enter("anything", heavy="context")
        hooks.exit("anything")
        assert hooks.fired == 0

    def test_multiple_hooks_per_site(self) -> None:
        hooks = ProfilingHooks()
        seen = []
        hooks.on_exit("a", lambda site, **ctx: seen.append(1))
        hooks.on_exit("a", lambda site, **ctx: seen.append(2))
        hooks.exit("a")
        assert seen == [1, 2]
