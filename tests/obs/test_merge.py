"""merge_registries: one export document for a sharded deployment."""

from __future__ import annotations

import pytest

from repro.errors import HCompressError
from repro.obs import MetricsRegistry
from repro.obs.registry import merge_registries


def _shard_registry(writes: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("writes_total", "writes", ("tier",)).labels(
        tier="ram"
    ).inc(writes)
    reg.gauge("fill", "tier fill").set(writes / 10)
    hist = reg.histogram(
        "latency_seconds", "op latency", buckets=(0.1, 1.0)
    )
    for _ in range(writes):
        hist.observe(0.05)
    return reg


class TestMerge:
    def test_every_series_gains_the_shard_label(self) -> None:
        merged = merge_registries(
            [("0", _shard_registry(3)), ("1", _shard_registry(5))]
        )
        assert merged.value("writes_total", tier="ram", shard="0") == 3
        assert merged.value("writes_total", tier="ram", shard="1") == 5
        doc = merged.collect()
        for entry in doc["metrics"].values():
            assert entry["labels"][-1] == "shard"
            for series in entry["series"]:
                assert series["labels"]["shard"] in {"0", "1"}

    def test_histograms_merge_counts_and_sums(self) -> None:
        merged = merge_registries(
            [("0", _shard_registry(2)), ("1", _shard_registry(4))]
        )
        family = merged.get("latency_seconds")
        assert family.buckets == (0.1, 1.0)
        series = {
            labels["shard"]: s for labels, s in family.series_items()
        }
        assert series["0"].count == 2
        assert series["1"].count == 4
        assert series["1"].sum == pytest.approx(0.2)

    def test_inputs_are_untouched(self) -> None:
        reg = _shard_registry(3)
        before = reg.collect()
        merge_registries([("0", reg)])
        assert reg.collect() == before

    def test_custom_label_name(self) -> None:
        merged = merge_registries(
            [("a", _shard_registry(1))], label="engine"
        )
        assert merged.value("writes_total", tier="ram", engine="a") == 1

    def test_schema_version_is_preserved(self) -> None:
        merged = merge_registries([("0", _shard_registry(1))])
        assert merged.collect()["schema"] == "hcompress.metrics.v1"

    def test_label_collision_rejected(self) -> None:
        reg = MetricsRegistry()
        reg.counter("c_total", "", ("shard",)).labels(shard="x").inc()
        with pytest.raises(HCompressError, match="already has"):
            merge_registries([("0", reg)])

    def test_disjoint_families_union(self) -> None:
        left = MetricsRegistry()
        left.counter("only_left_total").inc(1)
        right = MetricsRegistry()
        right.counter("only_right_total").inc(2)
        merged = merge_registries([("0", left), ("1", right)])
        assert merged.value("only_left_total", shard="0") == 1
        assert merged.value("only_right_total", shard="1") == 2
