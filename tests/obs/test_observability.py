"""The Observability facade: config, regions, recording, mirror sync."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.obs import Observability, ObservabilityConfig


class TestConfig:
    def test_defaults_disabled(self) -> None:
        config = ObservabilityConfig()
        assert not config.enabled
        assert config.tracing
        assert config.max_spans == 10_000

    def test_max_spans_validated(self) -> None:
        with pytest.raises(ValueError):
            ObservabilityConfig(max_spans=0)

    def test_frozen(self) -> None:
        with pytest.raises(Exception):
            ObservabilityConfig().enabled = True  # type: ignore[misc]


class TestRegion:
    def test_region_opens_span_and_fires_hooks(self) -> None:
        obs = Observability(ObservabilityConfig(enabled=True))
        events = []
        obs.hooks.on_enter("hcdp.plan", lambda site, **ctx: events.append(("in", ctx)))
        obs.hooks.on_exit("hcdp.plan", lambda site, **ctx: events.append(("out", ctx)))
        with obs.region("hcdp.plan", task="t0") as span:
            span.set_attr("cache", "hit")
        assert events[0] == ("in", {"task": "t0"})
        # Exit hooks observe the *final* span attributes, outcome included.
        assert events[1] == ("out", {"task": "t0", "cache": "hit"})
        assert obs.tracer.spans[0].name == "hcdp.plan"

    def test_tracing_off_keeps_metrics_and_hooks(self) -> None:
        obs = Observability(ObservabilityConfig(enabled=True, tracing=False))
        fired = []
        obs.hooks.on_enter("x", lambda site, **ctx: fired.append(site))
        with obs.region("x"):
            pass
        assert fired == ["x"]
        assert len(obs.tracer.spans) == 0


# Duck-typed stand-ins for the engine result objects record_* consumes.
@dataclass
class _Receipt:
    tier: str
    nbytes: int
    seconds: float


@dataclass
class _Plan:
    codec: str
    length: int


@dataclass
class _Piece:
    plan: _Plan
    compress_seconds: float
    actual_ratio: float


@dataclass
class _Task:
    size: int


@dataclass
class _WriteResult:
    task: _Task
    pieces: list = field(default_factory=list)


class TestRecording:
    def test_record_io(self) -> None:
        obs = Observability()
        obs.record_io(_Receipt("nvme", 4096, 0.25), op="write")
        obs.record_io(_Receipt("nvme", 4096, 0.25), op="write")
        reg = obs.registry
        assert reg.value("hcompress_tier_ops_total", tier="nvme", op="write") == 2
        assert reg.value("hcompress_tier_bytes_total", tier="nvme", op="write") == 8192
        assert reg.value(
            "hcompress_tier_io_seconds_total", tier="nvme", op="write"
        ) == pytest.approx(0.5)

    def test_record_retry_failover_exhausted(self) -> None:
        obs = Observability()
        obs.record_retry("ram", 0.002)
        obs.record_retry("ram", 0.004)
        obs.record_failover("ram", "nvme")
        obs.record_exhausted("ram")
        reg = obs.registry
        assert reg.value("hcompress_shi_retries_total", tier="ram") == 2
        assert reg.value(
            "hcompress_shi_backoff_seconds_total", tier="ram"
        ) == pytest.approx(0.006)
        assert reg.value(
            "hcompress_shi_failovers_total", from_tier="ram", to_tier="nvme"
        ) == 1
        assert reg.value("hcompress_shi_exhausted_total", tier="ram") == 1

    def test_record_plan_outcomes(self) -> None:
        obs = Observability()
        obs.record_plan(cache_hit=True, wall_seconds=1e-5)
        obs.record_plan(cache_hit=False, wall_seconds=1e-3)
        reg = obs.registry
        assert reg.value("hcompress_plans_total", result="cache_hit") == 1
        assert reg.value("hcompress_plans_total", result="cache_miss") == 1
        hist = obs.m_plan_seconds.labels()
        assert hist.count == 2
        assert hist.sum == pytest.approx(1.01e-3)

    def test_record_write_accounts_per_codec(self) -> None:
        obs = Observability()
        result = _WriteResult(
            task=_Task(size=1 << 20),
            pieces=[
                _Piece(_Plan("zlib", 4096), 0.01, 2.5),
                _Piece(_Plan("zlib", 4096), 0.01, 3.0),
                _Piece(_Plan("none", 8192), 0.0, 1.0),
            ],
        )
        obs.record_write(result)
        reg = obs.registry
        assert reg.value("hcompress_tasks_total", op="write") == 1
        assert reg.value("hcompress_codec_pieces_total", codec="zlib") == 2
        assert reg.value("hcompress_codec_bytes_total", codec="zlib") == 8192
        assert reg.value("hcompress_codec_bytes_total", codec="none") == 8192
        ratios = obs.m_codec_ratio.labels(codec="zlib")
        assert ratios.count == 2
        assert ratios.mean == pytest.approx(2.75)


@dataclass
class _FlushStats:
    moves: int = 3
    bytes_moved: int = 12288
    polls: int = 40
    failed_moves: int = 1
    skipped_unavailable: int = 2


@dataclass
class _InjectorStats:
    events_applied: int = 4
    outages: int = 1
    recoveries: int = 1
    transient_errors: int = 7
    corruptions: int = 2
    log: list = field(
        default_factory=lambda: [("outage", 1.0), ("outage", 2.0), ("recover", 3.0)]
    )


class TestMirrorSync:
    def test_sync_flusher(self) -> None:
        obs = Observability()
        obs.sync_flusher(_FlushStats())
        reg = obs.registry
        assert reg.value("hcompress_flusher_moves_total") == 3
        assert reg.value("hcompress_flusher_bytes_moved_total") == 12288
        assert reg.value("hcompress_flusher_polls_total") == 40
        assert reg.value("hcompress_flusher_failed_moves_total") == 1
        assert reg.value("hcompress_flusher_skipped_unavailable_total") == 2

    def test_sync_flusher_is_set_not_accumulate(self) -> None:
        obs = Observability()
        stats = _FlushStats()
        obs.sync_flusher(stats)
        stats.moves = 5
        obs.sync_flusher(stats)
        assert obs.registry.value("hcompress_flusher_moves_total") == 5

    def test_sync_injector(self) -> None:
        obs = Observability()
        obs.sync_injector(_InjectorStats())
        reg = obs.registry
        assert reg.value("hcompress_faults_applied_total") == 4
        assert reg.value("hcompress_faults_transient_errors_total") == 7
        assert reg.value("hcompress_fault_log_events_total", kind="outage") == 2
        assert reg.value("hcompress_fault_log_events_total", kind="recover") == 1


class TestExport:
    def test_export_metrics_schema(self) -> None:
        obs = Observability()
        snap = obs.export_metrics()
        assert snap["schema"] == "hcompress.metrics.v1"
        # The push families exist (with zero series) from construction.
        assert "hcompress_plans_total" in snap["metrics"]
        assert "hcompress_codec_ratio" in snap["metrics"]

    def test_summary_renders_every_series(self) -> None:
        obs = Observability()
        obs.record_plan(cache_hit=True, wall_seconds=1e-5)
        obs.record_io(_Receipt("ram", 4096, 0.1), op="write")
        text = obs.summary()
        assert "hcompress_plans_total" in text
        assert "result=cache_hit" in text
        assert "tier=ram,op=write" in text
        assert "n=1" in text  # histogram rendering

    def test_span_summary_renders_rollup(self) -> None:
        obs = Observability(ObservabilityConfig(enabled=True))
        with obs.region("hcdp.plan"):
            pass
        text = obs.span_summary()
        assert "hcdp.plan" in text
        assert "count" in text
