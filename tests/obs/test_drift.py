"""Telemetry-drift regression: push metrics equal the legacy counters.

The registry's *push* families are incremented independently at the
instrumentation sites; the pre-existing ad-hoc counters (``EngineStats``,
``ResilienceStats``) stay the source of truth. These tests run real
workloads and hold the two views exactly equal — any divergence means an
instrumentation site was added, moved, or dropped without its metric.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import HCompress, HCompressConfig, ObservabilityConfig
from repro.core.config import ResilienceConfig
from repro.errors import TransientIOError
from repro.experiments.fig7_vpic import (
    WRITE_PRIORITY,
    fig7_hierarchy,
    fig7_vpic_config,
)
from repro.hermes.flusher import TierFlusher
from repro.tiers import ares_hierarchy
from repro.tiers.device import Device
from repro.units import GiB, MiB
from repro.workloads import HCompressBackend, run_vpic


@pytest.fixture(scope="module")
def vpic_run(request):
    """One instrumented fig-7 VPIC run (small scale), shared per module."""
    seed = request.getfixturevalue("seed")
    config = replace(fig7_vpic_config(nprocs=8, scale=4096), timesteps=3)
    hierarchy = fig7_hierarchy(scale=4096)
    engine = HCompress(
        hierarchy,
        HCompressConfig(
            priority=WRITE_PRIORITY,
            observability=ObservabilityConfig(enabled=True),
        ),
        seed=seed,
    )
    flusher = TierFlusher(hierarchy, obs=engine.obs)
    result = run_vpic(
        HCompressBackend(engine),
        config,
        hierarchy,
        rng=np.random.default_rng(0),
        flusher=flusher,
    )
    engine.sync_telemetry()
    engine.obs.sync_flusher(flusher.stats)
    return engine, flusher, result


class TestVpicDrift:
    def test_plan_outcomes_match_plan_cache_counters(self, vpic_run) -> None:
        engine, _, _ = vpic_run
        reg = engine.obs.registry
        stats = engine.engine.stats
        assert (
            reg.value("hcompress_plans_total", result="cache_hit")
            == stats.plan_cache_hits
        )
        assert (
            reg.value("hcompress_plans_total", result="cache_miss")
            == stats.plan_cache_misses
        )
        assert stats.plan_cache_hits > 0  # the repeated burst actually hit

    def test_push_equals_mirror_equals_legacy(self, vpic_run) -> None:
        """Three-way: push family == mirrored family == legacy counter."""
        engine, _, _ = vpic_run
        reg = engine.obs.registry
        stats = engine.engine.stats
        mirrored = reg.value("hcompress_plan_cache_hits_total")
        assert mirrored == stats.plan_cache_hits
        assert mirrored == reg.value("hcompress_plans_total", result="cache_hit")

    def test_tasks_written_match_everywhere(self, vpic_run) -> None:
        engine, _, result = vpic_run
        reg = engine.obs.registry
        assert result.tasks_written == 8 * 3
        assert reg.value("hcompress_tasks_total", op="write") == result.tasks_written
        assert engine.obs.m_plans.value == engine.engine.stats.tasks_planned

    def test_flusher_mirror_matches_stats(self, vpic_run) -> None:
        engine, flusher, _ = vpic_run
        reg = engine.obs.registry
        assert reg.value("hcompress_flusher_polls_total") == flusher.stats.polls
        assert reg.value("hcompress_flusher_moves_total") == flusher.stats.moves
        assert flusher.stats.polls > 0

    def test_span_trace_covers_the_hot_paths(self, vpic_run) -> None:
        engine, _, _ = vpic_run
        rollup = engine.obs.tracer.by_name()
        for site in ("hcompress.compress", "hcdp.plan", "manager.execute_write",
                     "shi.write"):
            assert site in rollup, f"missing span {site}"
        # One compress span per task is the contract (ring bound permitting).
        assert rollup["hcompress.compress"]["count"] == 24

    def test_exported_schema_is_stable(self, vpic_run) -> None:
        engine, _, _ = vpic_run
        snap = engine.obs.export_metrics()
        assert snap["schema"] == "hcompress.metrics.v1"
        for family in (
            "hcompress_plans_total",
            "hcompress_plan_cache_hits_total",
            "hcompress_tier_bytes_total",
            "hcompress_tier_io_seconds_total",
            "hcompress_codec_ratio",
            "hcompress_shi_retries_total",
            "hcompress_anatomy_seconds_total",
        ):
            assert family in snap["metrics"], f"missing family {family}"


class FlakyStore(Device):
    """Raises ``TransientIOError`` on the first ``fail_n`` stores."""

    def __init__(self, inner, fail_n: int):
        self.inner = inner
        self.fail_n = fail_n

    def store(self, key, payload):
        if self.fail_n > 0:
            self.fail_n -= 1
            raise TransientIOError("injected store failure")
        self.inner.store(key, payload)

    def load(self, key):
        return self.inner.load(key)

    def delete(self, key):
        self.inner.delete(key)

    def __contains__(self, key):
        return key in self.inner

    def keys(self):
        return self.inner.keys()


class TestResilienceDrift:
    def _engine(self, seed, max_retries: int) -> HCompress:
        hierarchy = ares_hierarchy(4 * MiB, 8 * MiB, 1 * GiB, nodes=2)
        return HCompress(
            hierarchy,
            HCompressConfig(
                resilience=ResilienceConfig(max_retries=max_retries, failover=True),
                observability=ObservabilityConfig(enabled=True),
            ),
            seed=seed,
        )

    def test_retries_match_resilience_stats(self, seed, gamma_f64) -> None:
        engine = self._engine(seed, max_retries=4)
        ram = engine.hierarchy.by_name("ram")
        ram.device = FlakyStore(ram.device, fail_n=2)
        engine.compress(gamma_f64, task_id="t")
        shi = engine.shi.stats
        reg = engine.obs.registry
        assert shi.retries > 0
        assert engine.obs.m_retries.value == shi.retries
        assert engine.obs.m_backoff.value == pytest.approx(shi.backoff_seconds)
        engine.sync_telemetry()
        assert reg.value("hcompress_shi_trace_retries_total") == shi.retries

    def test_failover_and_exhaustion_match(self, seed, gamma_f64) -> None:
        engine = self._engine(seed, max_retries=1)
        ram = engine.hierarchy.by_name("ram")
        ram.device = FlakyStore(ram.device, fail_n=10_000)  # never recovers
        result = engine.compress(gamma_f64, task_id="t")
        assert all(p.tier != "ram" for p in result.pieces)
        shi = engine.shi.stats
        obs = engine.obs
        assert shi.failovers > 0
        assert obs.m_failovers.value == shi.failovers
        assert obs.m_exhausted.value == shi.exhausted
        engine.sync_telemetry()
        reg = obs.registry
        assert reg.value("hcompress_shi_trace_failovers_total") == shi.failovers
        assert reg.value("hcompress_shi_trace_exhausted_total") == shi.exhausted
