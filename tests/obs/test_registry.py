"""MetricsRegistry: families, labels, histograms, export schema."""

from __future__ import annotations

import json

import pytest

from repro.errors import HCompressError
from repro.obs import MetricsRegistry
from repro.obs.registry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
)


class TestCounter:
    def test_unlabeled_inc(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert reg.value("c_total") == 3.5

    def test_labeled_series_are_independent(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("tier_total", "", ("tier",))
        c.labels(tier="ram").inc(3)
        c.labels(tier="pfs").inc(1)
        assert reg.value("tier_total", tier="ram") == 3
        assert reg.value("tier_total", tier="pfs") == 1
        assert c.value == 4  # family total sums every series

    def test_negative_increment_rejected(self) -> None:
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(HCompressError, match="only increase"):
            c.inc(-1)

    def test_set_supports_mirror_sync(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("mirrored_total")
        c.set(41)
        c.set(42)  # overwrite, not accumulate
        assert reg.value("mirrored_total") == 42

    def test_unlabeled_access_on_labeled_family_rejected(self) -> None:
        c = MetricsRegistry().counter("c_total", "", ("tier",))
        with pytest.raises(HCompressError, match="use .labels"):
            c.inc()

    def test_label_name_mismatch_rejected(self) -> None:
        c = MetricsRegistry().counter("c_total", "", ("tier",))
        with pytest.raises(HCompressError, match="do not match"):
            c.labels(codec="zlib")


class TestGauge:
    def test_set_inc_dec(self) -> None:
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert reg.value("g") == 13


class TestHistogram:
    def test_bucket_counts_and_overflow(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        series = h.labels()
        # 0.5 and 1.0 land in <=1.0, 5.0 in <=10.0, 100.0 overflows.
        assert series.counts == [2, 1, 1]
        assert series.count == 4
        assert series.sum == pytest.approx(106.5)
        assert series.mean == pytest.approx(106.5 / 4)

    def test_unsorted_buckets_rejected(self) -> None:
        with pytest.raises(HCompressError, match="sorted"):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_value_query_rejected(self) -> None:
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(HCompressError, match="histogram"):
            reg.value("h")

    def test_default_bucket_grids(self) -> None:
        assert DEFAULT_RATIO_BUCKETS[0] == 1.0  # incompressible floor
        assert DEFAULT_BYTES_BUCKETS[0] == 4096.0  # the split alignment
        assert list(DEFAULT_BYTES_BUCKETS) == sorted(DEFAULT_BYTES_BUCKETS)


class TestRegistration:
    def test_idempotent_same_declaration(self) -> None:
        reg = MetricsRegistry()
        a = reg.counter("c_total", "", ("tier",))
        b = reg.counter("c_total", "", ("tier",))
        assert a is b

    def test_kind_conflict_rejected(self) -> None:
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(HCompressError, match="re-declared"):
            reg.gauge("m")

    def test_label_conflict_rejected(self) -> None:
        reg = MetricsRegistry()
        reg.counter("m", "", ("tier",))
        with pytest.raises(HCompressError, match="re-declared"):
            reg.counter("m", "", ("codec",))

    def test_unknown_metric_query(self) -> None:
        with pytest.raises(HCompressError, match="no metric"):
            MetricsRegistry().value("nope")

    def test_contains_and_names(self) -> None:
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        assert "a_total" in reg
        assert "nope" not in reg
        assert reg.names() == ["a_total", "b_total"]


class TestExport:
    def test_collect_schema(self) -> None:
        reg = MetricsRegistry()
        reg.counter("z_total", "zed", ("tier",)).labels(tier="ram").inc(7)
        reg.gauge("a_gauge", "ay").set(1.5)
        reg.histogram("h", "aitch", buckets=(1.0,)).observe(0.5)
        snap = reg.collect()
        assert snap["schema"] == "hcompress.metrics.v1"
        assert list(snap["metrics"]) == ["a_gauge", "h", "z_total"]  # sorted
        fam = snap["metrics"]["z_total"]
        assert fam["type"] == "counter"
        assert fam["labels"] == ["tier"]
        assert fam["series"] == [{"labels": {"tier": "ram"}, "value": 7.0}]
        hist = snap["metrics"]["h"]
        assert hist["buckets"] == [1.0]
        assert hist["series"][0]["counts"] == [1, 0]
        assert hist["series"][0]["count"] == 1

    def test_to_json_round_trips(self) -> None:
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        parsed = json.loads(reg.to_json())
        assert parsed == reg.collect()
