"""Documentation health: links resolve, snippets run, CLI help is pinned.

Thin pytest wrapper over ``tools/check_docs.py`` so doc rot fails the
tier-1 suite, not just the CI docs job.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve(check_docs) -> None:
    assert check_docs.check_links() == []


def test_doc_snippets_run(check_docs) -> None:
    assert check_docs.check_snippets() == []


def test_cli_help_matches_golden(check_docs) -> None:
    errors = check_docs.check_cli_help()
    assert errors == [], (
        "CLI --help drifted from tests/golden/; if the change is "
        "intentional, update README/docs and run "
        "`python tools/check_docs.py --update-golden`"
    )


def test_required_docs_exist() -> None:
    for path in (
        "docs/ARCHITECTURE.md",
        "docs/OBSERVABILITY.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "README.md",
    ):
        assert (REPO / path).is_file(), f"missing {path}"


def test_observability_doc_names_real_metrics(check_docs) -> None:
    """Every hcompress_* metric family documented in OBSERVABILITY.md
    exists in a synced engine export (and vice versa for push families),
    so the reference cannot drift from the code."""
    import re

    import numpy as np

    from repro.core import HCompress, HCompressConfig, ObservabilityConfig
    from repro.core.profiler import HCompressProfiler
    from repro.tiers import ares_hierarchy
    from repro.units import KiB, MiB

    doc = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    documented = set(re.findall(r"hcompress_[a-z0-9_{},]+", doc))

    seed = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed(
        sizes=(8 * KiB,)
    )
    engine = HCompress(
        ares_hierarchy(4 * MiB, 8 * MiB, 64 * MiB),
        HCompressConfig(observability=ObservabilityConfig(enabled=True)),
        seed=seed,
    )
    engine.compress(b"drift check " * 512, task_id="t0")
    exported = set(engine.sync_telemetry().export_metrics()["metrics"])

    # Expand the doc's {a,b} shorthand before comparing.
    expanded = set()
    for name in documented:
        match = re.match(r"(.*)\{([a-z0-9_,]+)\}(.*)", name)
        if match and "," in match.group(2):
            for part in match.group(2).split(","):
                expanded.add(match.group(1) + part + match.group(3))
        else:
            expanded.add(name.split("{", 1)[0].rstrip("_"))
    expanded = {n.rstrip("_").rstrip(",") for n in expanded}

    undocumented = exported - expanded
    assert not undocumented, f"exported but not in OBSERVABILITY.md: {sorted(undocumented)}"
