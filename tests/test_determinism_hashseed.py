"""Cross-process determinism under PYTHONHASHSEED randomisation.

Python salts the builtin ``hash()`` per process, so any decision derived
from it differs between two interpreter runs. Every placement, cache-key,
and routing decision in this repository goes through the seeded stable
hashes in :mod:`repro.hashing` instead; these tests run the same workload
in subprocesses with *different* ``PYTHONHASHSEED`` values and assert
bit-identical results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

_PROBE = """
import json, sys
from repro.hashing import stable_hash32, stable_hash64, stable_str_hash
from repro.shard import ConsistentHashRing

ring = ConsistentHashRing(8, 64, seed=3)
print(json.dumps({
    "h32": stable_hash32(b"hcompress", 7),
    "h64": stable_hash64(b"hcompress", 7),
    "hstr": stable_str_hash("tenant-0", 7),
    "routes": [ring.route(f"tenant-{i}") for i in range(64)],
}))
"""

_ENGINE_PROBE = """
import json
import numpy as np
from repro.core import HCompress, HCompressProfiler
from repro.datagen import synthetic_buffer
from repro.shard import ShardConfig, ShardedHCompress
from repro.tiers import ares_specs
from repro.units import KiB, MiB

seed = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed(
    sizes=(8 * KiB, 32 * KiB)
)
specs = ares_specs(16 * MiB, 32 * MiB, 256 * MiB, nodes=4)
sharded = ShardedHCompress(
    specs, shard_config=ShardConfig(shards=4), seed=seed
)
data = synthetic_buffer("float64", "gamma", 32 * KiB,
                        np.random.default_rng(1))
schemas = []
for i in range(8):
    result = sharded.compress(
        data, task_id=f"t{i}", tenant=f"tenant-{i % 4}"
    )
    schemas.append([(p.plan.codec, p.tier, p.stored_size)
                    for p in result.pieces])
counts = {str(k): v for k, v in sharded.task_count_by_shard().items()}
sharded.close()
print(json.dumps({"schemas": schemas, "counts": counts}))
"""


def _run(script: str, hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(SRC)
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout)


def test_stable_hashes_ignore_pythonhashseed() -> None:
    assert _run(_PROBE, "1") == _run(_PROBE, "424242")


def test_sharded_engine_ignores_pythonhashseed() -> None:
    """Placement, schemas, and shard routing of a full sharded workload
    are bit-identical across interpreters with different hash salts."""
    assert _run(_ENGINE_PROBE, "7") == _run(_ENGINE_PROBE, "31337")
