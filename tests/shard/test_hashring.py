"""Consistent-hash ring: determinism, distribution, stability."""

from __future__ import annotations

import pytest

from repro.hashing import stable_str_hash
from repro.shard import ConsistentHashRing


KEYS = [f"tenant-{i}" for i in range(256)]


class TestRouting:
    def test_single_shard_routes_everything_to_zero(self) -> None:
        ring = ConsistentHashRing(1)
        assert {ring.route(k) for k in KEYS} == {0}

    def test_routes_are_in_range(self) -> None:
        ring = ConsistentHashRing(5)
        assert all(0 <= ring.route(k) < 5 for k in KEYS)

    def test_same_parameters_same_routing(self) -> None:
        a = ConsistentHashRing(8, 64, seed=3)
        b = ConsistentHashRing(8, 64, seed=3)
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_seed_changes_layout(self) -> None:
        a = ConsistentHashRing(8, 64, seed=0)
        b = ConsistentHashRing(8, 64, seed=1)
        assert [a.route(k) for k in KEYS] != [b.route(k) for k in KEYS]

    def test_routing_is_stable_hash_not_builtin(self) -> None:
        """The ring must derive from the seeded stable hash — the
        builtin ``hash()`` is salted per process and would scatter keys
        differently under every ``PYTHONHASHSEED``."""
        ring = ConsistentHashRing(4, 8, seed=7)
        point = stable_str_hash("tenant-0", 7)
        # Re-derive the expected owner from first principles.
        points = sorted(
            (stable_str_hash(f"{s}:{v}", 7), s)
            for s in range(4)
            for v in range(8)
        )
        expected = next(
            (owner for p, owner in points if p > point), points[0][1]
        )
        assert ring.route("tenant-0") == expected


class TestDistribution:
    def test_every_shard_gets_keys(self) -> None:
        ring = ConsistentHashRing(8, 64)
        counts = ring.distribution(KEYS)
        assert set(counts) == set(range(8))
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == len(KEYS)

    def test_balance_within_ring_imbalance(self) -> None:
        """With enough keys the hottest shard stays within ~3x of the
        mean — the property the scale-out bench's 3x floor rests on."""
        ring = ConsistentHashRing(8, 64)
        counts = ring.distribution(KEYS)
        assert max(counts.values()) <= 3 * (len(KEYS) / 8)

    def test_growth_moves_few_keys(self) -> None:
        """Consistent hashing: adding one shard re-homes a minority of
        the keyspace, not most of it."""
        before = ConsistentHashRing(4, 64)
        after = ConsistentHashRing(5, 64)
        moved = sum(
            1 for k in KEYS if before.route(k) != after.route(k)
        )
        assert moved < len(KEYS) // 2


class TestValidation:
    def test_rejects_zero_shards(self) -> None:
        with pytest.raises(ValueError):
            ConsistentHashRing(0)

    def test_rejects_zero_virtual_nodes(self) -> None:
        with pytest.raises(ValueError):
            ConsistentHashRing(2, 0)
