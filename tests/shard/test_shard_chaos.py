"""The shard-kill chaos harness: the failure-domain contract end to end."""

from __future__ import annotations

import pytest

from repro.faults import ShardChaosConfig, run_shard_chaos
from repro.errors import HCompressError


QUICK = dict(shards=4, tasks=32, tenants=8, kill_after=12,
             checkpoint_after=6)


class TestConfig:
    def test_kill_targets_are_exclusive(self) -> None:
        with pytest.raises(HCompressError):
            ShardChaosConfig(kill_shard=1, kill_owner_of="tenant-0")

    def test_kill_shard_must_be_in_range(self) -> None:
        with pytest.raises(HCompressError):
            ShardChaosConfig(shards=4, kill_shard=4)


class TestUndisturbed:
    def test_baseline_contract_holds(self) -> None:
        outcome = run_shard_chaos(ShardChaosConfig(**QUICK))
        assert outcome.holds, outcome.summary()
        assert outcome.killed_shard is None
        assert outcome.unavailable == 0
        assert outcome.completed == outcome.offered
        assert outcome.mismatched == 0


class TestKill:
    def test_kill_contract_holds(self) -> None:
        outcome = run_shard_chaos(
            ShardChaosConfig(kill_owner_of="tenant-0", **QUICK)
        )
        assert outcome.holds, outcome.summary()
        assert outcome.killed_shard is not None
        assert outcome.unavailable > 0
        assert outcome.restored
        assert outcome.missing_acked == 0
        # Blast radius: only tenants the ring homes on the victim.
        assert outcome.affected_tenants <= outcome.expected_tenants

    def test_survivor_events_match_undisturbed_run(self) -> None:
        """Determinism across the kill: every surviving shard's event
        stream is identical to the same-seed run with no kill."""
        base = run_shard_chaos(ShardChaosConfig(**QUICK))
        kill = run_shard_chaos(
            ShardChaosConfig(kill_owner_of="tenant-0", **QUICK)
        )
        assert kill.killed_shard is not None
        assert kill.survivor_events() == base.survivor_events(
            killed=kill.killed_shard
        )

    def test_restore_replays_post_checkpoint_suffix(self) -> None:
        """Writes acked after the last checkpoint exist only in the
        journal — restore must replay them."""
        outcome = run_shard_chaos(
            ShardChaosConfig(kill_owner_of="tenant-0", **QUICK)
        )
        assert outcome.restored
        assert outcome.restore_replayed >= 0
        assert outcome.manifest_version >= 3  # DOWN + UP transitions

    def test_single_shard_deployment_restores_fully(self) -> None:
        outcome = run_shard_chaos(
            ShardChaosConfig(
                shards=1, tasks=24, tenants=4, kill_shard=0,
                kill_after=10, checkpoint_after=4,
            )
        )
        assert outcome.holds, outcome.summary()
        # All tenants live on the only shard.
        assert outcome.expected_tenants == {
            f"tenant-{t}" for t in range(4)
        }
        assert outcome.restored
