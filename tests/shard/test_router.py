"""ShardedHCompress: routing, feature-off identity, failure domains,
failover, and deterministic shutdown."""

from __future__ import annotations

import threading

import pytest

from repro.core import HCompress, HCompressConfig
from repro.errors import (
    HCompressError,
    ShardManifestError,
    ShardStateError,
    ShardUnavailableError,
    TierUnavailableError,
)
from repro.shard import ShardConfig, ShardedHCompress
from repro.tiers import StorageHierarchy, ares_specs
from repro.units import GiB, MiB


def _specs(scale: int = 1):
    return ares_specs(
        16 * MiB * scale, 32 * MiB * scale, 1 * GiB * scale,
        nodes=2 * scale,
    )


def _sharded(seed, shards: int, **kwargs) -> ShardedHCompress:
    return ShardedHCompress(
        _specs(max(1, shards)),
        shard_config=ShardConfig(shards=shards, **kwargs),
        seed=seed,
    )


def _tenant_on(sharded: ShardedHCompress, shard_id: int) -> str:
    """Some tenant the ring routes to ``shard_id``."""
    for t in range(256):
        if sharded.ring.route(f"tenant-{t}") == shard_id:
            return f"tenant-{t}"
    raise AssertionError(f"no tenant routes to shard {shard_id}")


class TestFeatureOffIdentity:
    def test_single_shard_matches_unsharded_engine(self, seed,
                                                   gamma_f64) -> None:
        """``shards=1`` must be byte-identical to a plain engine: same
        schemas, same stored bytes, same catalog."""
        plain = HCompress(
            StorageHierarchy.from_specs(_specs()), seed=seed
        )
        sharded = ShardedHCompress(_specs(), seed=seed)
        assert sharded.shards == 1
        snapshots = []
        for engine in (plain, sharded):
            results = [
                engine.compress(gamma_f64, task_id=f"t{i}")
                for i in range(4)
            ]
            snapshots.append((
                [tuple((p.plan.codec, p.tier, p.stored_size)
                       for p in r.pieces) for r in results],
                [r.total_stored for r in results],
            ))
        assert snapshots[0] == snapshots[1]
        assert (
            sharded.engines[0].manager.catalog_snapshot()
            == plain.manager.catalog_snapshot()
        )
        for engine in (plain, sharded):
            assert engine.decompress("t2").data == gamma_f64
        plain.close()
        sharded.close()

    def test_single_shard_keeps_unsplit_specs(self, seed) -> None:
        sharded = ShardedHCompress(_specs(), seed=seed)
        specs = _specs()
        hierarchy = sharded.hierarchies[0]
        for spec in specs:
            tier = hierarchy.by_name(spec.name)
            assert tier.spec.capacity == spec.capacity
            assert tier.spec.bandwidth == spec.bandwidth
        sharded.close()


class TestRouting:
    def test_tenant_pins_all_tasks_to_one_shard(self, seed,
                                                gamma_f64) -> None:
        sharded = _sharded(seed, 4)
        tenant = _tenant_on(sharded, sharded.ring.route("tenant-0"))
        home = sharded.ring.route(tenant)
        for i in range(3):
            sharded.compress(gamma_f64, task_id=f"w{i}", tenant=tenant)
        counts = sharded.task_count_by_shard()
        assert counts[home] == 3
        assert sum(counts.values()) == 3
        sharded.close()

    def test_reads_route_to_the_owner(self, seed, gamma_f64) -> None:
        """A write routed by tenant must read back by task id alone —
        the owner map outlives the routing key."""
        sharded = _sharded(seed, 4)
        sharded.compress(gamma_f64, task_id="w0", tenant="tenant-5")
        assert sharded.decompress("w0").data == gamma_f64
        sharded.close()

    def test_distinct_tenants_spread_over_shards(self, seed,
                                                 gamma_f64) -> None:
        sharded = _sharded(seed, 4)
        for t in range(16):
            sharded.compress(
                gamma_f64, task_id=f"w{t}", tenant=f"tenant-{t}"
            )
        counts = sharded.task_count_by_shard()
        assert sum(counts.values()) == 16
        assert sum(1 for count in counts.values() if count > 0) >= 2
        sharded.close()


class TestFailureDomains:
    def test_kill_isolates_exactly_the_owned_tenants(self, seed,
                                                     gamma_f64) -> None:
        sharded = _sharded(seed, 4)
        victim = sharded.ring.route("tenant-0")
        survivor_tenant = _tenant_on(
            sharded, next(s for s in range(4) if s != victim)
        )
        sharded.kill_shard(victim)
        with pytest.raises(ShardUnavailableError) as excinfo:
            sharded.compress(gamma_f64, task_id="w0", tenant="tenant-0")
        assert excinfo.value.shard_id == victim
        assert isinstance(excinfo.value, TierUnavailableError)
        # Other tenants never notice.
        sharded.compress(gamma_f64, task_id="w1", tenant=survivor_tenant)
        assert sharded.decompress("w1").data == gamma_f64
        sharded.close()

    def test_kill_fails_reads_for_owned_tasks_only(self, seed,
                                                   gamma_f64) -> None:
        sharded = _sharded(seed, 4)
        victim = sharded.ring.route("tenant-0")
        survivor_tenant = _tenant_on(
            sharded, next(s for s in range(4) if s != victim)
        )
        sharded.compress(gamma_f64, task_id="dead", tenant="tenant-0")
        sharded.compress(gamma_f64, task_id="alive", tenant=survivor_tenant)
        sharded.kill_shard(victim)
        with pytest.raises(ShardUnavailableError):
            sharded.decompress("dead")
        assert sharded.decompress("alive").data == gamma_f64
        sharded.close()

    def test_survivors_unperturbed_by_the_kill(self, seed,
                                               gamma_f64) -> None:
        """A surviving shard's engine state matches a run where the kill
        never happened — the failure leaves no trace outside its domain."""
        outcomes = []
        for kill in (False, True):
            sharded = _sharded(seed, 4)
            victim = sharded.ring.route("tenant-0")
            survivor = next(s for s in range(4) if s != victim)
            tenant = _tenant_on(sharded, survivor)
            results = []
            for i in range(4):
                if kill and i == 2:
                    sharded.kill_shard(victim)
                results.append(
                    sharded.compress(
                        gamma_f64, task_id=f"w{i}", tenant=tenant
                    )
                )
            engine = sharded.engines[survivor]
            outcomes.append((
                [tuple((p.plan.codec, p.tier, p.stored_size)
                       for p in r.pieces) for r in results],
                engine.manager.catalog_snapshot(),
                engine.engine.stats.tasks_planned,
            ))
            sharded.close()
        assert outcomes[0] == outcomes[1]


class TestFailover:
    def test_restore_shard_from_own_journal(self, seed, gamma_f64,
                                            tmp_path) -> None:
        sharded = ShardedHCompress(
            _specs(4),
            shard_config=ShardConfig(shards=4, directory=tmp_path),
            seed=seed,
        )
        victim = sharded.ring.route("tenant-0")
        sharded.compress(gamma_f64, task_id="w0", tenant="tenant-0")
        sharded.checkpoint()
        sharded.compress(gamma_f64, task_id="w1", tenant="tenant-0")
        sharded.kill_shard(victim)
        with pytest.raises(ShardUnavailableError):
            sharded.decompress("w0")
        engine = sharded.restore_shard(victim)
        # The post-checkpoint write replays from the journal suffix.
        assert engine.recovery_report.records_replayed >= 1
        assert sharded.decompress("w0").data == gamma_f64
        assert sharded.decompress("w1").data == gamma_f64
        # And the shard serves new traffic again.
        sharded.compress(gamma_f64, task_id="w2", tenant="tenant-0")
        sharded.close()

    def test_manifest_tracks_transitions(self, seed, gamma_f64,
                                         tmp_path) -> None:
        sharded = ShardedHCompress(
            _specs(2),
            shard_config=ShardConfig(shards=2, directory=tmp_path),
            seed=seed,
        )
        assert sharded.verify_manifest().version == 1
        sharded.compress(gamma_f64, task_id="w0", tenant="tenant-0")
        sharded.checkpoint()  # restore needs a snapshot to start from
        victim = sharded.ring.route("tenant-0")
        sharded.kill_shard(victim)
        manifest = sharded.verify_manifest()
        assert manifest.version == 2
        assert manifest.statuses[victim] == "DOWN"
        sharded.restore_shard(victim)
        manifest = sharded.verify_manifest()
        assert manifest.version == 3
        assert manifest.statuses[victim] == "UP"
        sharded.close()

    def test_restore_without_directory_refuses(self, seed) -> None:
        sharded = _sharded(seed, 2)
        sharded.kill_shard(0)
        with pytest.raises(HCompressError, match="deployment directory"):
            sharded.restore_shard(0)
        sharded.close()


class TestTypedStateErrors:
    """kill/restore reject bad shard ids and wrong states with
    ShardStateError carrying the id and the state it was in."""

    def test_kill_unknown_shard_is_typed(self, seed) -> None:
        sharded = _sharded(seed, 2)
        with pytest.raises(ShardStateError) as excinfo:
            sharded.kill_shard(7)
        assert excinfo.value.shard_id == 7
        assert excinfo.value.state == "UNKNOWN"
        sharded.close()

    def test_kill_a_corpse_is_typed(self, seed) -> None:
        sharded = _sharded(seed, 2)
        sharded.kill_shard(0)
        with pytest.raises(ShardStateError) as excinfo:
            sharded.kill_shard(0)
        assert excinfo.value.state == "DOWN"
        sharded.close()

    def test_restore_unknown_shard_is_typed(self, seed, tmp_path) -> None:
        sharded = ShardedHCompress(
            _specs(2),
            shard_config=ShardConfig(shards=2, directory=tmp_path),
            seed=seed,
        )
        with pytest.raises(ShardStateError) as excinfo:
            sharded.restore_shard(-1)
        assert excinfo.value.state == "UNKNOWN"
        sharded.close()

    def test_restore_a_serving_shard_is_typed(self, seed,
                                              tmp_path) -> None:
        """Restoring an UP shard would silently fork its state."""
        sharded = ShardedHCompress(
            _specs(2),
            shard_config=ShardConfig(shards=2, directory=tmp_path),
            seed=seed,
        )
        with pytest.raises(ShardStateError) as excinfo:
            sharded.restore_shard(0)
        assert excinfo.value.state == "UP"
        sharded.close()

    def test_restore_refuses_when_manifest_advanced(
        self, seed, gamma_f64, tmp_path
    ) -> None:
        """Concurrent-bump safety: another actor re-wrote the layout
        after this router last read it — restore must refuse rather
        than clobber the newer manifest."""
        from repro.shard.manifest import read_manifest, write_manifest

        sharded = ShardedHCompress(
            _specs(2),
            shard_config=ShardConfig(shards=2, directory=tmp_path),
            seed=seed,
        )
        sharded.compress(gamma_f64, task_id="w0", tenant="tenant-0")
        sharded.checkpoint()
        victim = sharded.ring.route("tenant-0")
        sharded.kill_shard(victim)
        # A concurrent actor bumps the on-disk manifest past our view.
        disk = read_manifest(tmp_path, min_version=1)
        write_manifest(tmp_path, disk.with_status(victim, "DOWN"),
                       fsync=False)
        with pytest.raises(ShardManifestError, match="advanced"):
            sharded.restore_shard(victim)
        # The losing router changed nothing durable.
        assert read_manifest(tmp_path, min_version=1).version \
            == disk.version + 1
        sharded.close()


class TestDeterministicShutdown:
    @staticmethod
    def _pool_threads() -> list:
        return [
            t for t in threading.enumerate()
            if t.name.startswith("hcompress-piece") and t.is_alive()
        ]

    def test_close_joins_every_shards_pool(self, seed, gamma_f64) -> None:
        sharded = _sharded(seed, 3)
        for shard_id in range(3):
            # Workers spawn lazily on submit; force one per shard so
            # there are threads to leak.
            sharded.engines[shard_id].manager._executor().submit(
                lambda: None
            ).result()
        assert self._pool_threads()
        sharded.close()
        assert self._pool_threads() == []

    def test_close_twice_is_idempotent(self, seed, gamma_f64) -> None:
        sharded = _sharded(seed, 2)
        sharded.compress(gamma_f64, task_id="w0")
        sharded.close()
        sharded.close()  # must not raise
        with pytest.raises(HCompressError, match="closed"):
            sharded.compress(gamma_f64, task_id="w1")

    def test_kill_then_close_leaks_nothing(self, seed, gamma_f64) -> None:
        sharded = _sharded(seed, 2)
        sharded.compress(gamma_f64, task_id="w0", tenant="tenant-0")
        sharded.kill_shard(sharded.ring.route("tenant-0"))
        sharded.close()
        assert self._pool_threads() == []

    def test_context_manager_closes(self, seed, gamma_f64) -> None:
        with _sharded(seed, 2) as sharded:
            sharded.compress(gamma_f64, task_id="w0")
        assert self._pool_threads() == []
        with pytest.raises(HCompressError):
            sharded.compress(gamma_f64, task_id="w1")
