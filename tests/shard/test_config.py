"""ShardConfig validation and tier-budget splitting invariants."""

from __future__ import annotations

import pytest

from repro.shard import ShardConfig, shard_dirname, split_tier_specs
from repro.tiers import ares_specs
from repro.units import GiB, MiB


SPECS = ares_specs(16 * GiB, 32 * GiB, 64 * GiB, nodes=16)


class TestShardConfig:
    def test_defaults_are_feature_off(self) -> None:
        config = ShardConfig()
        assert config.shards == 1
        assert config.directory is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"virtual_nodes": 0},
            {"failure_threshold": 0},
            {"heartbeat_timeout": 0.0},
            {"heartbeat_timeout": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs) -> None:
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_shard_directory_layout(self, tmp_path) -> None:
        config = ShardConfig(shards=3, directory=tmp_path)
        assert config.shard_directory(2) == tmp_path / "shard-02"
        assert ShardConfig().shard_directory(0) is None

    def test_dirnames_sort_in_shard_order(self) -> None:
        names = [shard_dirname(i) for i in range(12)]
        assert names == sorted(names)


class TestSplitTierSpecs:
    def test_single_shard_is_identity(self) -> None:
        assert split_tier_specs(SPECS, 0, 1) == tuple(SPECS)

    @pytest.mark.parametrize("shards", [2, 3, 7, 8])
    def test_capacity_and_lanes_conserved(self, shards) -> None:
        """The slices partition the deployment exactly: capacities and
        lanes sum back to the original (lanes may exceed it only via the
        at-least-one-lane floor)."""
        slices = [
            split_tier_specs(SPECS, index, shards) for index in range(shards)
        ]
        for tier_index, spec in enumerate(SPECS):
            parts = [s[tier_index] for s in slices]
            if spec.capacity is not None:
                assert sum(p.capacity for p in parts) == spec.capacity
            else:
                assert all(p.capacity is None for p in parts)
            if spec.lanes >= shards:
                assert sum(p.lanes for p in parts) == spec.lanes
            assert all(p.lanes >= 1 for p in parts)

    def test_bandwidth_divides_evenly(self) -> None:
        for index in range(4):
            for tier_index, spec in enumerate(SPECS):
                part = split_tier_specs(SPECS, index, 4)[tier_index]
                assert part.bandwidth == pytest.approx(spec.bandwidth / 4)

    def test_latency_and_shared_pass_through(self) -> None:
        for tier_index, spec in enumerate(SPECS):
            part = split_tier_specs(SPECS, 1, 4)[tier_index]
            assert part.latency == spec.latency
            assert part.shared == spec.shared
            assert part.name == spec.name

    def test_remainder_goes_to_low_indices(self) -> None:
        specs = split_tier_specs(
            ares_specs(10 * MiB + 3, 8 * MiB, 8 * MiB, nodes=4), 0, 4
        )
        # 10 MiB + 3 over 4 shards: shard 0 gets the +1 remainder byte.
        assert specs[0].capacity == (10 * MiB + 3) // 4 + 1

    def test_rejects_out_of_range_index(self) -> None:
        with pytest.raises(ValueError):
            split_tier_specs(SPECS, 4, 4)
        with pytest.raises(ValueError):
            split_tier_specs(SPECS, -1, 4)
