"""Shard supervisor: health transitions, fail-fast gating, sweeps."""

from __future__ import annotations

import pytest

from repro.errors import ShardUnavailableError, TierUnavailableError
from repro.shard import ShardConfig, ShardSupervisor


def _supervisor(clock=None, **kwargs) -> ShardSupervisor:
    return ShardSupervisor(ShardConfig(shards=3, **kwargs), clock=clock)


class TestGating:
    def test_all_up_initially(self) -> None:
        sup = _supervisor()
        assert sup.up_shards() == (0, 1, 2)
        for shard_id in range(3):
            sup.ensure_up(shard_id)  # must not raise

    def test_ensure_up_fails_fast_with_context(self) -> None:
        sup = _supervisor()
        sup.mark_down(1, "killed")
        with pytest.raises(ShardUnavailableError) as excinfo:
            sup.ensure_up(1)
        assert excinfo.value.shard_id == 1
        assert excinfo.value.reason == "killed"
        # Typed into the existing unavailability family.
        assert isinstance(excinfo.value, TierUnavailableError)

    def test_other_shards_unaffected(self) -> None:
        sup = _supervisor()
        sup.mark_down(1, "killed")
        sup.ensure_up(0)
        sup.ensure_up(2)
        assert sup.up_shards() == (0, 2)


class TestOutcomeThreshold:
    def test_consecutive_failures_trip(self) -> None:
        sup = _supervisor(failure_threshold=3)
        for _ in range(2):
            sup.record_outcome(0, ok=False)
        assert sup.is_up(0)
        sup.record_outcome(0, ok=False)
        assert not sup.is_up(0)
        assert sup.health[0].reason == "3 consecutive failures"

    def test_success_resets_the_count(self) -> None:
        sup = _supervisor(failure_threshold=3)
        sup.record_outcome(0, ok=False)
        sup.record_outcome(0, ok=False)
        sup.record_outcome(0, ok=True)
        sup.record_outcome(0, ok=False)
        sup.record_outcome(0, ok=False)
        assert sup.is_up(0)

    def test_failures_do_not_leak_across_shards(self) -> None:
        sup = _supervisor(failure_threshold=2)
        sup.record_outcome(0, ok=False)
        sup.record_outcome(1, ok=False)
        assert sup.is_up(0) and sup.is_up(1)


class TestHeartbeatSweep:
    def test_expired_heartbeat_goes_down(self) -> None:
        # init + heartbeat read 0.0; the sweep and its transitions read 5.0.
        times = iter([0.0, 0.0] + [5.0] * 16)
        sup = _supervisor(clock=lambda: next(times), heartbeat_timeout=2.0)
        sup.record_outcome(0, ok=True)  # heartbeat at 0.0
        assert sup.sweep() == (0, 1, 2)
        assert sup.up_shards() == ()

    def test_fresh_heartbeat_survives_sweep(self) -> None:
        clock = [0.0]
        sup = _supervisor(clock=lambda: clock[0], heartbeat_timeout=2.0)
        clock[0] = 1.5
        sup.record_outcome(1, ok=True)
        clock[0] = 3.0
        assert sup.sweep() == (0, 2)
        assert sup.up_shards() == (1,)

    def test_no_timeout_no_sweep(self) -> None:
        sup = _supervisor()  # heartbeat_timeout=None
        assert sup.sweep() == ()


class TestTransitions:
    def test_mark_down_idempotent(self) -> None:
        sup = _supervisor()
        sup.mark_down(0, "killed")
        sup.mark_down(0, "killed again")
        assert len(sup.trace) == 1
        assert sup.health[0].reason == "killed"

    def test_mark_up_restores_clean_health(self) -> None:
        sup = _supervisor(failure_threshold=2)
        sup.record_outcome(2, ok=False)
        sup.record_outcome(2, ok=False)
        assert not sup.is_up(2)
        sup.mark_up(2)
        assert sup.is_up(2)
        assert sup.health[2].consecutive_failures == 0
        sup.mark_up(2)  # idempotent
        assert [event[0] for event in sup.trace] == ["DOWN", "UP"]

    def test_trace_format_and_callback(self) -> None:
        events = []
        sup = ShardSupervisor(
            ShardConfig(shards=2),
            clock=lambda: 1.25,
            on_transition=lambda *event: events.append(event),
        )
        sup.mark_down(1, "killed")
        sup.mark_up(1)
        assert sup.trace == [
            ("DOWN", 1.25, 1, "killed"),
            ("UP", 1.25, 1, "restored"),
        ]
        assert events == sup.trace
