"""Shard-map manifest: atomic persistence, versioning, validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    HCompressError,
    RecoveryError,
    ShardError,
    ShardManifestError,
)
from repro.shard import (
    MANIFEST_NAME,
    ShardManifest,
    read_manifest,
    write_manifest,
)


def _manifest(shards: int = 4) -> ShardManifest:
    return ShardManifest.initial(shards, virtual_nodes=64, hash_seed=0)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path) -> None:
        manifest = _manifest()
        path = write_manifest(tmp_path, manifest)
        assert path == tmp_path / MANIFEST_NAME
        assert read_manifest(tmp_path) == manifest

    def test_no_tmp_file_left_behind(self, tmp_path) -> None:
        write_manifest(tmp_path, _manifest())
        assert list(tmp_path.iterdir()) == [tmp_path / MANIFEST_NAME]

    def test_initial_layout(self) -> None:
        manifest = _manifest(3)
        assert manifest.version == 1
        assert manifest.statuses == {0: "UP", 1: "UP", 2: "UP"}
        assert manifest.directories == {
            0: "shard-00", 1: "shard-01", 2: "shard-02"
        }


class TestVersioning:
    def test_with_status_bumps_version(self) -> None:
        manifest = _manifest().with_status(2, "DOWN")
        assert manifest.version == 2
        assert manifest.statuses[2] == "DOWN"
        assert manifest.statuses[0] == "UP"

    def test_stale_version_rejected(self, tmp_path) -> None:
        write_manifest(tmp_path, _manifest())
        with pytest.raises(ShardManifestError, match="stale"):
            read_manifest(tmp_path, min_version=2)

    def test_reader_accepts_equal_version(self, tmp_path) -> None:
        write_manifest(tmp_path, _manifest().with_status(0, "DOWN"))
        assert read_manifest(tmp_path, min_version=2).version == 2


class TestValidation:
    def test_missing_file(self, tmp_path) -> None:
        with pytest.raises(ShardManifestError, match="no shard manifest"):
            read_manifest(tmp_path)

    def test_malformed_json(self, tmp_path) -> None:
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ShardManifestError, match="unreadable"):
            read_manifest(tmp_path)

    def test_missing_fields(self, tmp_path) -> None:
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": 1}))
        with pytest.raises(ShardManifestError, match="malformed"):
            read_manifest(tmp_path)

    def test_unknown_format(self, tmp_path) -> None:
        raw = _manifest().to_dict()
        raw["format"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(raw))
        with pytest.raises(ShardManifestError, match="format"):
            read_manifest(tmp_path)

    def test_invalid_status_value(self) -> None:
        with pytest.raises(ShardManifestError):
            ShardManifest(
                version=1, shards=2, virtual_nodes=1, hash_seed=0,
                statuses={0: "SIDEWAYS"},
            )

    def test_status_for_unknown_shard(self) -> None:
        with pytest.raises(ShardManifestError):
            ShardManifest(
                version=1, shards=2, virtual_nodes=1, hash_seed=0,
                statuses={5: "UP"},
            )

    def test_manifest_error_taxonomy(self) -> None:
        """Manifest failures are both shard- and recovery-class errors."""
        assert issubclass(ShardManifestError, ShardError)
        assert issubclass(ShardManifestError, RecoveryError)
        assert issubclass(ShardManifestError, HCompressError)
