"""Write-ahead journal: framing, durability batching, torn tails, compaction."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.errors import JournalCorruptError, RecoveryError
from repro.recovery import (
    Journal,
    JournalCursor,
    JournalRecord,
    replay_journal,
)
from repro.recovery.journal import FRAME_HEADER_SIZE, _MAX_PAYLOAD


@pytest.fixture()
def wal(tmp_path):
    return tmp_path / "journal.wal"


ENTRIES = (("t0/0", 4096, "zlib", 123), ("t0/1", 2048, "none", None))


class TestFraming:
    def test_commit_replay_roundtrip(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "t0", ENTRIES)
        journal.commit("evict", "t0")
        journal.close()
        replay = replay_journal(wal)
        assert not replay.truncated
        assert [(r.lsn, r.kind, r.task_id) for r in replay.records] == [
            (1, "commit", "t0"), (2, "evict", "t0"),
        ]
        assert replay.records[0].entries == ENTRIES
        assert replay.valid_bytes == wal.stat().st_size

    def test_record_payload_roundtrip(self) -> None:
        record = JournalRecord(7, "commit", "tX", ENTRIES)
        assert JournalRecord.from_payload(record.to_payload()) == record

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(RecoveryError):
            JournalRecord(1, "mutate", "t0")

    def test_malformed_payload_is_typed(self) -> None:
        with pytest.raises(JournalCorruptError):
            JournalRecord.from_payload(b"not json at all")

    def test_missing_file_replays_empty(self, wal) -> None:
        replay = replay_journal(wal)
        assert replay.records == [] and not replay.truncated
        assert replay.last_lsn == 0


class TestDurability:
    def test_append_is_not_durable_until_sync(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        journal.append("commit", "t0", ENTRIES)
        assert journal.pending == 1
        assert journal.durable_lsn == 0
        # A crash now (abandon the object) loses the buffered record.
        assert replay_journal(wal).records == []
        journal.sync()
        assert journal.pending == 0
        assert journal.durable_lsn == 1
        assert replay_journal(wal).last_lsn == 1

    def test_fsync_every_group_commits(self, wal) -> None:
        journal = Journal(wal, fsync_every=3, fsync=False)
        journal.commit("commit", "a", ENTRIES)
        journal.commit("commit", "b", ENTRIES)
        assert journal.pending == 2 and journal.durable_lsn == 0
        journal.commit("commit", "c", ENTRIES)
        assert journal.pending == 0 and journal.durable_lsn == 3
        journal.close()

    def test_lsn_continues_across_reopen(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "a", ENTRIES)
        journal.commit("commit", "b", ENTRIES)
        journal.close()
        reopened = Journal(wal, fsync=False)
        assert reopened.recovered.last_lsn == 2
        record = reopened.commit("evict", "a")
        assert record.lsn == 3
        reopened.close()
        assert replay_journal(wal).last_lsn == 3

    def test_closed_journal_refuses_appends(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(RecoveryError):
            journal.append("commit", "t0")


class TestTornTails:
    def _write(self, wal, n: int = 3) -> None:
        journal = Journal(wal, fsync=False)
        for i in range(n):
            journal.commit("commit", f"t{i}", ENTRIES)
        journal.close()

    def test_torn_payload_cut_at_last_intact_record(self, wal) -> None:
        self._write(wal)
        wal.write_bytes(wal.read_bytes()[:-5])
        replay = replay_journal(wal)
        assert replay.truncated and "torn" in replay.reason
        assert replay.last_lsn == 2

    def test_torn_header_cut(self, wal) -> None:
        self._write(wal, n=1)
        wal.write_bytes(wal.read_bytes() + b"\x07\x00")  # 2 of 8 header bytes
        replay = replay_journal(wal)
        assert replay.truncated and replay.last_lsn == 1

    def test_crc_mismatch_cut(self, wal) -> None:
        self._write(wal)
        blob = bytearray(wal.read_bytes())
        blob[-1] ^= 0xFF  # flip a bit in the last payload
        wal.write_bytes(bytes(blob))
        replay = replay_journal(wal)
        assert replay.truncated and "CRC" in replay.reason
        assert replay.last_lsn == 2

    def test_oversize_length_field_is_corruption(self, wal) -> None:
        self._write(wal, n=1)
        bogus = struct.pack("<II", _MAX_PAYLOAD + 1, 0)
        wal.write_bytes(wal.read_bytes() + bogus + b"x" * 64)
        replay = replay_journal(wal)
        assert replay.truncated and "cap" in replay.reason
        assert replay.last_lsn == 1

    def test_valid_frame_with_garbage_payload_cut(self, wal) -> None:
        self._write(wal, n=1)
        payload = b"{broken json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        wal.write_bytes(wal.read_bytes() + frame)
        replay = replay_journal(wal)
        assert replay.truncated and "undecodable" in replay.reason
        assert replay.last_lsn == 1

    def test_open_repairs_torn_tail_in_place(self, wal) -> None:
        self._write(wal)
        torn = wal.read_bytes()[:-5]
        wal.write_bytes(torn)
        journal = Journal(wal, fsync=False)
        assert journal.recovered.truncated
        assert wal.stat().st_size == journal.recovered.valid_bytes
        # Appends extend the last intact record, not the garbage.
        record = journal.commit("evict", "t0")
        assert record.lsn == 3
        journal.close()
        replay = replay_journal(wal)
        assert not replay.truncated
        assert [r.lsn for r in replay.records] == [1, 2, 3]


class TestCompaction:
    def test_compact_drops_covered_prefix(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        for i in range(4):
            journal.commit("commit", f"t{i}", ENTRIES)
        remaining = journal.compact(keep_after_lsn=2)
        assert remaining == 2
        replay = replay_journal(wal)
        assert [r.lsn for r in replay.records] == [3, 4]
        # LSNs keep counting from the pre-compaction high-water mark.
        assert journal.commit("evict", "t0").lsn == 5
        journal.sync()
        assert replay_journal(wal).last_lsn == 5
        journal.close()

    def test_compact_everything_leaves_empty_journal(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "t0", ENTRIES)
        assert journal.compact(keep_after_lsn=1) == 0
        assert replay_journal(wal).records == []
        journal.close()

    def test_lsn_floor_survives_compaction_across_reopen(self, wal) -> None:
        # A compacted-to-empty file carries no LSN high-water mark; a
        # snapshot does. Reopen + re-seed must keep LSNs monotone so a
        # restore never sees a new record wearing a covered LSN.
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "t0", ENTRIES)
        journal.compact(keep_after_lsn=1)  # snapshot covers LSN 1
        journal.close()
        reopened = Journal(wal, fsync=False)
        assert reopened.recovered.last_lsn == 0  # the file forgot
        reopened.ensure_lsn_floor(1)
        assert reopened.durable_lsn == 1
        assert reopened.commit("commit", "t1", ENTRIES).lsn == 2
        reopened.ensure_lsn_floor(1)  # lowering is a no-op
        assert reopened.commit("commit", "t2", ENTRIES).lsn == 3
        reopened.close()


class TestCursor:
    """JournalCursor edge cases at the WAL-shipping boundary: torn tails
    mid-ship, LSN floors after a standby restore, and empty tails."""

    def test_read_new_streams_only_unseen_records(self, wal) -> None:
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "t0", ENTRIES)
        journal.commit("commit", "t1", ENTRIES)
        cursor = JournalCursor(wal)
        assert [r.lsn for r in cursor.read_new()] == [1, 2]
        assert cursor.read_new() == []  # unchanged file: nothing new
        journal.commit("evict", "t0")
        assert [r.lsn for r in cursor.read_new()] == [3]
        journal.close()

    def test_torn_tail_at_ship_boundary_heals_without_skipping(
        self, wal
    ) -> None:
        """A frame torn exactly where the cursor stopped must not be
        skipped: the next read re-reads from the same offset and picks
        the record up once the frame is whole."""
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "t0", ENTRIES)
        cursor = JournalCursor(wal)
        assert [r.lsn for r in cursor.read_new()] == [1]
        # Half a frame lands past the cursor (a crash mid-sync).
        frame = JournalRecord(2, "commit", "t1", ENTRIES).frame()
        intact = wal.read_bytes()
        wal.write_bytes(intact + frame[: len(frame) // 2])
        assert cursor.read_new() == []  # torn: stop, do not advance
        wal.write_bytes(intact + frame)  # the sync completes
        assert [r.lsn for r in cursor.read_new()] == [2]
        journal.close()

    def test_after_lsn_floor_skips_snapshot_covered_records(
        self, wal
    ) -> None:
        """A standby restored from a snapshot at LSN n passes
        ``after_lsn=n``: the cursor must replay only the tail past it,
        no matter where those frames sit in the file."""
        journal = Journal(wal, fsync=False)
        for i in range(4):
            journal.commit("commit", f"t{i}", ENTRIES)
        cursor = JournalCursor(wal, after_lsn=2)
        assert [r.lsn for r in cursor.read_new()] == [3, 4]
        journal.close()

    def test_floor_beyond_file_reads_empty_tail(self, wal) -> None:
        # The snapshot covers more than the (compacted) file holds: the
        # tail replay is legitimately empty, not an error.
        journal = Journal(wal, fsync=False)
        journal.commit("commit", "t0", ENTRIES)
        cursor = JournalCursor(wal, after_lsn=9)
        assert cursor.read_new() == []
        journal.close()

    def test_missing_file_reads_empty(self, wal) -> None:
        cursor = JournalCursor(wal)
        assert cursor.read_new() == []

    def test_compaction_under_cursor_falls_back_to_lsn_filter(
        self, wal
    ) -> None:
        """Compaction rewrites the file under the cursor's remembered
        offset; the cursor must trust LSNs over offsets and not replay
        records it already returned."""
        journal = Journal(wal, fsync=False)
        for i in range(4):
            journal.commit("commit", f"t{i}", ENTRIES)
        cursor = JournalCursor(wal)
        assert [r.lsn for r in cursor.read_new()] == [1, 2, 3, 4]
        journal.compact(keep_after_lsn=3)  # file now holds only LSN 4
        journal.commit("commit", "t4", ENTRIES)
        journal.sync()
        assert [r.lsn for r in cursor.read_new()] == [5]
        journal.close()


def test_frame_header_size_is_eight_bytes() -> None:
    assert FRAME_HEADER_SIZE == 8
