"""Engine checkpoint/restore: snapshots, journal replay, tier reconciliation."""

from __future__ import annotations

import json

import pytest

from repro import HCompress, HCompressConfig, RecoveryConfig, ares_hierarchy
from repro.errors import RecoveryError
from repro.recovery import replay_journal
from repro.recovery.journal import JOURNAL_NAME
from repro.recovery.snapshot import SNAPSHOT_NAME
from repro.units import KiB, MiB


@pytest.fixture()
def hierarchy():
    return ares_hierarchy(4 * MiB, 8 * MiB, 64 * MiB, nodes=1)


def journaled_engine(tmp_path, hierarchy, seed, **recovery_kwargs) -> HCompress:
    config = HCompressConfig(
        recovery=RecoveryConfig(
            enabled=True, directory=str(tmp_path), fsync=False, **recovery_kwargs
        )
    )
    return HCompress(hierarchy, config, seed=seed)


DATA0 = b"checkpointed bytes " * 3000
DATA1 = b"journal suffix bytes " * 2000


class TestCheckpointRestore:
    def test_roundtrip_with_journal_suffix(self, tmp_path, hierarchy, seed) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        path = engine.checkpoint()
        assert path == tmp_path / SNAPSHOT_NAME
        engine.compress(DATA1, task_id="t1")
        # Crash: abandon the engine (no close, journal already synced
        # per-commit), then restore into the surviving hierarchy.
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        report = restored.recovery_report
        assert report.snapshot_lsn >= 1
        assert report.records_replayed == 1  # t1, from the journal
        assert not report.journal_truncated
        assert report.missing_keys == 0
        assert restored.decompress("t0").data == DATA0
        assert restored.decompress("t1").data == DATA1
        restored.close()

    def test_checkpoint_compacts_journal(self, tmp_path, hierarchy, seed) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.compress(DATA1, task_id="t1")
        assert len(replay_journal(tmp_path / JOURNAL_NAME).records) == 2
        engine.checkpoint()
        assert replay_journal(tmp_path / JOURNAL_NAME).records == []
        engine.compress(DATA0, task_id="t2")
        suffix = replay_journal(tmp_path / JOURNAL_NAME).records
        assert [r.task_id for r in suffix] == ["t2"]
        assert suffix[0].lsn == 3  # LSNs survive compaction
        engine.close()

    def test_restore_requires_a_snapshot(self, tmp_path, hierarchy, seed) -> None:
        with pytest.raises(RecoveryError):
            HCompress.restore(tmp_path, hierarchy, seed=seed)

    def test_unknown_snapshot_version_rejected(
        self, tmp_path, hierarchy, seed
    ) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        path = engine.checkpoint()
        engine.close()
        raw = json.loads(path.read_text())
        raw["version"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(RecoveryError, match="version"):
            HCompress.restore(tmp_path, hierarchy, seed=seed)

    def test_checkpoint_is_atomic_and_repeatable(
        self, tmp_path, hierarchy, seed
    ) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.checkpoint()
        engine.compress(DATA1, task_id="t1")
        engine.checkpoint()
        # No temp debris; the latest snapshot wins and covers both tasks.
        assert [p.name for p in tmp_path.glob("*.tmp")] == []
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        assert restored.recovery_report.records_replayed == 0
        assert restored.decompress("t1").data == DATA1
        restored.close()
        engine.close()

    def test_counters_restore_monotonically(self, tmp_path, hierarchy, seed) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        snapshot_version = engine.predictor.model_version
        snapshot_epoch = engine.monitor.state_epoch
        engine.checkpoint()
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        assert restored.predictor.model_version >= snapshot_version
        assert restored.monitor.state_epoch >= snapshot_epoch
        restored.close()
        engine.close()

    def test_double_restore_is_identical(self, tmp_path, hierarchy, seed) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.checkpoint()
        engine.compress(DATA1, task_id="t1")
        first = HCompress.restore(tmp_path, hierarchy, seed=seed)
        second = HCompress.restore(tmp_path, hierarchy, seed=seed)
        assert second.manager.catalog_snapshot() == first.manager.catalog_snapshot()
        assert second.predictor.model_version == first.predictor.model_version
        # The first restore already reconciled; the second finds nothing.
        assert second.recovery_report.orphans_evicted == 0
        assert second.recovery_report.duplicates_evicted == 0
        second.close()
        first.close()

    def test_restored_engine_keeps_journaling(self, tmp_path, hierarchy, seed) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.checkpoint()
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        restored.compress(DATA1, task_id="t1")
        again = HCompress.restore(tmp_path, hierarchy, seed=seed)
        assert again.decompress("t1").data == DATA1
        again.close()
        restored.close()
        engine.close()


class TestReconciliation:
    def test_orphaned_extent_is_swept(self, tmp_path, hierarchy, seed) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.checkpoint()
        # An unacknowledged write's piece: on a tier, in no catalog entry.
        ram = hierarchy.by_name("ram")
        ram.put("ghost/0", b"z" * (4 * KiB))
        used_before = ram.used
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        assert restored.recovery_report.orphans_evicted == 1
        assert "ghost/0" not in ram.keys()
        assert ram.used < used_before  # capacity reclaimed, no leak
        assert restored.decompress("t0").data == DATA0
        restored.close()

    def test_duplicated_extent_keeps_the_find_copy(
        self, tmp_path, hierarchy, seed
    ) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.checkpoint()
        catalog = engine.manager.catalog_snapshot()
        key = catalog["t0"][0][0]
        payload, _ = engine.shi.read(key)
        # Model a flusher crash between copy and evict: same key on two tiers.
        hierarchy.by_name("pfs").put(key, payload)
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        assert restored.recovery_report.duplicates_evicted == 1
        holders = [t.spec.name for t in hierarchy if key in t.keys()]
        assert len(holders) == 1
        assert restored.decompress("t0").data == DATA0
        restored.close()

    def test_torn_journal_tail_recovers_last_intact_record(
        self, tmp_path, hierarchy, seed
    ) -> None:
        engine = journaled_engine(tmp_path, hierarchy, seed)
        engine.compress(DATA0, task_id="t0")
        engine.checkpoint()
        engine.compress(DATA1, task_id="t1")
        engine.compress(DATA0, task_id="t2")
        wal = tmp_path / JOURNAL_NAME
        wal.write_bytes(wal.read_bytes()[:-9])  # tear t2's commit record
        restored = HCompress.restore(tmp_path, hierarchy, seed=seed)
        report = restored.recovery_report
        assert report.journal_truncated
        assert report.records_replayed == 1  # t1 survived, t2 did not
        assert report.missing_keys == 0
        catalog = restored.manager.catalog_snapshot()
        assert "t1" in catalog and "t2" not in catalog
        # t2's placed-but-unjournaled pieces were swept, not leaked.
        assert report.orphans_evicted >= 1
        assert restored.decompress("t1").data == DATA1
        restored.close()
