"""Crash-point harness: every instrumented site recovers with invariants intact.

The acceptance gate for the recovery subsystem: `sweep_crash_sites` kills
the engine at every site x hit combination (>= 25 seeded crash points),
restores from journal + snapshot, and `CrashOutcome.holds` folds the
invariants — acked writes byte-identical, acked evicts gone, idempotent
replay, deterministic double restore, zero orphaned capacity.
"""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError, SimulatedCrashError
from repro.faults import CrashConfig, run_crash_recovery, sweep_crash_sites
from repro.recovery import CRASH_SITES, CrashPlan, Crashpoints


class TestCrashpoints:
    def test_unknown_site_rejected(self) -> None:
        with pytest.raises(RecoveryError):
            CrashPlan(site="manager.write.nonsense")

    def test_fires_on_the_nth_hit_only(self) -> None:
        cp = Crashpoints(plan=CrashPlan(site="shi.write.pre_put", hit=3))
        cp.reached("shi.write.pre_put")
        cp.reached("shi.write.pre_put")
        cp.reached("shi.write.post_put")  # other sites don't advance the count
        with pytest.raises(SimulatedCrashError):
            cp.reached("shi.write.pre_put")
        assert cp.fired == "shi.write.pre_put"

    def test_unarmed_arbiter_never_fires(self) -> None:
        cp = Crashpoints()
        for site in CRASH_SITES:
            cp.reached(site)
        assert cp.fired is None

    def test_plan_json_roundtrip(self, tmp_path) -> None:
        plan = CrashPlan(site="flusher.post_copy", hit=2, seed=17)
        path = tmp_path / "crash.json"
        plan.save(path)
        assert CrashPlan.load(path) == plan


class TestHarness:
    def test_baseline_without_a_crash_holds(self) -> None:
        outcome = run_crash_recovery(plan=None)
        assert not outcome.crashed
        assert outcome.holds, outcome.summary()
        assert outcome.tasks_acked == CrashConfig().tasks

    def test_unacked_write_leaves_no_orphaned_capacity(self) -> None:
        # Crash after a piece landed but before the journal: the write was
        # never acknowledged, so recovery must sweep the piece.
        outcome = run_crash_recovery(
            plan=CrashPlan(site="manager.write.piece_placed")
        )
        assert outcome.crashed and outcome.fired_site == "manager.write.piece_placed"
        assert outcome.holds, outcome.summary()
        assert outcome.orphans_evicted + outcome.duplicates_evicted >= 1
        assert outcome.orphan_keys_after == 0

    def test_torn_sync_recovers_to_last_intact_record(self) -> None:
        outcome = run_crash_recovery(plan=CrashPlan(site="journal.torn_sync"))
        assert outcome.crashed
        assert outcome.journal_truncated
        assert outcome.holds, outcome.summary()

    def test_flusher_crash_leaves_no_double_copies(self) -> None:
        outcome = run_crash_recovery(plan=CrashPlan(site="flusher.post_copy"))
        assert outcome.crashed
        assert outcome.holds, outcome.summary()
        assert outcome.duplicate_keys_after == 0


def test_sweep_covers_every_site_and_all_invariants_hold() -> None:
    """The headline gate: >= 25 seeded crash points, zero violations."""
    outcomes = sweep_crash_sites()
    assert len(outcomes) >= 25
    fired = [o for o in outcomes if o.crashed]
    # Every site in the matrix must actually be reachable by the workload —
    # a site that never fires is dead instrumentation, not a passing test.
    assert {o.fired_site for o in fired} == set(CRASH_SITES)
    violations = [o.summary() for o in outcomes if not o.holds]
    assert not violations, "\n".join(violations)
    # Replay idempotence and deterministic double restore held everywhere.
    assert all(o.replay_idempotent for o in outcomes)
    assert all(o.double_restore_identical for o in outcomes)
