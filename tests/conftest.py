"""Shared fixtures: cached profiler seed, hierarchy factories, data corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.core import HCompressProfiler
from repro.tiers import StorageHierarchy, Tier, TierSpec, ares_hierarchy
from repro.units import GiB, KiB, MiB


@pytest.fixture(scope="session")
def seed() -> SeedData:
    """One profiler seed for the whole test session (bootstrap is the
    expensive part of engine construction).

    Two corpus sizes are required: with a single size the encoder's
    log-size column is constant, its coefficient is unconstrained, and
    predictions at other task sizes extrapolate arbitrarily.
    """
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def small_hierarchy() -> StorageHierarchy:
    """A tiny 3-tier + PFS stack for placement tests."""
    return ares_hierarchy(
        ram_capacity=4 * MiB,
        nvme_capacity=8 * MiB,
        bb_capacity=64 * MiB,
        nodes=2,
    )


@pytest.fixture()
def two_tier() -> StorageHierarchy:
    """Minimal bounded-fast + unbounded-slow hierarchy."""
    fast = TierSpec(name="fast", capacity=1 * MiB, bandwidth=1e9, latency=1e-6, lanes=2)
    slow = TierSpec(name="slow", capacity=None, bandwidth=1e8, latency=1e-3, lanes=4)
    return StorageHierarchy([Tier(fast), Tier(slow)])


@pytest.fixture()
def gamma_f64(rng) -> bytes:
    """A compressible float64 gamma buffer (quantised)."""
    from repro.datagen import synthetic_buffer

    return synthetic_buffer("float64", "gamma", 64 * KiB, rng)
