"""Fault injection: tier outages and capacity exhaustion mid-run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HCompress
from repro.errors import PlacementError
from repro.tiers import StorageHierarchy, Tier, TierSpec, ares_hierarchy
from repro.units import GiB, KiB, MiB


class TestTierOutage:
    def test_writes_route_around_down_tier(self, seed, gamma_f64) -> None:
        hierarchy = ares_hierarchy(4 * MiB, 8 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(hierarchy, seed=seed)
        hierarchy.by_name("ram").set_available(False)
        result = engine.compress(gamma_f64, task_id="t")
        assert all(p.tier != "ram" for p in result.pieces)
        assert engine.decompress("t").data == gamma_f64

    def test_recovery_restores_routing(self, seed, gamma_f64) -> None:
        hierarchy = ares_hierarchy(4 * MiB, 8 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(hierarchy, seed=seed)
        ram = hierarchy.by_name("ram")
        ram.set_available(False)
        engine.compress(gamma_f64, task_id="down")
        ram.set_available(True)
        result = engine.compress(gamma_f64, task_id="up")
        assert result.pieces[0].tier == "ram"

    def test_all_tiers_down_is_placement_error(self, seed, gamma_f64) -> None:
        hierarchy = StorageHierarchy(
            [
                Tier(TierSpec(name="a", capacity=1 * MiB, bandwidth=2e9,
                              latency=0)),
                Tier(TierSpec(name="b", capacity=None, bandwidth=1e9,
                              latency=0)),
            ]
        )
        engine = HCompress(hierarchy, seed=seed)
        for tier in hierarchy:
            tier.set_available(False)
        with pytest.raises(PlacementError):
            engine.compress(gamma_f64)

    def test_reads_survive_outage_of_other_tiers(self, seed, gamma_f64) -> None:
        """A read only needs the tiers actually holding the pieces."""
        hierarchy = ares_hierarchy(4 * MiB, 8 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(hierarchy, seed=seed)
        result = engine.compress(gamma_f64, task_id="t")
        holding = {p.tier for p in result.pieces}
        for tier in hierarchy:
            if tier.spec.name not in holding:
                tier.set_available(False)
        assert engine.decompress("t").data == gamma_f64


class TestCapacityExhaustion:
    def test_sustained_writes_never_lose_data(self, seed, rng) -> None:
        hierarchy = ares_hierarchy(128 * KiB, 256 * KiB, 2 * MiB, nodes=2)
        engine = HCompress(hierarchy, seed=seed)
        blobs = {}
        for i in range(24):
            data = rng.gamma(2.0, 60.0, 4096).astype(np.float64)
            data = (np.round(data * 4096) / 4096).astype(np.float64).tobytes()
            blobs[f"t{i}"] = data
            engine.compress(data, task_id=f"t{i}")
        for task_id, data in blobs.items():
            assert engine.decompress(task_id).data == data

    def test_eviction_frees_room_for_reuse(self, seed, gamma_f64) -> None:
        hierarchy = ares_hierarchy(
            len(gamma_f64) * 2, len(gamma_f64) * 2, 64 * MiB, nodes=2
        )
        engine = HCompress(hierarchy, seed=seed)
        engine.compress(gamma_f64, task_id="old")
        used_before = hierarchy.total_used()
        engine.manager.evict_task("old")
        assert hierarchy.total_used() < used_before
        engine.compress(gamma_f64, task_id="new")
        assert engine.decompress("new").data == gamma_f64
