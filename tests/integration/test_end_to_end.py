"""Cross-module integration: the full engine against real data flows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HCompress, HCompressConfig
from repro.formats import H5LiteFile, H5LiteWriter, make_particles
from repro.hcdp import READ_AFTER_WRITE
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB

import io


class TestScientificDataFlow:
    def test_h5lite_checkpoint_through_engine(self, seed, rng) -> None:
        """A producer writes h5lite checkpoints through HCompress; a
        consumer reads them back bit-exact and parses the container."""
        hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(
            hierarchy, HCompressConfig(priority=READ_AFTER_WRITE), seed=seed
        )
        particles = make_particles(4096, rng)
        buffer = io.BytesIO()
        with H5LiteWriter(buffer) as writer:
            writer.write_dataset("particles", particles,
                                 attrs={"distribution": "normal"})
        blob = buffer.getvalue()

        hints = H5LiteFile(blob).hints("particles")
        result = engine.compress(blob, hints=hints, task_id="step0")
        assert result.task.analysis.from_metadata

        restored = engine.decompress("step0").data
        assert restored == blob
        reread = H5LiteFile(restored).read("particles")
        assert np.array_equal(reread, particles)

    def test_many_tasks_fill_and_spill(self, seed, rng) -> None:
        """Writing past the bounded tiers spills without data loss."""
        hierarchy = ares_hierarchy(256 * KiB, 512 * KiB, 16 * MiB, nodes=2)
        engine = HCompress(hierarchy, seed=seed)
        payloads = {}
        for i in range(12):
            data = rng.gamma(2.0, 60.0, 16 * 1024).astype(np.float64)
            data = (np.round(data * 4096) / 4096).astype(np.float64).tobytes()
            payloads[f"t{i}"] = data
            engine.compress(data, task_id=f"t{i}")
        for task_id, data in payloads.items():
            assert engine.decompress(task_id).data == data

    def test_feedback_improves_live_predictions(self, seed, rng) -> None:
        """Repeated writes of one data class converge the predicted ratio
        to the measured one (the §IV-D loop closing end to end)."""
        from repro.ccp import ObservationKey
        from repro.hcdp import ARCHIVAL_IO

        hierarchy = ares_hierarchy(64 * MiB, 128 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(
            hierarchy,
            HCompressConfig(priority=ARCHIVAL_IO, feedback_every_n=1),
            seed=seed,
        )
        data = rng.exponential(120.0, 32 * 1024).astype(np.float64)
        data = (np.round(data * 4096) / 4096).astype(np.float64).tobytes()

        first = engine.compress(data, task_id="w0")
        codec = first.pieces[0].plan.codec
        measured = first.pieces[0].actual_ratio
        for i in range(30):
            engine.compress(data, task_id=f"w{i + 1}")
        analysis = engine.analyzer.analyze(data)
        predicted = engine.predictor.predict(
            ObservationKey(*analysis.feature_key(), codec, len(data))
        ).ratio
        assert predicted == pytest.approx(measured, rel=0.25)


class TestSimulatedCluster:
    def test_hcompress_inside_simulation(self, seed, rng) -> None:
        """HCompress driven by simulated ranks with the sim clock wired
        into its System Monitor."""
        from repro.sim import IO, Delay, Simulation, spawn_ranks
        from repro.workloads import HCompressBackend, vpic_sample

        hierarchy = ares_hierarchy(512 * KiB, 1 * MiB, 64 * MiB, nodes=2)
        sim = Simulation(hierarchy)
        engine = HCompress(hierarchy, seed=seed, clock=lambda: sim.now)
        backend = HCompressBackend(engine)
        sample = vpic_sample(16 * KiB, rng)

        def program(ctx):
            for step in range(3):
                charge = backend.write(
                    f"r{ctx.rank}/s{step}", 1 * MiB, sample
                )
                if charge.cpu_seconds:
                    yield Delay(charge.cpu_seconds)
                for piece in charge.pieces:
                    yield IO(piece.tier, piece.nbytes, "write")
                yield from ctx.barrier()

        spawn_ranks(sim, 4, program)
        elapsed = sim.run()
        assert elapsed > 0
        assert engine.monitor.status().time <= elapsed
        assert hierarchy.total_used() > 0
