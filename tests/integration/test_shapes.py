"""The paper's headline claims, asserted at reduced scale.

These are the reproduction's acceptance tests: orderings and coarse factors
from the evaluation section must hold whenever the experiments run, not
just in the committed EXPERIMENTS.md record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_fig5, run_fig6, run_fig7, run_fig8

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


class TestFig7Claims:
    @pytest.fixture(scope="class")
    def table(self, seed):
        return run_fig7(
            process_counts=(2560,), scale=64, seed=seed,
            rng=np.random.default_rng(0),
        )

    def test_everything_beats_baseline(self, table) -> None:
        rows = {r["backend"]: r for r in table.row_dicts()}
        for name in ("STWC", "MTNC", "HC"):
            assert rows[name]["io_s"] < rows["BASE"]["io_s"]

    def test_hc_beats_single_optimizations(self, table) -> None:
        rows = {r["backend"]: r for r in table.row_dicts()}
        assert rows["HC"]["io_s"] < rows["STWC"]["io_s"]
        assert rows["HC"]["io_s"] < rows["MTNC"]["io_s"]

    def test_hc_speedup_band(self, table) -> None:
        """Paper: 12x over BASE at the 2560-rank point; the acceptance
        band is >= 5x (scale-model tolerance)."""
        rows = {r["backend"]: r for r in table.row_dicts()}
        assert rows["HC"]["speedup_vs_base"] >= 5.0

    def test_hc_actually_compresses(self, table) -> None:
        rows = {r["backend"]: r for r in table.row_dicts()}
        assert rows["HC"]["stored_ratio"] > 1.2
        assert rows["MTNC"]["stored_ratio"] == pytest.approx(1.0)


class TestFig5Claims:
    @pytest.fixture(scope="class")
    def table(self, seed):
        return run_fig5(
            scale=32, nprocs=128,
            codecs=("none", "zlib", "lz4", "brotli", "bzip2"),
            seed=seed, rng=np.random.default_rng(0),
        )

    def test_hcompress_fastest(self, table) -> None:
        rows = {r["scenario"]: r for r in table.row_dicts()}
        hc_time = rows["HCompress"]["elapsed_s"]
        for scenario, row in rows.items():
            if scenario != "HCompress":
                assert hc_time < row["elapsed_s"], scenario

    def test_hc_vs_none_factor(self, table) -> None:
        rows = {r["scenario"]: r for r in table.row_dicts()}
        factor = rows["None (Hermes)"]["elapsed_s"] / rows["HCompress"]["elapsed_s"]
        assert factor >= 2.0  # paper: up to 8x

    def test_static_compression_shrinks_footprint(self, table) -> None:
        rows = {r["scenario"]: r for r in table.row_dicts()}
        assert rows["Hermes+zlib"]["footprint_gib"] < rows["None (Hermes)"][
            "footprint_gib"
        ]


class TestFig6Claims:
    @pytest.fixture(scope="class")
    def table(self, seed):
        return run_fig6(
            scale=64, nprocs=32, codecs=("bsc", "lz4", "zlib", "snappy"),
            seed=seed, rng=np.random.default_rng(0),
        )

    def _by(self, table, codec):
        return {
            r["tier"]: r["tasks_per_s"]
            for r in table.row_dicts()
            if r["codec"] == codec
        }

    def test_heavy_codecs_flat_across_tiers(self, table) -> None:
        for codec in ("bsc", "zlib"):
            rates = self._by(table, codec)
            assert rates["ram"] / rates["burst_buffer"] < 3.0, codec

    def test_light_codecs_tier_sensitive(self, table) -> None:
        for codec in ("lz4", "snappy"):
            rates = self._by(table, codec)
            assert rates["ram"] / rates["burst_buffer"] > 5.0, codec

    def test_hcompress_beats_every_static_multitier(self, table) -> None:
        rows = table.row_dicts()
        hc = next(r for r in rows if r["codec"] == "HCompress")
        statics = [
            r["tasks_per_s"]
            for r in rows
            if r["tier"] == "multi-tiered" and r["codec"] != "HCompress"
        ]
        assert hc["tasks_per_s"] > max(statics)


class TestFig8Claims:
    @pytest.fixture(scope="class")
    def table(self, seed):
        return run_fig8(
            process_counts=(2560,), scale=64, seed=seed,
            rng=np.random.default_rng(0),
        )

    def test_ordering(self, table) -> None:
        rows = {r["backend"]: r for r in table.row_dicts()}
        assert rows["HC"]["total_s"] < rows["MTNC"]["total_s"]
        assert rows["HC"]["total_s"] < rows["STWC"]["total_s"]
        assert rows["MTNC"]["total_s"] < rows["BASE"]["total_s"]

    def test_reads_benefit_from_compression(self, table) -> None:
        """BD-CATS reads compressed data from higher tiers: the HC read
        phase must beat MTNC's."""
        rows = {r["backend"]: r for r in table.row_dicts()}
        assert rows["HC"]["read_s"] < rows["MTNC"]["read_s"]
