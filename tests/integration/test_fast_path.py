"""Hot-path acceptance: caching + concurrency change nothing but speed.

The PR's contract is that the cross-task plan cache and the piece thread
pool are pure optimizations — a full workload driven with both enabled
produces results identical to the serial/uncached seed behaviour. These
tests run the paper's VPIC kernel, a mixed compress/decompress session,
and the chaos acceptance workload in both modes and diff the outcomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExecutorConfig, HCompress, HCompressConfig, PlanCacheConfig
from repro.datagen import synthetic_buffer
from repro.experiments.fig7_vpic import (
    WRITE_PRIORITY,
    fig7_hierarchy,
    fig7_vpic_config,
)
from repro.faults import ChaosConfig, default_chaos_plan, run_chaos
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import HCompressBackend, run_vpic


def _config(fast: bool, **kw) -> HCompressConfig:
    return HCompressConfig(
        plan_cache=PlanCacheConfig(enabled=fast),
        executor=ExecutorConfig(enabled=fast),
        **kw,
    )


class TestVpicDeterminism:
    def _run(self, seed, fast: bool):
        config = fig7_vpic_config(64, scale=64)
        hierarchy = fig7_hierarchy(64)
        engine = HCompress(
            hierarchy,
            _config(fast, priority=WRITE_PRIORITY),
            seed=seed,
        )
        result = run_vpic(
            HCompressBackend(engine), config, hierarchy,
            rng=np.random.default_rng(0),
        )
        return result, engine

    def test_fig7_workload_identical(self, seed) -> None:
        baseline, _ = self._run(seed, fast=False)
        cached, engine = self._run(seed, fast=True)
        assert cached.elapsed_seconds == baseline.elapsed_seconds
        assert cached.stored_bytes == baseline.stored_bytes
        assert (
            cached.compression_seconds_total
            == baseline.compression_seconds_total
        )
        assert cached.footprint_by_tier == baseline.footprint_by_tier
        # The fast path actually engaged while changing nothing above.
        assert engine.engine.stats.plan_cache_hits > 0


class TestSessionDeterminism:
    """A mixed materialised/modeled write + read session, diffed piecewise."""

    def _run(self, seed, fast: bool):
        hierarchy = ares_hierarchy(2 * MiB, 4 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(hierarchy, _config(fast), seed=seed)
        rng = np.random.default_rng(42)
        fingerprints = []
        buffers = {
            "gamma": synthetic_buffer("float64", "gamma", 256 * KiB, rng),
            "uniform": synthetic_buffer("float64", "uniform", 128 * KiB, rng),
        }
        for round_ in range(3):
            for name, data in buffers.items():
                task_id = f"{name}-{round_}"
                write = engine.compress(data, task_id=task_id)
                fingerprints.append(
                    [
                        (p.key, p.tier, p.plan.codec, p.stored_size,
                         p.actual_ratio, p.compress_seconds, p.io_seconds)
                        for p in write.pieces
                    ]
                )
            modeled = engine.compress(
                buffers["gamma"], modeled_size=8 * MiB,
                task_id=f"modeled-{round_}",
            )
            fingerprints.append(
                [(p.tier, p.stored_size) for p in modeled.pieces]
            )
        for round_ in range(3):
            for name, data in buffers.items():
                read = engine.decompress(f"{name}-{round_}")
                assert read.data == data
                fingerprints.append(
                    (read.decompress_seconds, read.io_seconds, read.pieces)
                )
        stats = engine.engine.stats
        engine.finalize()
        return fingerprints, stats

    def test_session_identical(self, seed) -> None:
        baseline, base_stats = self._run(seed, fast=False)
        cached, fast_stats = self._run(seed, fast=True)
        assert cached == baseline
        assert base_stats.plan_cache_hits == 0
        assert fast_stats.plan_cache_hits > 0


@pytest.mark.slow
class TestChaosDeterminism:
    def test_chaos_outcome_identical(self) -> None:
        config = ChaosConfig(ranks=2, steps=4, step_kib=16)
        plan = default_chaos_plan(config)
        baseline = run_chaos(
            "HC", plan=plan, config=config,
            plan_cache=PlanCacheConfig(enabled=False),
            executor=ExecutorConfig(enabled=False),
        )
        cached = run_chaos("HC", plan=plan, config=config)
        assert cached.trace == baseline.trace
        assert cached.summary() == baseline.summary()
        assert cached.all_data_intact == baseline.all_data_intact
        assert cached.degraded_plans == baseline.degraded_plans
