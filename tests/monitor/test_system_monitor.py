"""System Monitor: the three signals, sampling cadence, fault visibility."""

from __future__ import annotations

import pytest

from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="fast", capacity=100, bandwidth=2e9, latency=0)),
            Tier(TierSpec(name="slow", capacity=None, bandwidth=1e9, latency=0)),
        ]
    )


class TestSignals:
    def test_snapshot_fields(self, hierarchy) -> None:
        hierarchy.by_name("fast").put("k", None, accounted_size=30)
        hierarchy.by_name("fast").begin_io(17)
        status = SystemMonitor(hierarchy).sample()
        fast = status.tier("fast")
        assert fast.available is True
        assert fast.load == 1
        assert fast.queued_bytes == 17
        assert fast.remaining == 70
        assert fast.used == 30
        assert fast.level == 0

    def test_unbounded_tier_remaining_none(self, hierarchy) -> None:
        status = SystemMonitor(hierarchy).sample()
        assert status.tier("slow").remaining is None

    def test_unknown_tier_in_snapshot(self, hierarchy) -> None:
        status = SystemMonitor(hierarchy).sample()
        with pytest.raises(KeyError):
            status.tier("tape")

    def test_effective_remaining_zero_when_down(self, hierarchy) -> None:
        hierarchy.by_name("fast").set_available(False)
        status = SystemMonitor(hierarchy).sample()
        assert status.tier("fast").effective_remaining() == 0
        assert status.tier("slow").effective_remaining() is None


class TestCadence:
    def test_interval_zero_always_fresh(self, hierarchy) -> None:
        monitor = SystemMonitor(hierarchy, interval=0.0)
        monitor.status()
        hierarchy.by_name("fast").put("k", None, accounted_size=50)
        assert monitor.status().tier("fast").used == 50

    def test_interval_caches_snapshots(self, hierarchy) -> None:
        clock_values = iter([0.0, 0.5, 0.9, 2.0, 2.0])
        monitor = SystemMonitor(hierarchy, clock=lambda: next(clock_values),
                                interval=1.0)
        first = monitor.status()  # t=0 -> sample (consumes two clock reads)
        hierarchy.by_name("fast").put("k", None, accounted_size=50)
        stale = monitor.status()  # t=0.9 < interval -> cached
        assert stale is first
        fresh = monitor.status()  # t=2.0 -> resample
        assert fresh.tier("fast").used == 50

    def test_samples_counter(self, hierarchy) -> None:
        monitor = SystemMonitor(hierarchy)
        monitor.sample()
        monitor.sample()
        assert monitor.samples_taken == 2

    def test_negative_interval_rejected(self, hierarchy) -> None:
        with pytest.raises(ValueError):
            SystemMonitor(hierarchy, interval=-1.0)


class TestStaleness:
    """The monitor's periodic-thread semantics under tier faults: an
    outage between samples is invisible until the interval elapses (the
    exact window degraded-mode replanning and SHI failover exist for)."""

    def test_outage_between_samples_reported_up(self, hierarchy) -> None:
        clock_values = iter([0.0, 0.5, 0.9])
        monitor = SystemMonitor(
            hierarchy, clock=lambda: next(clock_values), interval=1.0
        )
        monitor.status()  # t=0 -> fresh sample, tier up
        hierarchy.by_name("fast").set_available(False)
        stale = monitor.status()  # t=0.9 < interval -> cached
        assert stale.tier("fast").available is True
        assert hierarchy.by_name("fast").available is False  # live truth

    def test_outage_visible_after_interval(self, hierarchy) -> None:
        clock_values = iter([0.0, 0.0, 1.5, 1.5])
        monitor = SystemMonitor(
            hierarchy, clock=lambda: next(clock_values), interval=1.0
        )
        monitor.status()
        hierarchy.by_name("fast").set_available(False)
        fresh = monitor.status()  # t=1.5 >= interval -> resample
        assert fresh.tier("fast").available is False
        assert fresh.tier("fast").effective_remaining() == 0

    def test_recovery_also_lags_one_interval(self, hierarchy) -> None:
        hierarchy.by_name("fast").set_available(False)
        clock_values = iter([0.0, 0.0, 0.5, 2.0, 2.0])
        monitor = SystemMonitor(
            hierarchy, clock=lambda: next(clock_values), interval=1.0
        )
        monitor.status()  # sampled down
        hierarchy.by_name("fast").set_available(True)
        assert monitor.status().tier("fast").available is False  # stale
        assert monitor.status().tier("fast").available is True  # resampled

    def test_invalidate_forces_resample(self, hierarchy) -> None:
        clock_values = iter([0.0, 0.0, 0.1, 0.1])
        monitor = SystemMonitor(
            hierarchy, clock=lambda: next(clock_values), interval=10.0
        )
        monitor.status()
        hierarchy.by_name("fast").set_available(False)
        monitor.invalidate()
        assert monitor.status().tier("fast").available is False
