"""Statistics helpers: EWMA, sliding windows, R^2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitor import Ewma, SlidingWindow, r_squared


class TestEwma:
    def test_first_observation_is_value(self) -> None:
        ewma = Ewma(alpha=0.5)
        assert ewma.update(10.0) == 10.0

    def test_converges_toward_constant(self) -> None:
        ewma = Ewma(alpha=0.3)
        for _ in range(100):
            ewma.update(7.0)
        assert ewma.value == pytest.approx(7.0)

    def test_blend_formula(self) -> None:
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        assert ewma.update(10.0) == pytest.approx(5.0)

    def test_alpha_validation(self) -> None:
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_unset_value_is_none(self) -> None:
        assert Ewma().value is None


class TestSlidingWindow:
    def test_mean_of_partial_window(self) -> None:
        win = SlidingWindow(capacity=10)
        for v in (1.0, 2.0, 3.0):
            win.push(v)
        assert win.mean == pytest.approx(2.0)
        assert len(win) == 3

    def test_eviction_at_capacity(self) -> None:
        win = SlidingWindow(capacity=3)
        for v in (1.0, 2.0, 3.0, 10.0):
            win.push(v)
        assert len(win) == 3
        assert win.mean == pytest.approx(5.0)
        assert win.values() == [2.0, 3.0, 10.0]

    def test_empty_mean_is_zero(self) -> None:
        assert SlidingWindow().mean == 0.0

    def test_capacity_validation(self) -> None:
        with pytest.raises(ValueError):
            SlidingWindow(capacity=0)

    def test_running_sum_stays_consistent(self) -> None:
        win = SlidingWindow(capacity=5)
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, 50)
        for v in values:
            win.push(float(v))
        assert win.mean == pytest.approx(float(values[-5:].mean()))


class TestRSquared:
    def test_perfect_prediction(self) -> None:
        assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_mean_prediction_scores_zero(self) -> None:
        actual = [1.0, 2.0, 3.0]
        assert r_squared(actual, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self) -> None:
        assert r_squared([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0

    def test_constant_actuals(self) -> None:
        assert r_squared([5.0, 5.0], [5.0, 5.0]) == 1.0
        assert r_squared([5.0, 5.0], [4.0, 6.0]) == 0.0

    def test_shape_mismatch(self) -> None:
        with pytest.raises(ValueError):
            r_squared([1, 2], [1, 2, 3])

    def test_empty(self) -> None:
        assert r_squared([], []) == 0.0
