"""VPIC-IO workload simulation."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import (
    PfsBaselineBackend,
    VpicConfig,
    run_vpic,
    vpic_sample,
    vpic_task_id,
)


def _config(**kw) -> VpicConfig:
    defaults = dict(
        nprocs=4,
        timesteps=2,
        bytes_per_rank_per_step=1 * MiB,
        compute_seconds=0.5,
        sample_bytes=16 * KiB,
    )
    defaults.update(kw)
    return VpicConfig(**defaults)


class TestConfig:
    def test_total_bytes(self) -> None:
        assert _config().total_bytes == 8 * MiB

    def test_validation(self) -> None:
        with pytest.raises(WorkloadError):
            _config(nprocs=0)
        with pytest.raises(WorkloadError):
            _config(timesteps=0)
        with pytest.raises(WorkloadError):
            _config(bytes_per_rank_per_step=0)
        with pytest.raises(WorkloadError):
            _config(compute_jitter=1.5)


class TestSample:
    def test_sample_size_exact(self, rng) -> None:
        assert len(vpic_sample(10_000, rng)) == 10_000

    def test_sample_is_particle_records(self, rng) -> None:
        import numpy as np

        from repro.formats import particle_dtype

        raw = vpic_sample(32 * 1024, rng)
        records = np.frombuffer(raw[: len(raw) - len(raw) % 32],
                                dtype=particle_dtype())
        assert np.isfinite(records["energy"]).all()

    def test_task_id_grid(self) -> None:
        assert vpic_task_id(3, 7) == "vpic/r3/s7"


class TestRun:
    def test_base_run_accounting(self, rng) -> None:
        hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 1 * GiB, nodes=2)
        config = _config()
        result = run_vpic(PfsBaselineBackend(hierarchy), config, hierarchy,
                          rng=rng)
        assert result.tasks_written == 8
        assert result.bytes_written == 8 * MiB
        assert result.stored_bytes == 8 * MiB
        assert result.elapsed_seconds > config.timesteps * 0.4  # compute floor
        assert result.footprint_by_tier["pfs"] == 8 * MiB

    def test_io_seconds_excludes_compute(self, rng) -> None:
        hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 1 * GiB, nodes=2)
        config = _config()
        result = run_vpic(PfsBaselineBackend(hierarchy), config, hierarchy,
                          rng=rng)
        assert result.io_seconds < result.elapsed_seconds
        assert result.io_seconds > 0

    def test_jitter_spreads_arrivals(self, rng) -> None:
        from repro.sim import TraceRecorder

        hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 1 * GiB, nodes=2)
        trace = TraceRecorder()
        config = _config(nprocs=8, timesteps=1, compute_seconds=10.0,
                         compute_jitter=0.2)
        run_vpic(PfsBaselineBackend(hierarchy), config, hierarchy, rng=rng,
                 trace=trace)
        arrival_times = {rec.time for rec in trace.records}
        assert len(arrival_times) > 4  # not a lockstep herd

    def test_flusher_drains_during_compute(self, rng) -> None:
        hierarchy = ares_hierarchy(2 * MiB, 4 * MiB, 1 * GiB, nodes=2)
        config = _config(nprocs=4, timesteps=3, compute_seconds=5.0)
        result = run_vpic(PfsBaselineBackend(hierarchy), config, hierarchy,
                          rng=rng, flush=True)
        assert result.tasks_written == 12
