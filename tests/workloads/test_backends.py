"""I/O backends: the four evaluated configurations behind one interface."""

from __future__ import annotations

import pytest

from repro.core import HCompress
from repro.errors import TierError, WorkloadError
from repro.hermes import HermesBuffering, HermesWithStaticCompression
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import (
    HCompressBackend,
    HermesBackend,
    HermesStaticBackend,
    PfsBaselineBackend,
    StaticCompressionBackend,
)


@pytest.fixture()
def hierarchy():
    return ares_hierarchy(
        ram_capacity=1 * MiB, nvme_capacity=2 * MiB, bb_capacity=1 * GiB,
        nodes=2,
    )


class TestBaseline:
    def test_everything_to_pfs(self, hierarchy, gamma_f64) -> None:
        backend = PfsBaselineBackend(hierarchy)
        charge = backend.write("t", 8 * MiB, gamma_f64)
        assert len(charge.pieces) == 1
        assert charge.pieces[0].tier == "pfs"
        assert charge.stored_size == 8 * MiB
        assert charge.cpu_seconds == 0.0

    def test_read_mirrors_write(self, hierarchy, gamma_f64) -> None:
        backend = PfsBaselineBackend(hierarchy)
        backend.write("t", 8 * MiB, gamma_f64)
        read = backend.read("t")
        assert read.pieces[0].tier == "pfs"
        assert read.io_bytes == 8 * MiB

    def test_unknown_read(self, hierarchy) -> None:
        with pytest.raises(TierError):
            PfsBaselineBackend(hierarchy).read("ghost")

    def test_duplicate_write(self, hierarchy, gamma_f64) -> None:
        backend = PfsBaselineBackend(hierarchy)
        backend.write("t", 1 * MiB, gamma_f64)
        with pytest.raises(WorkloadError):
            backend.write("t", 1 * MiB, gamma_f64)


class TestStatic:
    def test_compression_shrinks_charge(self, hierarchy, gamma_f64) -> None:
        backend = StaticCompressionBackend(hierarchy, codec="zlib")
        charge = backend.write("t", 8 * MiB, gamma_f64)
        assert charge.stored_size < 8 * MiB
        assert charge.cpu_seconds > 0

    def test_read_charges_decompression(self, hierarchy, gamma_f64) -> None:
        backend = StaticCompressionBackend(hierarchy, codec="zlib")
        backend.write("t", 8 * MiB, gamma_f64)
        read = backend.read("t")
        assert read.cpu_seconds > 0
        assert read.io_bytes == backend.read("t").io_bytes

    def test_expansion_clamped(self, hierarchy, rng) -> None:
        import numpy as np

        noise = rng.integers(0, 256, 64 * KiB, dtype=np.uint8).tobytes()
        backend = StaticCompressionBackend(hierarchy, codec="bzip2")
        charge = backend.write("t", 1 * MiB, noise)
        assert charge.stored_size <= 1 * MiB + 16

    def test_unknown_codec(self, hierarchy) -> None:
        with pytest.raises(WorkloadError):
            StaticCompressionBackend(hierarchy, codec="zstd")


class TestHermes:
    def test_spreads_across_tiers(self, hierarchy, gamma_f64) -> None:
        backend = HermesBackend(HermesBuffering(hierarchy))
        charge = backend.write("t", 8 * MiB, gamma_f64)
        tiers = [p.tier for p in charge.pieces]
        assert tiers[0] == "ram"
        assert len(tiers) >= 2
        assert charge.stored_size == 8 * MiB  # no reduction

    def test_read_follows_current_location(self, hierarchy, gamma_f64) -> None:
        buffering = HermesBuffering(hierarchy)
        backend = HermesBackend(buffering)
        backend.write("t", 512 * KiB, gamma_f64)
        # Relocate the piece and confirm the read charge follows.
        ram = hierarchy.by_name("ram")
        pfs = hierarchy.by_name("pfs")
        size = ram.evict("t/0")
        pfs.put("t/0", None, accounted_size=size)
        read = backend.read("t")
        assert read.pieces[0].tier == "pfs"


class TestHermesStatic:
    def test_name_reflects_codec(self, hierarchy) -> None:
        backend = HermesStaticBackend(
            HermesWithStaticCompression(hierarchy, codec="lz4")
        )
        assert backend.name == "HERMES+lz4"

    def test_write_and_read(self, hierarchy, gamma_f64) -> None:
        backend = HermesStaticBackend(
            HermesWithStaticCompression(hierarchy, codec="zlib")
        )
        charge = backend.write("t", 4 * MiB, gamma_f64)
        assert charge.stored_size < 4 * MiB
        read = backend.read("t")
        assert read.cpu_seconds > 0


class TestHCompressBackend:
    def test_write_read_cycle(self, hierarchy, seed, gamma_f64) -> None:
        engine = HCompress(hierarchy, seed=seed)
        backend = HCompressBackend(engine)
        charge = backend.write("t", 4 * MiB, gamma_f64)
        assert charge.io_bytes > 0
        read = backend.read("t")
        assert read.op == "read"
        assert read.io_bytes == charge.io_bytes
