"""HDF5-style micro-benchmark workload."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import (
    MicroConfig,
    PfsBaselineBackend,
    StaticCompressionBackend,
    h5lite_block,
    micro_tasks,
    run_micro,
)


def _config(**kw) -> MicroConfig:
    defaults = dict(nprocs=2, tasks_per_proc=4, task_bytes=256 * KiB,
                    dtype="float64", distribution="gamma",
                    sample_bytes=16 * KiB)
    defaults.update(kw)
    return MicroConfig(**defaults)


class TestTasks:
    def test_grid(self, rng) -> None:
        tasks = micro_tasks(_config(), rng)
        assert len(tasks) == 8
        assert {t.rank for t in tasks} == {0, 1}
        assert all(t.size == 256 * KiB for t in tasks)

    def test_hints_route_fast_path(self, rng) -> None:
        from repro.analyzer import DataFormat, DataType, Distribution

        task = micro_tasks(_config(), rng)[0]
        assert task.hints.dtype is DataType.FLOAT64
        assert task.hints.data_format is DataFormat.H5LITE
        assert task.hints.distribution is Distribution.GAMMA

    def test_sample_is_h5lite(self, rng) -> None:
        from repro.analyzer import DataFormat, detect_format

        task = micro_tasks(_config(), rng)[0]
        assert detect_format(task.sample) is DataFormat.H5LITE

    def test_config_validation(self) -> None:
        with pytest.raises(WorkloadError):
            _config(nprocs=0)
        with pytest.raises(WorkloadError):
            _config(task_bytes=0)


class TestBlock:
    def test_block_readable(self, rng) -> None:
        from repro.formats import H5LiteFile

        blob = h5lite_block("float64", "gamma", 32 * KiB, rng)
        reader = H5LiteFile(blob)
        assert reader.dataset_names == ["block"]
        assert reader.attrs("block")["distribution"] == "gamma"


class TestRun:
    def test_write_only(self, rng) -> None:
        hierarchy = ares_hierarchy(256 * KiB, 512 * KiB, 1 * GiB, nodes=2)
        result = run_micro(PfsBaselineBackend(hierarchy), _config(), hierarchy,
                           rng=rng)
        assert result.tasks_done == 8
        assert result.bytes_written == 8 * 256 * KiB
        assert result.tasks_per_second > 0

    def test_read_back_doubles_traffic(self, rng) -> None:
        from repro.sim import TraceRecorder

        hierarchy = ares_hierarchy(256 * KiB, 512 * KiB, 1 * GiB, nodes=2)
        trace = TraceRecorder()
        run_micro(
            StaticCompressionBackend(hierarchy, codec="lz4"),
            _config(),
            hierarchy,
            rng=rng,
            read_back=True,
            trace=trace,
        )
        ops = {rec.op for rec in trace.records}
        assert ops == {"write", "read"}

    def test_think_time_spreads_arrivals(self, rng) -> None:
        hierarchy = ares_hierarchy(256 * KiB, 512 * KiB, 1 * GiB, nodes=2)
        result = run_micro(
            PfsBaselineBackend(hierarchy), _config(), hierarchy, rng=rng,
            think_seconds=0.5,
        )
        assert result.elapsed_seconds > 4 * 0.25  # think floor per task
