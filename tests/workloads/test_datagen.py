"""Synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    DISTRIBUTIONS,
    DTYPES,
    corpus,
    synthetic_buffer,
    synthetic_text,
    synthetic_values,
)
from repro.errors import WorkloadError


class TestValues:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_distributions_generate(self, distribution, rng) -> None:
        values = synthetic_values(distribution, 10_000, rng)
        assert values.shape == (10_000,)
        assert np.isfinite(values).all()

    def test_unknown_distribution(self, rng) -> None:
        with pytest.raises(WorkloadError):
            synthetic_values("cauchy", 10, rng)

    def test_negative_count(self, rng) -> None:
        with pytest.raises(WorkloadError):
            synthetic_values("normal", -1, rng)

    def test_classes_match_analyzer(self, rng) -> None:
        """The generators and the analyzer must agree on labels."""
        from repro.analyzer import classify_distribution, DataType

        for distribution in DISTRIBUTIONS:
            buf = synthetic_buffer("float64", distribution, 128 * 1024, rng)
            guess = classify_distribution(buf, DataType.FLOAT64)
            assert guess.distribution.value == distribution, distribution


class TestBuffers:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_exact_length(self, dtype, distribution, rng) -> None:
        buf = synthetic_buffer(dtype, distribution, 10_001, rng)
        assert len(buf) == 10_001

    def test_zero_length(self, rng) -> None:
        assert synthetic_buffer("float64", "normal", 0, rng) == b""

    def test_quantisation_makes_compressible(self, rng) -> None:
        from repro.codecs import get_codec

        quantised = synthetic_buffer("float64", "gamma", 64 * 1024, rng)
        raw = synthetic_buffer("float64", "gamma", 64 * 1024, rng,
                               quantise=False)
        codec = get_codec("zlib")
        assert codec.ratio(quantised) > codec.ratio(raw) * 1.2

    def test_integer_buffers_nonnegative(self, rng) -> None:
        buf = synthetic_buffer("int32", "normal", 40_000, rng)
        values = np.frombuffer(buf, dtype=np.int32)
        assert (values >= 0).all()


class TestText:
    def test_length_and_ascii(self, rng) -> None:
        text = synthetic_text(5_000, rng)
        assert len(text) == 5_000
        text.decode("ascii")

    def test_compressible(self, rng) -> None:
        from repro.codecs import get_codec

        assert get_codec("zlib").ratio(synthetic_text(32_768, rng)) > 2.0


class TestCorpus:
    def test_covers_grid(self, rng) -> None:
        batch = corpus(4_096, rng)
        assert len(batch) == len(DTYPES) * len(DISTRIBUTIONS) + 1
        assert ("text", "text") in batch

    def test_text_excludable(self, rng) -> None:
        batch = corpus(4_096, rng, include_text=False)
        assert ("text", "text") not in batch
