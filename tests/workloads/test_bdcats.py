"""BD-CATS-IO and the paired workflow."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import (
    BdcatsConfig,
    PfsBaselineBackend,
    VpicConfig,
    WorkflowConfig,
    run_bdcats,
    run_vpic,
    run_workflow,
)


def _vpic() -> VpicConfig:
    return VpicConfig(
        nprocs=4, timesteps=2, bytes_per_rank_per_step=1 * MiB,
        compute_seconds=0.1, sample_bytes=16 * KiB,
    )


def _hierarchy():
    return ares_hierarchy(1 * MiB, 2 * MiB, 1 * GiB, nodes=2)


class TestBdcats:
    def test_reads_what_vpic_wrote(self, rng) -> None:
        hierarchy = _hierarchy()
        backend = PfsBaselineBackend(hierarchy)
        run_vpic(backend, _vpic(), hierarchy, rng=rng)
        result = run_bdcats(
            backend, BdcatsConfig(nprocs=4, timesteps=2, cluster_seconds=0.1),
            hierarchy,
        )
        assert result.tasks_read == 8
        assert result.bytes_read == 8 * MiB
        assert result.read_by_tier == {"pfs": 8 * MiB}
        assert result.elapsed_seconds > 0

    def test_missing_producer_data(self, rng) -> None:
        hierarchy = _hierarchy()
        backend = PfsBaselineBackend(hierarchy)
        from repro.errors import TierError

        with pytest.raises(TierError):
            run_bdcats(
                backend, BdcatsConfig(nprocs=2, timesteps=1), hierarchy
            )

    def test_config_validation(self) -> None:
        with pytest.raises(WorkloadError):
            BdcatsConfig(nprocs=0, timesteps=1)


class TestWorkflow:
    def test_paired_constructor(self) -> None:
        config = WorkflowConfig.paired(nprocs=8, timesteps=3,
                                       bytes_per_rank_per_step=1 * MiB)
        assert config.vpic.nprocs == config.bdcats.nprocs == 8
        assert config.vpic.timesteps == config.bdcats.timesteps == 3

    def test_mismatched_grids_rejected(self) -> None:
        with pytest.raises(WorkloadError):
            WorkflowConfig(
                vpic=VpicConfig(nprocs=4, timesteps=2),
                bdcats=BdcatsConfig(nprocs=8, timesteps=2),
            )
        with pytest.raises(WorkloadError):
            WorkflowConfig(
                vpic=VpicConfig(nprocs=4, timesteps=2),
                bdcats=BdcatsConfig(nprocs=4, timesteps=3),
            )

    def test_end_to_end(self, rng) -> None:
        hierarchy = _hierarchy()
        backend = PfsBaselineBackend(hierarchy)
        config = WorkflowConfig(
            vpic=_vpic(),
            bdcats=BdcatsConfig(nprocs=4, timesteps=2, cluster_seconds=0.1),
        )
        result = run_workflow(backend, config, hierarchy, rng=rng)
        assert result.elapsed_seconds == pytest.approx(
            result.write.elapsed_seconds + result.read.elapsed_seconds
        )
        assert result.backend_name == "BASE"
