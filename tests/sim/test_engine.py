"""Discrete-event engine: delays, contention, barriers, daemons."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import IO, Barrier, Delay, Simulation, TraceRecorder
from repro.tiers import StorageHierarchy, Tier, TierSpec


def _hierarchy(lanes: int = 2, bandwidth: float = 1e6) -> StorageHierarchy:
    return StorageHierarchy(
        [Tier(TierSpec(name="disk", capacity=None, bandwidth=bandwidth,
                       latency=0.0, lanes=lanes))]
    )


class TestDelays:
    def test_single_delay(self) -> None:
        sim = Simulation()

        def proc():
            yield Delay(2.5)

        sim.add_process(proc())
        assert sim.run() == pytest.approx(2.5)

    def test_sequential_delays_accumulate(self) -> None:
        sim = Simulation()

        def proc():
            yield Delay(1.0)
            yield Delay(2.0)

        sim.add_process(proc())
        assert sim.run() == pytest.approx(3.0)

    def test_parallel_processes_overlap(self) -> None:
        sim = Simulation()
        for _ in range(5):
            sim.add_process(iter([Delay(4.0)]))
        assert sim.run() == pytest.approx(4.0)

    def test_negative_delay_rejected(self) -> None:
        with pytest.raises(SimulationError):
            Delay(-1.0)

    def test_send_value_is_realised_duration(self) -> None:
        sim = Simulation()
        observed = []

        def proc():
            waited = yield Delay(1.5)
            observed.append(waited)

        sim.add_process(proc())
        sim.run()
        assert observed == [pytest.approx(1.5)]

    def test_completed_count(self) -> None:
        sim = Simulation()
        for _ in range(3):
            sim.add_process(iter([Delay(1.0)]))
        sim.run()
        assert sim.completed_processes == 3

    def test_run_until(self) -> None:
        sim = Simulation()
        sim.add_process(iter([Delay(100.0)]))
        assert sim.run(until=10.0) == pytest.approx(10.0)


class TestIO:
    def test_service_time_formula(self) -> None:
        # 1 MB over a single 1 MB/s lane with zero latency = 1 second.
        sim = Simulation(_hierarchy(lanes=1, bandwidth=1e6))

        def proc():
            yield IO("disk", 1_000_000)

        sim.add_process(proc())
        assert sim.run() == pytest.approx(1.0)

    def test_lanes_serve_in_parallel(self) -> None:
        sim = Simulation(_hierarchy(lanes=2, bandwidth=2e6))
        for _ in range(2):
            sim.add_process(iter([IO("disk", 1_000_000)]))
        assert sim.run() == pytest.approx(1.0)

    def test_contention_queues_fcfs(self) -> None:
        # 4 x 1MB ops on 2 lanes of 1MB/s each: two waves of 1 s.
        sim = Simulation(_hierarchy(lanes=2, bandwidth=2e6))
        for _ in range(4):
            sim.add_process(iter([IO("disk", 1_000_000)]))
        assert sim.run() == pytest.approx(2.0)

    def test_latency_added_per_op(self) -> None:
        h = StorageHierarchy(
            [Tier(TierSpec(name="d", capacity=None, bandwidth=1e6,
                           latency=0.25, lanes=1))]
        )
        sim = Simulation(h)
        sim.add_process(iter([IO("d", 1_000_000)]))
        assert sim.run() == pytest.approx(1.25)

    def test_unknown_tier(self) -> None:
        sim = Simulation(_hierarchy())
        sim.add_process(iter([IO("tape", 10)]))
        with pytest.raises(SimulationError):
            sim.run()

    def test_io_without_hierarchy(self) -> None:
        sim = Simulation()
        sim.add_process(iter([IO("disk", 10)]))
        with pytest.raises(SimulationError):
            sim.run()

    def test_queue_depth_tracked(self) -> None:
        h = _hierarchy(lanes=1, bandwidth=1e6)
        sim = Simulation(h)
        depths = []

        def writer():
            yield IO("disk", 1_000_000)

        def watcher():
            yield Delay(0.5)
            depths.append(h.by_name("disk").queue_depth)
            yield Delay(1.0)
            depths.append(h.by_name("disk").queue_depth)

        sim.add_process(writer())
        sim.add_process(watcher())
        sim.run()
        assert depths == [1, 0]

    def test_queued_bytes_tracked(self) -> None:
        h = _hierarchy(lanes=1, bandwidth=1e6)
        sim = Simulation(h)
        seen = []

        def writer():
            yield IO("disk", 800_000)

        def watcher():
            yield Delay(0.1)
            seen.append(h.by_name("disk").queued_bytes)

        sim.add_process(writer())
        sim.add_process(watcher())
        sim.run()
        assert seen == [800_000]

    def test_trace_records_queueing(self) -> None:
        trace = TraceRecorder()
        sim = Simulation(_hierarchy(lanes=1, bandwidth=1e6), trace=trace)
        for _ in range(2):
            sim.add_process(iter([IO("disk", 1_000_000)]))
        sim.run()
        assert len(trace) == 2
        queued = sorted(rec.queued for rec in trace.records)
        assert queued[0] == pytest.approx(0.0)
        assert queued[1] == pytest.approx(1.0)

    def test_invalid_op_rejected(self) -> None:
        with pytest.raises(SimulationError):
            IO("disk", 10, "append")

    def test_negative_size_rejected(self) -> None:
        with pytest.raises(SimulationError):
            IO("disk", -1)


class TestBarriers:
    def test_barrier_synchronises(self) -> None:
        sim = Simulation()
        times = []

        def proc(delay):
            yield Delay(delay)
            yield Barrier("g", 3)
            times.append(sim.now)

        for d in (1.0, 2.0, 5.0):
            sim.add_process(proc(d))
        sim.run()
        assert times == [pytest.approx(5.0)] * 3

    def test_overfilled_barrier(self) -> None:
        sim = Simulation()
        for _ in range(3):
            sim.add_process(iter([Barrier("g", 2)]))
        with pytest.raises(SimulationError):
            sim.run()

    def test_deadlock_detected(self) -> None:
        sim = Simulation()
        sim.add_process(iter([Barrier("g", 2)]))  # second arrival never comes
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_generations_are_independent(self) -> None:
        sim = Simulation()

        def proc():
            yield Barrier("g", 2, generation=0)
            yield Barrier("g", 2, generation=1)

        sim.add_process(proc())
        sim.add_process(proc())
        sim.run()
        assert sim.completed_processes == 2


class TestDaemons:
    def test_daemon_does_not_keep_sim_alive(self) -> None:
        sim = Simulation()

        def daemon():
            while True:
                yield Delay(0.1)

        def worker():
            yield Delay(1.0)

        sim.add_process(daemon(), daemon=True)
        sim.add_process(worker())
        elapsed = sim.run()
        assert 1.0 <= elapsed < 1.2

    def test_daemon_performs_work_meanwhile(self) -> None:
        sim = Simulation()
        ticks = []

        def daemon():
            while True:
                yield Delay(0.3)
                ticks.append(sim.now)

        sim.add_process(daemon(), daemon=True)
        sim.add_process(iter([Delay(1.0)]))
        sim.run()
        assert len(ticks) >= 3

    def test_finished_daemon_is_fine(self) -> None:
        sim = Simulation()

        def short_daemon():
            yield Delay(0.1)

        sim.add_process(short_daemon(), daemon=True)
        sim.add_process(iter([Delay(1.0)]))
        assert sim.run() == pytest.approx(1.0)
        assert sim.completed_processes == 1
