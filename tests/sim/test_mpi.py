"""MPI-style communicators over the event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, SimComm, Simulation, spawn_ranks


class TestComm:
    def test_size_validation(self) -> None:
        sim = Simulation()
        with pytest.raises(SimulationError):
            SimComm(sim, 0)

    def test_rank_bounds(self) -> None:
        comm = SimComm(Simulation(), 4)
        with pytest.raises(SimulationError):
            comm.context(4)
        with pytest.raises(SimulationError):
            comm.context(-1)

    def test_iteration_yields_all_ranks(self) -> None:
        comm = SimComm(Simulation(), 3)
        assert [ctx.rank for ctx in comm] == [0, 1, 2]


class TestSpawnRanks:
    def test_bulk_synchronous_steps(self) -> None:
        sim = Simulation()
        step_times: dict[int, list[float]] = {0: [], 1: []}

        def program(ctx):
            for step in range(2):
                yield ctx.compute(0.5 * (ctx.rank + 1))
                yield from ctx.barrier()
                step_times[step].append(sim.now)

        spawn_ranks(sim, 4, program)
        sim.run()
        # Every rank leaves each barrier at the slowest rank's time.
        assert step_times[0] == [pytest.approx(2.0)] * 4
        assert step_times[1] == [pytest.approx(4.0)] * 4

    def test_barrier_generations_auto_increment(self) -> None:
        sim = Simulation()

        def program(ctx):
            for _ in range(5):
                yield from ctx.barrier()

        spawn_ranks(sim, 3, program)
        sim.run()
        assert sim.completed_processes == 3

    def test_now_visible_to_ranks(self) -> None:
        sim = Simulation()
        seen = []

        def program(ctx):
            yield Delay(1.0)
            seen.append(ctx.now)

        spawn_ranks(sim, 1, program)
        sim.run()
        assert seen == [pytest.approx(1.0)]

    def test_mismatched_barrier_counts_deadlock(self) -> None:
        sim = Simulation()

        def program(ctx):
            rounds = 1 if ctx.rank == 0 else 2
            for _ in range(rounds):
                yield from ctx.barrier()

        spawn_ranks(sim, 2, program)
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()
