"""Trace recording and per-tier summaries."""

from __future__ import annotations

import pytest

from repro.sim import TraceRecorder


@pytest.fixture()
def trace() -> TraceRecorder:
    t = TraceRecorder()
    t.record(time=0.0, tier="ram", op="write", nbytes=100, queued=0.0, duration=1.0)
    t.record(time=1.0, tier="ram", op="read", nbytes=50, queued=0.5, duration=1.5)
    t.record(time=2.0, tier="pfs", op="write", nbytes=900, queued=0.0, duration=3.0)
    return t


class TestRecorder:
    def test_length_and_iteration(self, trace) -> None:
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_bytes_by_tier(self, trace) -> None:
        assert trace.bytes_by_tier() == {"ram": 150, "pfs": 900}

    def test_bytes_by_tier_filtered(self, trace) -> None:
        assert trace.bytes_by_tier(op="write") == {"ram": 100, "pfs": 900}
        assert trace.bytes_by_tier(op="read") == {"ram": 50}

    def test_summaries(self, trace) -> None:
        summary = trace.summaries()["ram"]
        assert summary.ops == 2
        assert summary.bytes_total == 150
        assert summary.queued_seconds == pytest.approx(0.5)
        assert summary.busy_seconds == pytest.approx(2.0)
        assert summary.mean_queue == pytest.approx(0.25)

    def test_clear(self, trace) -> None:
        trace.clear()
        assert len(trace) == 0
        assert trace.summaries() == {}

    def test_records_returns_copy(self, trace) -> None:
        records = trace.records
        records.clear()
        assert len(trace) == 3
