"""Random-access partial reads (the virtual-chunks property)."""

from __future__ import annotations

import pytest

from repro.core import HCompress
from repro.errors import SchemaError, TierError
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB


@pytest.fixture()
def engine(seed):
    hierarchy = ares_hierarchy(64 * KiB, 128 * KiB, 1 * GiB, nodes=2)
    return HCompress(hierarchy, seed=seed)


@pytest.fixture()
def written(engine, gamma_f64):
    result = engine.compress(gamma_f64, task_id="t")
    return engine, gamma_f64, result


class TestPartialReads:
    @pytest.mark.parametrize(
        "offset,length",
        [(0, 100), (1000, 5000), (0, 64 * 1024), (63 * 1024, 1024)],
    )
    def test_slice_correct(self, written, offset, length) -> None:
        engine, data, _ = written
        read = engine.decompress("t", offset=offset, length=length)
        assert read.data == data[offset : offset + length]

    def test_full_read_via_range(self, written) -> None:
        engine, data, _ = written
        assert engine.decompress("t", offset=0).data == data

    def test_range_past_end_truncates(self, written) -> None:
        engine, data, _ = written
        read = engine.decompress("t", offset=len(data) - 10, length=10_000)
        assert read.data == data[-10:]

    def test_touches_only_overlapping_pieces(self, written) -> None:
        engine, data, result = written
        if len(result.pieces) < 2:
            pytest.skip("task did not split")
        first_len = result.pieces[0].plan.length
        read = engine.decompress("t", offset=0, length=min(first_len, 512))
        assert read.pieces == 1
        full = engine.decompress("t")
        assert read.io_seconds < full.io_seconds

    def test_empty_range(self, written) -> None:
        engine, _, _ = written
        read = engine.decompress("t", offset=100, length=0)
        assert read.data == b""
        assert read.pieces == 0

    def test_invalid_range(self, written) -> None:
        engine, _, _ = written
        with pytest.raises(SchemaError):
            engine.manager.execute_read_range("t", -1, 10)
        with pytest.raises(SchemaError):
            engine.manager.execute_read_range("t", 0, -5)

    def test_unknown_task(self, engine) -> None:
        with pytest.raises(TierError):
            engine.manager.execute_read_range("ghost", 0, 10)

    def test_modeled_task_charges_overlap_only(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, modeled_size=8 * MiB, task_id="big")
        partial = engine.manager.execute_read_range("big", 0, 64 * KiB)
        full = engine.manager.execute_read("big")
        assert partial.io_seconds < full.io_seconds
        assert partial.data is None  # accounting-only task
