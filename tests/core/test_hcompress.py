"""The HCompress engine end to end."""

from __future__ import annotations

import pytest

from repro.core import HCompress, HCompressConfig
from repro.errors import HCompressError
from repro.hcdp import ARCHIVAL_IO, Priority
from repro.tiers import ares_hierarchy
from repro.units import GiB, MiB


@pytest.fixture()
def engine(small_hierarchy, seed) -> HCompress:
    return HCompress(small_hierarchy, seed=seed)


class TestCompressDecompress:
    def test_roundtrip(self, engine, gamma_f64) -> None:
        result = engine.compress(gamma_f64)
        assert result.total_stored > 0
        read = engine.decompress(result.task.task_id)
        assert read.data == gamma_f64

    def test_explicit_task_id(self, engine, gamma_f64) -> None:
        result = engine.compress(gamma_f64, task_id="my-task")
        assert result.task.task_id == "my-task"
        assert engine.decompress("my-task").data == gamma_f64

    def test_modeled_size(self, engine, gamma_f64) -> None:
        result = engine.compress(gamma_f64, modeled_size=32 * MiB)
        assert result.task.size == 32 * MiB
        assert not result.task.materialised

    def test_requires_data_or_task(self, engine) -> None:
        with pytest.raises(HCompressError):
            engine.compress()

    def test_rejects_both_data_and_task(self, engine, gamma_f64) -> None:
        from repro.analyzer import InputAnalyzer
        from repro.hcdp import IOTask

        task = IOTask("x", len(gamma_f64),
                      InputAnalyzer().analyze(gamma_f64), data=gamma_f64)
        with pytest.raises(HCompressError):
            engine.compress(gamma_f64, task=task)

    def test_schema_attached_to_result(self, engine, gamma_f64) -> None:
        result = engine.compress(gamma_f64)
        assert hasattr(result, "schema")
        assert len(result.schema.pieces) == len(result.pieces)


class TestFeedbackIntegration:
    def test_observations_flow_into_model(self, small_hierarchy, seed,
                                          gamma_f64) -> None:
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(priority=ARCHIVAL_IO, feedback_every_n=1),
            seed=seed,
        )
        seen_before = engine.predictor.observations_seen
        engine.compress(gamma_f64)
        assert engine.predictor.observations_seen > seen_before

    def test_accuracy_exposed(self, engine) -> None:
        assert engine.accuracy() is None or -1 <= engine.accuracy() <= 1


class TestAnatomy:
    def test_write_breakdown_sums_to_one(self, engine, gamma_f64) -> None:
        for _ in range(3):
            engine.compress(gamma_f64 + bytes([engine.anatomy.write_ops]))
        breakdown = engine.anatomy.write_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert engine.anatomy.write_ops == 3

    def test_read_breakdown(self, engine, gamma_f64) -> None:
        result = engine.compress(gamma_f64)
        engine.decompress(result.task.task_id)
        breakdown = engine.anatomy.read_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["read"] > 0

    def test_empty_breakdown_is_zero(self, engine) -> None:
        assert sum(engine.anatomy.write_breakdown().values()) == 0.0


class TestLifecycle:
    def test_priority_swap(self, engine) -> None:
        engine.set_priority(Priority(0.0, 1.0, 0.0))
        assert engine.engine.priority.ratio == 1.0

    def test_finalize_writes_seed(self, small_hierarchy, seed, tmp_path,
                                  gamma_f64) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        engine.compress(gamma_f64)
        path = tmp_path / "seed.json"
        updated = engine.finalize(seed_path=path)
        assert path.exists()
        assert updated.system_signature  # hierarchy was profiled
        assert updated.weights is not None

    def test_finalized_engine_refuses_work(self, engine, gamma_f64) -> None:
        engine.finalize()
        with pytest.raises(HCompressError):
            engine.compress(gamma_f64)
        with pytest.raises(HCompressError):
            engine.finalize()

    def test_seed_path_bootstrap(self, small_hierarchy, seed, tmp_path) -> None:
        from repro.ccp import save_seed

        path = tmp_path / "seed.json"
        save_seed(seed, path)
        engine = HCompress(
            small_hierarchy, HCompressConfig(seed_path=path)
        )
        assert engine.predictor.fitted

    def test_sim_clock_plumbs_into_monitor(self, small_hierarchy, seed) -> None:
        times = iter([1.5, 2.5, 3.5, 4.5])
        engine = HCompress(small_hierarchy, seed=seed,
                           clock=lambda: next(times))
        status = engine.monitor.sample()
        assert status.time == 1.5


class TestDeterministicShutdown:
    """close()/finalize() must join the piece pool's threads — repeated
    engine construction in one process must never accumulate threads."""

    @staticmethod
    def _pool_threads() -> list:
        import threading

        return [
            t for t in threading.enumerate()
            if t.name.startswith("hcompress-piece") and t.is_alive()
        ]

    def test_close_joins_pool_threads(self, small_hierarchy, seed,
                                      gamma_f64) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        engine.compress(gamma_f64, task_id="t0")
        # Workers spawn lazily on submit; force one so there is a
        # thread to leak.
        engine.manager._executor().submit(lambda: None).result()
        assert self._pool_threads()
        engine.close()
        assert self._pool_threads() == []
        assert engine.manager._pool_executor is None
        engine.close()  # idempotent

    def test_finalize_joins_pool_threads(self, small_hierarchy, seed) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        engine.manager._executor().submit(lambda: None).result()
        engine.finalize()
        assert self._pool_threads() == []

    def test_context_manager_exit_joins_pool_threads(
        self, small_hierarchy, seed
    ) -> None:
        with HCompress(small_hierarchy, seed=seed) as engine:
            engine.manager._executor().submit(lambda: None).result()
            assert self._pool_threads()
        assert self._pool_threads() == []

    def test_repeated_engines_do_not_accumulate_threads(
        self, small_hierarchy, seed
    ) -> None:
        import threading

        baseline = threading.active_count()
        for _ in range(5):
            engine = HCompress(small_hierarchy, seed=seed)
            engine.manager._executor().submit(lambda: None).result()
            engine.close()
        assert threading.active_count() <= baseline
