"""The Compression Manager: schema execution, metadata, reads, spills."""

from __future__ import annotations

import pytest

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor
from repro.codecs import CompressionLibraryPool, HEADER_SIZE
from repro.core import CompressionManager, StorageHardwareInterface
from repro.errors import SchemaError, TierError
from repro.hcdp import HcdpEngine, IOTask
from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import KiB, MiB


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="fast", capacity=2 * MiB, bandwidth=4e9,
                          latency=1e-6, lanes=2)),
            Tier(TierSpec(name="slow", capacity=None, bandwidth=1e8,
                          latency=1e-3, lanes=4)),
        ]
    )


@pytest.fixture()
def stack(hierarchy, seed):
    pool = CompressionLibraryPool()
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    engine = HcdpEngine(predictor, SystemMonitor(hierarchy), pool)
    manager = CompressionManager(pool, StorageHardwareInterface(hierarchy))
    analyzer = InputAnalyzer()
    return engine, manager, analyzer


class TestMaterialisedWrites:
    def test_write_then_read_roundtrip(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        schema = engine.plan(task)
        result = manager.execute_write(schema)
        assert result.total_stored > 0
        read = manager.execute_read("t")
        assert read.data == gamma_f64
        assert read.pieces == len(schema.pieces)

    def test_duplicate_write_rejected(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        task2 = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                       data=gamma_f64)
        with pytest.raises(SchemaError):
            manager.execute_write(engine.plan(task2))

    def test_observations_use_measured_ratios(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        # Force a compressing codec by planning an archival write.
        from repro.hcdp import ARCHIVAL_IO

        engine.set_priority(ARCHIVAL_IO)
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        result = manager.execute_write(engine.plan(task))
        assert result.observations
        for obs in result.observations:
            assert obs.ratio > 0
            assert obs.key.codec != "none"

    def test_achieved_ratio(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        from repro.hcdp import ARCHIVAL_IO

        engine.set_priority(ARCHIVAL_IO)
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        result = manager.execute_write(engine.plan(task))
        assert result.achieved_ratio > 1.2


class TestModeledWrites:
    def test_sample_scaled_accounting(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        modeled = 16 * MiB
        task = IOTask("big", modeled, analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        schema = engine.plan(task)
        result = manager.execute_write(schema)
        total = sum(p.stored_size for p in result.pieces)
        # Accounting reflects the modeled footprint, not the 64 KiB sample.
        assert total > len(gamma_f64)
        assert total <= modeled + HEADER_SIZE * len(result.pieces)

    def test_sample_ratio_cached_across_tasks(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        analysis = analyzer.analyze(gamma_f64)
        for i in range(3):
            task = IOTask(f"m{i}", 8 * MiB, analysis, data=gamma_f64)
            manager.execute_write(engine.plan(task))
        # One measurement per (sample, codec) pair at most.
        assert len(manager._sample_ratios) <= 12

    def test_modeled_read_charges_modeled_time(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("big", 32 * MiB, analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        read = manager.execute_read("big")
        assert read.modeled_size == 32 * MiB


class TestSpill:
    def test_runtime_spill_when_prediction_optimistic(self, hierarchy, seed,
                                                      gamma_f64) -> None:
        """If the measured footprint exceeds the planned tier's room, the
        manager falls through to the next tier instead of failing."""
        pool = CompressionLibraryPool()
        predictor = CompressionCostPredictor()
        predictor.fit_seed(seed.observations)
        engine = HcdpEngine(predictor, SystemMonitor(hierarchy), pool)
        manager = CompressionManager(pool, StorageHardwareInterface(hierarchy))
        task = IOTask("t", 512 * KiB, InputAnalyzer().analyze(gamma_f64),
                      data=gamma_f64)
        schema = engine.plan(task)
        # Shrink the planned tier under the plan's feet.
        planned_tier = hierarchy.by_name(schema.pieces[0].tier)
        if planned_tier.spec.capacity is not None:
            planned_tier.put("squatter", None,
                             accounted_size=planned_tier.remaining)
        result = manager.execute_write(schema)
        if planned_tier.spec.capacity is not None:
            assert manager.spill_events >= 1
            assert result.pieces[0].spilled


class TestCatalog:
    def test_task_keys_and_pieces(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        assert manager.task_keys("t") == ["t/0"]
        assert manager.task_pieces("t") == [("t/0", len(gamma_f64))]
        assert "t" in manager

    def test_unknown_task(self, stack) -> None:
        _, manager, _ = stack
        with pytest.raises(TierError):
            manager.task_keys("ghost")
        with pytest.raises(TierError):
            manager.execute_read("ghost")

    def test_evict_task(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        released = manager.evict_task("t")
        assert released > 0
        assert "t" not in manager
        assert manager.shi.hierarchy.total_used() == 0
