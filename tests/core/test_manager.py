"""The Compression Manager: schema execution, metadata, reads, spills."""

from __future__ import annotations

import pytest

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor
from repro.codecs import CompressionLibraryPool, HEADER_SIZE
from repro.core import CompressionManager, StorageHardwareInterface
from repro.errors import SchemaError, TierError
from repro.hcdp import HcdpEngine, IOTask
from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import KiB, MiB


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="fast", capacity=2 * MiB, bandwidth=4e9,
                          latency=1e-6, lanes=2)),
            Tier(TierSpec(name="slow", capacity=None, bandwidth=1e8,
                          latency=1e-3, lanes=4)),
        ]
    )


@pytest.fixture()
def stack(hierarchy, seed):
    pool = CompressionLibraryPool()
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    engine = HcdpEngine(predictor, SystemMonitor(hierarchy), pool)
    manager = CompressionManager(pool, StorageHardwareInterface(hierarchy))
    analyzer = InputAnalyzer()
    return engine, manager, analyzer


class TestMaterialisedWrites:
    def test_write_then_read_roundtrip(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        schema = engine.plan(task)
        result = manager.execute_write(schema)
        assert result.total_stored > 0
        read = manager.execute_read("t")
        assert read.data == gamma_f64
        assert read.pieces == len(schema.pieces)

    def test_duplicate_write_rejected(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        task2 = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                       data=gamma_f64)
        with pytest.raises(SchemaError):
            manager.execute_write(engine.plan(task2))

    def test_observations_use_measured_ratios(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        # Force a compressing codec by planning an archival write.
        from repro.hcdp import ARCHIVAL_IO

        engine.set_priority(ARCHIVAL_IO)
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        result = manager.execute_write(engine.plan(task))
        assert result.observations
        for obs in result.observations:
            assert obs.ratio > 0
            assert obs.key.codec != "none"

    def test_achieved_ratio(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        from repro.hcdp import ARCHIVAL_IO

        engine.set_priority(ARCHIVAL_IO)
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        result = manager.execute_write(engine.plan(task))
        assert result.achieved_ratio > 1.2


class TestModeledWrites:
    def test_sample_scaled_accounting(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        modeled = 16 * MiB
        task = IOTask("big", modeled, analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        schema = engine.plan(task)
        result = manager.execute_write(schema)
        total = sum(p.stored_size for p in result.pieces)
        # Accounting reflects the modeled footprint, not the 64 KiB sample.
        assert total > len(gamma_f64)
        assert total <= modeled + HEADER_SIZE * len(result.pieces)

    def test_sample_ratio_cached_across_tasks(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        analysis = analyzer.analyze(gamma_f64)
        for i in range(3):
            task = IOTask(f"m{i}", 8 * MiB, analysis, data=gamma_f64)
            manager.execute_write(engine.plan(task))
        # One measurement per (sample, codec) pair at most.
        assert len(manager._sample_ratios) <= 12

    def test_modeled_read_charges_modeled_time(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("big", 32 * MiB, analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        read = manager.execute_read("big")
        assert read.modeled_size == 32 * MiB


class TestSampleRatio:
    """The LRU-cached representative-sample measurement (modeled writes)."""

    FKEY = ("float64", "binary", "gamma")

    def _manager(self, hierarchy, **kw):
        from repro.core import ExecutorConfig

        return CompressionManager(
            CompressionLibraryPool(), StorageHardwareInterface(hierarchy),
            executor=ExecutorConfig(**kw) if kw else None,
        )

    def test_all_zero_sample(self, hierarchy) -> None:
        """A degenerate all-zeros sample must yield a huge but finite,
        positive ratio (run-length-friendly input), never a crash."""
        manager = self._manager(hierarchy)
        sample = bytes(64 * KiB)
        ratio = manager._sample_ratio(sample, "zlib", self.FKEY)
        assert ratio > 10.0
        assert ratio == manager._sample_ratio(sample, "zlib", self.FKEY)
        assert manager.sample_cache_hits == 1
        assert manager.sample_cache_misses == 1

    def test_incompressible_random_sample(self, hierarchy) -> None:
        """Random bytes expand a little under any entropy codec: the
        measured ratio must come back slightly below 1, not clamped."""
        import numpy as np

        manager = self._manager(hierarchy)
        sample = np.random.default_rng(3).integers(
            0, 256, 64 * KiB, dtype=np.uint8
        ).tobytes()
        ratio = manager._sample_ratio(sample, "zlib", self.FKEY)
        assert 0.9 < ratio <= 1.01

    def test_identity_codec_is_exact(self, hierarchy) -> None:
        manager = self._manager(hierarchy)
        assert manager._sample_ratio(b"abc", "none", self.FKEY) == 1.0
        assert manager.sample_cache_misses == 0  # analytic, not measured

    def test_distinct_samples_measured_separately(self, hierarchy, gamma_f64) -> None:
        manager = self._manager(hierarchy)
        a = manager._sample_ratio(gamma_f64, "zlib", self.FKEY)
        b = manager._sample_ratio(bytes(len(gamma_f64)), "zlib", self.FKEY)
        assert a != b
        assert manager.sample_cache_misses == 2

    def test_lru_bound(self, hierarchy) -> None:
        manager = self._manager(hierarchy, sample_cache_size=2)
        for i in range(4):
            manager._sample_ratio(bytes([i]) * 4096, "zlib", self.FKEY)
        assert len(manager._sample_ratios) == 2
        # Oldest entry was evicted: re-measuring it is a miss again.
        misses = manager.sample_cache_misses
        manager._sample_ratio(bytes([0]) * 4096, "zlib", self.FKEY)
        assert manager.sample_cache_misses == misses + 1


class TestPieceExecutor:
    """The piece thread pool must never change results, only wall time."""

    def _run(self, seed, data, n_tasks=3, enabled=True):
        from repro.core import ExecutorConfig
        from repro.hcdp import ARCHIVAL_IO

        # Fast tier smaller than the compressed task: every plan splits
        # into a fast piece + slow remainder (two stdlib-codec pieces).
        hierarchy = StorageHierarchy(
            [
                Tier(TierSpec(name="fast", capacity=1 * MiB, bandwidth=4e9,
                              latency=1e-6, lanes=4)),
                Tier(TierSpec(name="slow", capacity=None, bandwidth=1e8,
                              latency=1e-3, lanes=4)),
            ]
        )
        pool = CompressionLibraryPool()
        predictor = CompressionCostPredictor()
        predictor.fit_seed(seed.observations)
        engine = HcdpEngine(
            predictor, SystemMonitor(hierarchy), pool, priority=ARCHIVAL_IO
        )
        manager = CompressionManager(
            pool, StorageHardwareInterface(hierarchy),
            executor=ExecutorConfig(enabled=enabled, min_piece_bytes=4096),
        )
        analyzer = InputAnalyzer()
        outcomes = []
        for i in range(n_tasks):
            task = IOTask(f"t{i}", len(data), analyzer.analyze(data),
                          data=data)
            write = manager.execute_write(engine.plan(task))
            read = manager.execute_read(f"t{i}")
            outcomes.append(
                (
                    [(p.key, p.tier, p.stored_size, p.actual_ratio,
                      p.compress_seconds, p.io_seconds) for p in write.pieces],
                    read.data,
                    read.decompress_seconds,
                    read.io_seconds,
                )
            )
        manager.shutdown()
        return outcomes, manager

    def test_parallel_write_read_identical_to_serial(self, seed, rng) -> None:
        from repro.datagen import synthetic_buffer

        # Big enough that the planner splits into several stdlib pieces.
        data = synthetic_buffer("float64", "gamma", 4 * MiB, rng)
        serial, m_serial = self._run(seed, data, enabled=False)
        parallel, m_parallel = self._run(seed, data, enabled=True)
        assert serial == parallel
        assert m_serial.parallel_pieces == 0
        assert m_parallel.parallel_pieces > 0
        for outcomes in parallel:
            assert outcomes[1] == data  # round trip intact

    def test_small_pieces_stay_serial(self, seed, gamma_f64) -> None:
        _, manager = self._run(seed, gamma_f64[: 8 * KiB], n_tasks=1)
        assert manager.parallel_pieces == 0

    def test_shutdown_idempotent(self, hierarchy) -> None:
        manager = CompressionManager(
            CompressionLibraryPool(), StorageHardwareInterface(hierarchy)
        )
        manager._executor()  # force pool creation
        manager.shutdown()
        manager.shutdown()
        assert manager._pool_executor is None


class TestSpill:
    def test_runtime_spill_when_prediction_optimistic(self, hierarchy, seed,
                                                      gamma_f64) -> None:
        """If the measured footprint exceeds the planned tier's room, the
        manager falls through to the next tier instead of failing."""
        pool = CompressionLibraryPool()
        predictor = CompressionCostPredictor()
        predictor.fit_seed(seed.observations)
        engine = HcdpEngine(predictor, SystemMonitor(hierarchy), pool)
        manager = CompressionManager(pool, StorageHardwareInterface(hierarchy))
        task = IOTask("t", 512 * KiB, InputAnalyzer().analyze(gamma_f64),
                      data=gamma_f64)
        schema = engine.plan(task)
        # Shrink the planned tier under the plan's feet.
        planned_tier = hierarchy.by_name(schema.pieces[0].tier)
        if planned_tier.spec.capacity is not None:
            planned_tier.put("squatter", None,
                             accounted_size=planned_tier.remaining)
        result = manager.execute_write(schema)
        if planned_tier.spec.capacity is not None:
            assert manager.spill_events >= 1
            assert result.pieces[0].spilled


class TestCatalog:
    def test_task_keys_and_pieces(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        assert manager.task_keys("t") == ["t/0"]
        assert manager.task_pieces("t") == [("t/0", len(gamma_f64))]
        assert "t" in manager

    def test_unknown_task(self, stack) -> None:
        _, manager, _ = stack
        with pytest.raises(TierError):
            manager.task_keys("ghost")
        with pytest.raises(TierError):
            manager.execute_read("ghost")

    def test_evict_task(self, stack, gamma_f64) -> None:
        engine, manager, analyzer = stack
        task = IOTask("t", len(gamma_f64), analyzer.analyze(gamma_f64),
                      data=gamma_f64)
        manager.execute_write(engine.plan(task))
        released = manager.evict_task("t")
        assert released > 0
        assert "t" not in manager
        assert manager.shi.hierarchy.total_used() == 0
