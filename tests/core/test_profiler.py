"""The HCompress Profiler: seed generation and system signatures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HCompressProfiler
from repro.errors import SeedError
from repro.units import KiB


@pytest.fixture(scope="module")
def profiler() -> HCompressProfiler:
    return HCompressProfiler(rng=np.random.default_rng(0))


class TestCodecProfiling:
    def test_quick_seed_covers_roster_and_formats(self, profiler) -> None:
        seed = profiler.quick_seed(sizes=(8 * KiB,))
        codecs = {o.key.codec for o in seed.observations}
        assert len(codecs) == 11  # identity excluded
        formats = {o.key.data_format for o in seed.observations}
        assert "h5lite" in formats  # metadata fast-path coverage
        assert "binary" in formats

    def test_nominal_mode_uses_profile_speeds(self, profiler) -> None:
        from repro.codecs import get_profile

        seed = profiler.quick_seed(sizes=(8 * KiB,))
        for obs in seed.observations:
            profile = get_profile(obs.key.codec)
            assert obs.compress_mbps == profile.compress_mbps

    def test_measured_mode_uses_wall_clock(self) -> None:
        profiler = HCompressProfiler(mode="measured",
                                     rng=np.random.default_rng(0))
        seed = profiler.quick_seed(sizes=(8 * KiB,))
        from repro.codecs import get_profile

        mismatches = sum(
            1
            for obs in seed.observations
            if obs.compress_mbps != get_profile(obs.key.codec).compress_mbps
        )
        assert mismatches > len(seed.observations) // 2

    def test_ratios_are_measured_not_nominal(self, profiler, rng) -> None:
        """Ratios must come from real compression of real bytes."""
        seed = profiler.quick_seed(sizes=(8 * KiB,))
        zlib_gamma = [
            o.ratio
            for o in seed.observations
            if o.key.codec == "zlib" and o.key.distribution == "gamma"
            and o.key.dtype == "float64"
        ]
        assert zlib_gamma
        assert all(1.5 < r < 6.0 for r in zlib_gamma)

    def test_user_corpus(self, profiler, gamma_f64) -> None:
        observations = profiler.profile_codecs(
            inputs={("float64", "gamma"): gamma_f64}, sizes=(8 * KiB,)
        )
        assert {o.key.dtype for o in observations} == {"float64"}

    def test_invalid_mode(self) -> None:
        with pytest.raises(SeedError):
            HCompressProfiler(mode="psychic")


class TestSystemSignature:
    def test_signature_covers_tiers(self, profiler, small_hierarchy) -> None:
        signature = profiler.system_signature(small_hierarchy)
        assert set(signature) == {"ram", "nvme", "burst_buffer", "pfs"}
        assert signature["ram"]["level"] == 0.0
        assert signature["pfs"]["capacity"] == -1.0  # unbounded marker

    def test_generate_seed_bundles_both(self, profiler, small_hierarchy,
                                        gamma_f64) -> None:
        seed = profiler.generate_seed(
            hierarchy=small_hierarchy,
            inputs={("float64", "gamma"): gamma_f64},
            sizes=(8 * KiB,),
            weights={"compression": 1.0},
        )
        assert seed.system_signature
        assert seed.weights == {"compression": 1.0}
        assert seed.observations
