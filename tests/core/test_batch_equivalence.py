"""Byte-identity of the batched hot path (DESIGN.md §12).

One fig-7-shaped VPIC checkpoint burst, driven three ways over engines
built from the same profiler seed:

  1. ``compress`` once per task (the reference interleaving),
  2. ``compress_batch`` over the whole burst,
  3. ``ShardedHCompress.compress_batch`` over N shards vs the same
     shards driven per task.

Schemas, catalogs, piece receipts, observations, reads, and every
planner/monitor/model counter must match exactly — the batch path is a
performance shape, never a semantics shape. Explicitly excluded batch
gauges (plan-cache LRU recency, predictor table-cache hit/miss split,
``parallel_pieces``, anatomy wall-clock seconds, snapshot timestamps)
are the *only* tolerated divergences and are not compared here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HCompress
from repro.core.config import HCompressConfig
from repro.shard import ShardConfig, ShardedHCompress
from repro.tiers import ares_hierarchy, ares_specs
from repro.units import GiB, KiB, MiB
from repro.workloads import vpic_sample
from repro.workloads.vpic import VPIC_HINTS

TASKS = 192


@pytest.fixture(scope="module")
def burst() -> list[dict]:
    """A fig-7-shaped VPIC checkpoint burst: every rank writes the same
    modeled slab each timestep, sampled from one shared buffer. Each item
    carries a tenant so the sharded tests exercise per-item tenant
    routing (inert on an unsharded engine without QoS)."""
    sample = vpic_sample(64 * KiB, np.random.default_rng(0))
    return [
        {
            "data": sample,
            "hints": VPIC_HINTS,
            "modeled_size": 8 * MiB,
            "task_id": f"vpic.{i // 64}.{i % 64}",  # timestep.rank
            "tenant": f"tenant-{i % 7}",
        }
        for i in range(TASKS)
    ]


def _engine(seed) -> HCompress:
    return HCompress(
        ares_hierarchy(64 * MiB, 128 * MiB, 4 * GiB, nodes=2),
        HCompressConfig(),
        seed=seed,
    )


def _counters(e: HCompress) -> dict:
    s = e.engine.stats
    return {
        "tasks_planned": s.tasks_planned,
        "memo_hits": s.memo_hits,
        "memo_misses": s.memo_misses,
        "pieces_emitted": s.pieces_emitted,
        "degraded": s.degraded_plans,
        "pc_hits": s.plan_cache_hits,
        "pc_misses": s.plan_cache_misses,
        "pc_inval": s.plan_cache_invalidations,
        "model_version": e.predictor.model_version,
        "obs_seen": e.predictor.observations_seen,
        "mon_samples": e.monitor.samples_taken,
        "mon_epoch": e.monitor.state_epoch,
        "sample_hits": e.manager.sample_cache_hits,
        "sample_misses": e.manager.sample_cache_misses,
        "spills": e.manager.spill_events,
        "replans": e.replans,
        "flushes": e.feedback.flushes,
        "pending_obs": e.feedback.pending,
        "analyzer": (e.analyzer.cache_hits, e.analyzer.cache_misses),
        "tier_used": {t.spec.name: t.used for t in e.hierarchy},
        "shi": (
            e.shi.stats.retries,
            e.shi.stats.failovers,
            e.shi.stats.exhausted,
        ),
    }


def _schema_view(result):
    return (
        result.task.task_id,
        tuple(result.schema.pieces),
        result.schema.expected_cost,
        result.schema.memo_hits,
        result.schema.memo_misses,
    )


def _piece_view(result):
    return [
        (
            p.plan, p.key, p.tier, p.stored_size, p.actual_ratio,
            p.compress_seconds, p.io_seconds, p.spilled, p.failover,
            p.retries,
        )
        for p in result.pieces
    ]


def _assert_write_equivalent(ref_results, ref_engine, results, engine):
    assert [_schema_view(r) for r in ref_results] == [
        _schema_view(r) for r in results
    ]
    for ra, rb in zip(ref_results, results):
        assert _piece_view(ra) == _piece_view(rb)
        assert ra.observations == rb.observations
    assert (
        ref_engine.manager.catalog_snapshot()
        == engine.manager.catalog_snapshot()
    )
    assert _counters(ref_engine) == _counters(engine)


def test_batch_is_byte_identical_to_per_task(seed, burst) -> None:
    a = _engine(seed)
    seq = [a.compress(**item) for item in burst]
    b = _engine(seed)
    bat = b.compress_batch(burst)
    _assert_write_equivalent(seq, a, bat, b)

    # read-back: decompress_batch against per-task decompress
    ids = [item["task_id"] for item in burst]
    reads_a = [a.decompress(tid) for tid in ids]
    reads_b = b.decompress_batch(ids)
    for x, y in zip(reads_a, reads_b):
        assert (
            x.task_id, x.data, x.modeled_size, x.decompress_seconds,
            x.io_seconds, x.pieces,
        ) == (
            y.task_id, y.data, y.modeled_size, y.decompress_seconds,
            y.io_seconds, y.pieces,
        )
    assert _counters(a) == _counters(b)


@pytest.mark.parametrize("shards", [2, 3])
def test_batch_over_shards_is_byte_identical(seed, burst, shards) -> None:
    """Each shard's engine sees the same sub-sequence either way, so the
    whole deployment is byte-identical between the batch and per-task
    routers — including the owner map and busy-seconds accounting."""
    specs = ares_specs(
        64 * MiB * shards, 128 * MiB * shards, 4 * GiB * shards,
        nodes=2 * shards,
    )
    config = ShardConfig(shards=shards)
    ref = ShardedHCompress(specs, shard_config=config, seed=seed)
    seq = [ref.compress(**item) for item in burst]
    routed = ShardedHCompress(specs, shard_config=config, seed=seed)
    bat = routed.compress_batch(burst)

    assert [_schema_view(r) for r in seq] == [_schema_view(r) for r in bat]
    for ra, rb in zip(seq, bat):
        assert _piece_view(ra) == _piece_view(rb)
    assert ref._owners == routed._owners
    assert ref.busy_seconds == routed.busy_seconds
    for shard_id in range(shards):
        a = ref.engines[shard_id]
        b = routed.engines[shard_id]
        assert _counters(a) == _counters(b)
        assert (
            a.manager.catalog_snapshot() == b.manager.catalog_snapshot()
        )

    # batched reads route back to the owning shards identically
    ids = [item["task_id"] for item in burst]
    reads_a = [ref.decompress(tid) for tid in ids]
    reads_b = routed.decompress_batch(ids)
    for x, y in zip(reads_a, reads_b):
        assert (x.task_id, x.data, x.pieces) == (y.task_id, y.data, y.pieces)
    assert ref.busy_seconds == routed.busy_seconds
    ref.close()
    routed.close()


def test_batch_flush_during_template_defers_to_per_task(seed) -> None:
    """A feedback flush can fire during the record of the very task that
    would become a run template (pending hits the cadence on its
    observation). The sequential path replans the next task against the
    new model — invalidation + miss — so the run lane must refuse the
    stale template (``run_quota`` version check) instead of stretching
    its pre-flush plan over the run. Uses the default feedback cadence
    and an un-hinted buffer so retrains fire often, and chunked batches
    like ``hcompress stats --batch-size`` submits."""
    from repro.datagen import synthetic_buffer

    data = synthetic_buffer(
        "float64", "gamma", 64 * KiB, np.random.default_rng(0)
    )
    items = [
        {"data": data, "modeled_size": 1 * MiB, "task_id": f"stats-{i}"}
        for i in range(256)
    ]
    a = _engine(seed)
    for item in items:
        a.compress(item["data"], modeled_size=item["modeled_size"],
                   task_id=item["task_id"])
    b = _engine(seed)
    for start in range(0, len(items), 8):
        b.compress_batch([dict(item) for item in items[start:start + 8]])
    assert a.predictor.model_version > 1  # retrains actually happened
    assert _counters(a) == _counters(b)
    assert (
        a.manager.catalog_snapshot() == b.manager.catalog_snapshot()
    )


def test_batch_repeated_calls_extend_identically(seed, burst) -> None:
    """Splitting one burst into consecutive compress_batch calls leaves
    the same state as one call (the planner re-establishes per batch)."""
    a = _engine(seed)
    a.compress_batch(burst)
    b = _engine(seed)
    half = len(burst) // 2
    b.compress_batch(burst[:half])
    b.compress_batch(burst[half:])
    assert (
        a.manager.catalog_snapshot() == b.manager.catalog_snapshot()
    )
    assert _counters(a) == _counters(b)
