"""The interception facade: file-like API and the session context."""

from __future__ import annotations

import pytest

from repro.core import HCompress, HCompressFile, hcompress_session
from repro.errors import HCompressError


@pytest.fixture()
def engine(small_hierarchy, seed) -> HCompress:
    return HCompress(small_hierarchy, seed=seed)


class TestWriteRead:
    def test_write_then_read_in_order(self, engine, gamma_f64) -> None:
        chunks = [gamma_f64[:1000], gamma_f64[1000:5000], gamma_f64[5000:]]
        with HCompressFile(engine, "data.h5", "w") as fh:
            for chunk in chunks:
                fh.write(chunk)
        reader = HCompressFile(engine, "data.h5", "r")
        assert reader.read_all() == chunks

    def test_read_returns_none_at_eof(self, engine, gamma_f64) -> None:
        HCompressFile(engine, "f", "w").write(gamma_f64)
        reader = HCompressFile(engine, "f", "r")
        assert reader.read() == gamma_f64
        assert reader.read() is None

    def test_iteration(self, engine, gamma_f64) -> None:
        writer = HCompressFile(engine, "f", "w")
        writer.write(gamma_f64[:500])
        writer.write(gamma_f64[500:1000])
        assert list(HCompressFile(engine, "f", "r")) == [
            gamma_f64[:500], gamma_f64[500:1000]
        ]

    def test_write_returns_modeled_bytes(self, engine, gamma_f64) -> None:
        fh = HCompressFile(engine, "f", "w")
        assert fh.write(gamma_f64, modeled_size=10 * len(gamma_f64)) == (
            10 * len(gamma_f64)
        )


class TestModes:
    def test_w_truncates(self, engine, gamma_f64) -> None:
        HCompressFile(engine, "f", "w").write(gamma_f64)
        HCompressFile(engine, "f", "w")  # reopen truncates
        assert HCompressFile(engine, "f", "r").read_all() == []

    def test_append_mode(self, engine, gamma_f64) -> None:
        HCompressFile(engine, "f", "w").write(gamma_f64[:100])
        HCompressFile(engine, "f", "a").write(gamma_f64[100:200])
        assert len(HCompressFile(engine, "f", "r").read_all()) == 2

    def test_read_missing_file(self, engine) -> None:
        with pytest.raises(HCompressError):
            HCompressFile(engine, "ghost", "r")

    def test_invalid_mode(self, engine) -> None:
        with pytest.raises(HCompressError):
            HCompressFile(engine, "f", "rw")

    def test_mode_enforcement(self, engine, gamma_f64) -> None:
        writer = HCompressFile(engine, "f", "w")
        writer.write(gamma_f64)
        with pytest.raises(HCompressError):
            writer.read()
        reader = HCompressFile(engine, "f", "r")
        with pytest.raises(HCompressError):
            reader.write(gamma_f64)

    def test_closed_file_rejects_io(self, engine, gamma_f64) -> None:
        fh = HCompressFile(engine, "f", "w")
        fh.close()
        with pytest.raises(HCompressError):
            fh.write(gamma_f64)


class TestSession:
    def test_session_finalizes_on_exit(self, small_hierarchy, seed,
                                       gamma_f64, tmp_path) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        path = tmp_path / "seed.json"
        with hcompress_session(engine, seed_path=path) as session:
            session.compress(gamma_f64)
        assert path.exists()
        with pytest.raises(HCompressError):
            engine.compress(gamma_f64)
