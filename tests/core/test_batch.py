"""Unit tests for the batched hot path's building blocks.

The end-to-end byte-identity guarantee lives in
``test_batch_equivalence.py``; this file pins the contracts of the
pieces it is assembled from: the feedback loop's bulk record, the
tier's all-or-nothing ``put_many``, batch input validation, and the
duplicate-task-id error surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccp import (
    CompressionCostPredictor,
    CostObservation,
    FeedbackLoop,
    ObservationKey,
)
from repro.core import HCompress
from repro.core.config import HCompressConfig
from repro.errors import (
    CapacityError,
    HCompressError,
    SchemaError,
    TierError,
    TierUnavailableError,
)
from repro.hcdp import IOTask
from repro.tiers import Tier, TierSpec, ares_hierarchy
from repro.units import KiB, MiB
from repro.workloads import vpic_sample
from repro.workloads.vpic import VPIC_HINTS


# -- FeedbackLoop.record_run --------------------------------------------------


def _loop(seed, every_n: int) -> FeedbackLoop:
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    return FeedbackLoop(predictor, every_n=every_n)


def _obs(seed, n: int) -> list[CostObservation]:
    del seed
    return [
        CostObservation(
            key=ObservationKey("float64", "binary", "gamma", "zlib", 65536),
            compress_mbps=30.0 + i,
            decompress_mbps=400.0,
            ratio=2.0,
        )
        for i in range(n)
    ]


@pytest.mark.parametrize("per_task,count", [(1, 5), (2, 3), (3, 1), (1, 0)])
def test_record_run_below_cadence_matches_per_record(
    seed, per_task: int, count: int
) -> None:
    observations = _obs(seed, per_task)
    bulk, loop = _loop(seed, every_n=64), _loop(seed, every_n=64)
    flushed = bulk.record_run(observations, count)
    ref = False
    for _ in range(count):
        for obs in observations:
            ref = loop.record(obs) or ref
    assert flushed == ref is False
    assert bulk.pending == loop.pending
    assert bulk.events == loop.events
    assert bulk._pending == loop._pending  # same objects, same order


def test_record_run_crossing_cadence_flushes_at_sequential_points(
    seed,
) -> None:
    observations = _obs(seed, 2)
    bulk, loop = _loop(seed, every_n=5), _loop(seed, every_n=5)
    assert bulk.record_run(observations, 4) is True
    ref = False
    for _ in range(4):
        for obs in observations:
            ref = loop.record(obs) or ref
    assert ref is True
    assert bulk.flushes == loop.flushes
    assert bulk.pending == loop.pending
    assert bulk.events == loop.events


# -- Tier.put_many ------------------------------------------------------------


def _tier(capacity=1 * MiB, name="t") -> Tier:
    return Tier(TierSpec(name=name, capacity=capacity, bandwidth=1e9,
                         latency=1e-6, lanes=2))


def test_put_many_matches_sequential_puts() -> None:
    batch, seq = _tier(), _tier()
    items = [(f"k{i}", None, 1000 + i) for i in range(8)]
    extents = batch.put_many(items)
    for key, payload, size in items:
        seq.put(key, payload, size)
    assert batch.used == seq.used
    assert extents == [seq.extent(key) for key, _, _ in items]


def test_put_many_stores_payloads() -> None:
    tier = _tier()
    items = [(f"k{i}", bytes([i]) * 100, None) for i in range(4)]
    tier.put_many(items)
    for key, payload, _ in items:
        assert tier.get(key) == payload
    # mixed payload/accounting batches take the per-item path
    tier.put_many([("m0", b"x" * 10, None), ("m1", None, 5)])
    assert tier.get("m0") == b"x" * 10
    assert tier.extent("m1").has_payload is False


@pytest.mark.parametrize(
    "items,error",
    [
        ([("a", None, 10), ("a", None, 10)], TierError),  # dup inside batch
        ([("held", None, 10)], TierError),  # dup against the tier
        ([("a", None, 10), ("b", None, None)], TierError),  # size required
        ([("a", None, 10), ("b", None, -1)], TierError),  # negative size
        ([("a", None, 2 * MiB)], CapacityError),  # total does not fit
    ],
)
def test_put_many_is_all_or_nothing(items, error) -> None:
    tier = _tier()
    tier.put("held", None, 10)
    used = tier.used
    with pytest.raises(error):
        tier.put_many(items)
    assert tier.used == used
    assert all(
        key == "held" or key not in tier for key, _, _ in items
    )


def test_put_many_unavailable_tier() -> None:
    tier = _tier()
    tier.set_available(False)
    with pytest.raises(TierUnavailableError):
        tier.put_many([("a", None, 10)])


def test_put_many_empty_batch() -> None:
    tier = _tier()
    assert tier.put_many([]) == []
    assert tier.used == 0


# -- compress_batch input contract -------------------------------------------


@pytest.fixture()
def engine(seed) -> HCompress:
    return HCompress(
        ares_hierarchy(16 * MiB, 32 * MiB, 256 * MiB, nodes=2),
        HCompressConfig(),
        seed=seed,
    )


def test_compress_batch_rejects_unknown_item_types(engine) -> None:
    with pytest.raises(HCompressError):
        engine.compress_batch([42])
    with pytest.raises(HCompressError):
        engine.compress_batch([{"data": b"x" * 64, "task": object()}])


def test_compress_batch_accepts_mixed_item_forms(engine) -> None:
    sample = vpic_sample(4 * KiB, np.random.default_rng(0))
    task = IOTask(
        task_id="t-task", size=4 * KiB,
        analysis=engine.analyzer.analyze(sample, VPIC_HINTS), data=sample,
    )
    results = engine.compress_batch(
        [sample, task, {"data": sample, "hints": VPIC_HINTS,
                        "task_id": "t-dict"}]
    )
    assert [r.task.task_id for r in results][1:] == ["t-task", "t-dict"]
    assert all(r.task.task_id in engine.manager for r in results)


def test_compress_batch_duplicate_id_raises_like_sequential(engine) -> None:
    sample = vpic_sample(4 * KiB, np.random.default_rng(0))
    spec = {"data": sample, "hints": VPIC_HINTS, "modeled_size": 64 * KiB}
    items = [dict(spec, task_id=f"dup.{i}") for i in range(6)]
    items.insert(4, dict(spec, task_id="dup.1"))  # repeats an earlier id
    with pytest.raises(SchemaError, match="already written"):
        engine.compress_batch(items)
    # everything before the duplicate landed, exactly like a loop would
    for i in range(4):
        assert f"dup.{i}" in engine.manager
