"""Storage Hardware Interface."""

from __future__ import annotations

import pytest

from repro.core import StorageHardwareInterface
from repro.errors import TierError


@pytest.fixture()
def shi(two_tier) -> StorageHardwareInterface:
    return StorageHardwareInterface(two_tier)


class TestWrite:
    def test_write_returns_receipt_with_modeled_time(self, shi) -> None:
        receipt = shi.write("k", "fast", b"x" * 1000)
        assert receipt.tier == "fast"
        assert receipt.nbytes == 1000
        fast = shi.hierarchy.by_name("fast").spec
        assert receipt.seconds == pytest.approx(fast.io_seconds(1000))

    def test_accounting_only_write(self, shi) -> None:
        receipt = shi.write("k", "slow", None, accounted_size=5000)
        assert receipt.nbytes == 5000
        assert shi.accounted_size("k") == 5000

    def test_piece_key_format(self) -> None:
        assert StorageHardwareInterface.piece_key("task7", 3) == "task7/3"


class TestRead:
    def test_read_finds_key_anywhere(self, shi) -> None:
        shi.write("a", "fast", b"fast bytes")
        shi.write("b", "slow", b"slow bytes")
        payload, receipt = shi.read("b")
        assert payload == b"slow bytes"
        assert receipt.tier == "slow"

    def test_read_missing_key(self, shi) -> None:
        with pytest.raises(TierError):
            shi.read("ghost")

    def test_locate(self, shi) -> None:
        shi.write("a", "fast", b"x")
        assert shi.locate("a").spec.name == "fast"
        assert shi.locate("ghost") is None


class TestDelete:
    def test_delete_releases_capacity(self, shi) -> None:
        shi.write("a", "fast", None, accounted_size=400)
        used_before = shi.hierarchy.by_name("fast").used
        assert shi.delete("a") == 400
        assert shi.hierarchy.by_name("fast").used == used_before - 400

    def test_delete_missing(self, shi) -> None:
        with pytest.raises(TierError):
            shi.delete("ghost")

    def test_accounted_size_missing(self, shi) -> None:
        with pytest.raises(TierError):
            shi.accounted_size("ghost")
