"""Storage Hardware Interface."""

from __future__ import annotations

import pytest

from repro.core import StorageHardwareInterface
from repro.core.config import ResilienceConfig
from repro.errors import (
    AllTiersUnavailableError,
    HCompressError,
    RetryExhaustedError,
    TierError,
    TierUnavailableError,
    TransientIOError,
)
from repro.tiers.device import Device


class FlakyDevice(Device):
    """Fails the first ``fail_n`` stores/loads with TransientIOError."""

    def __init__(self, inner, fail_stores: int = 0, fail_loads: int = 0):
        self.inner = inner
        self.fail_stores = fail_stores
        self.fail_loads = fail_loads

    def store(self, key, payload):
        if self.fail_stores > 0:
            self.fail_stores -= 1
            raise TransientIOError(f"flaky store of {key!r}")
        self.inner.store(key, payload)

    def load(self, key):
        if self.fail_loads > 0:
            self.fail_loads -= 1
            raise TransientIOError(f"flaky load of {key!r}")
        return self.inner.load(key)

    def delete(self, key):
        self.inner.delete(key)

    def __contains__(self, key):
        return key in self.inner

    def keys(self):
        return self.inner.keys()


@pytest.fixture()
def shi(two_tier) -> StorageHardwareInterface:
    return StorageHardwareInterface(two_tier)


class TestWrite:
    def test_write_returns_receipt_with_modeled_time(self, shi) -> None:
        receipt = shi.write("k", "fast", b"x" * 1000)
        assert receipt.tier == "fast"
        assert receipt.nbytes == 1000
        fast = shi.hierarchy.by_name("fast").spec
        assert receipt.seconds == pytest.approx(fast.io_seconds(1000))

    def test_accounting_only_write(self, shi) -> None:
        receipt = shi.write("k", "slow", None, accounted_size=5000)
        assert receipt.nbytes == 5000
        assert shi.accounted_size("k") == 5000

    def test_piece_key_format(self) -> None:
        assert StorageHardwareInterface.piece_key("task7", 3) == "task7/3"


class TestRead:
    def test_read_finds_key_anywhere(self, shi) -> None:
        shi.write("a", "fast", b"fast bytes")
        shi.write("b", "slow", b"slow bytes")
        payload, receipt = shi.read("b")
        assert payload == b"slow bytes"
        assert receipt.tier == "slow"

    def test_read_missing_key(self, shi) -> None:
        with pytest.raises(TierError):
            shi.read("ghost")

    def test_locate(self, shi) -> None:
        shi.write("a", "fast", b"x")
        assert shi.locate("a").spec.name == "fast"
        assert shi.locate("ghost") is None


class TestRetry:
    def test_transient_store_error_retried(self, two_tier) -> None:
        fast = two_tier.by_name("fast")
        fast.device = FlakyDevice(fast.device, fail_stores=2)
        shi = StorageHardwareInterface(two_tier)
        receipt = shi.write("k", "fast", b"payload")
        assert receipt.tier == "fast"
        assert receipt.retries == 2
        assert shi.stats.retries == 2
        assert receipt.seconds > fast.spec.io_seconds(7)  # backoff charged

    def test_backoff_reported_through_on_wait(self, two_tier) -> None:
        fast = two_tier.by_name("fast")
        fast.device = FlakyDevice(fast.device, fail_stores=1)
        waits: list[float] = []
        shi = StorageHardwareInterface(two_tier, on_wait=waits.append)
        shi.write("k", "fast", b"x")
        assert len(waits) == 1
        assert waits[0] == pytest.approx(shi.stats.backoff_seconds)

    def test_backoff_deterministic_for_seed(self, two_tier) -> None:
        policy = ResilienceConfig(jitter_seed=99)
        durations = []
        for _ in range(2):
            hierarchy = two_tier
            shi = StorageHardwareInterface(hierarchy, resilience=policy)
            import random

            rng = random.Random(policy.jitter_seed)
            durations.append(
                [policy.backoff_seconds(a, rng) for a in (1, 2, 3)]
            )
        assert durations[0] == durations[1]
        assert durations[0][0] < durations[0][1] < durations[0][2]

    def test_retry_budget_exhausts_to_next_candidate(self, two_tier) -> None:
        fast = two_tier.by_name("fast")
        fast.device = FlakyDevice(fast.device, fail_stores=100)
        shi = StorageHardwareInterface(two_tier)
        receipt = shi.write("k", "fast", b"x")
        assert receipt.tier == "slow"  # failed over past the flaky tier
        assert receipt.failover
        assert shi.stats.exhausted == 1

    def test_exhaustion_everywhere_raises(self, two_tier) -> None:
        for tier in two_tier:
            tier.device = FlakyDevice(tier.device, fail_stores=100)
        shi = StorageHardwareInterface(two_tier)
        with pytest.raises(RetryExhaustedError):
            shi.write("k", "fast", b"x")

    def test_read_retries_transient_load(self, two_tier) -> None:
        shi = StorageHardwareInterface(two_tier)
        shi.write("k", "fast", b"data")
        fast = two_tier.by_name("fast")
        fast.device = FlakyDevice(fast.device, fail_loads=1)
        payload, receipt = shi.read("k")
        assert payload == b"data"
        assert receipt.retries == 1

    def test_read_survives_outage_healed_during_backoff(self, two_tier) -> None:
        shi = StorageHardwareInterface(two_tier)
        shi.write("k", "fast", b"data")
        fast = two_tier.by_name("fast")
        fast.set_available(False)
        shi.on_wait = lambda _s: fast.set_available(True)  # recovery fires
        payload, receipt = shi.read("k")
        assert payload == b"data"
        assert receipt.retries == 1

    def test_read_outage_exhausts_to_tier_unavailable(self, two_tier) -> None:
        shi = StorageHardwareInterface(two_tier)
        shi.write("k", "fast", b"data")
        two_tier.by_name("fast").set_available(False)
        with pytest.raises(TierUnavailableError):
            shi.read("k")


class TestFailover:
    def test_down_tier_fails_over(self, two_tier) -> None:
        two_tier.by_name("fast").set_available(False)
        shi = StorageHardwareInterface(two_tier)
        receipt = shi.write("k", "fast", b"x")
        assert receipt.tier == "slow"
        assert receipt.failover
        assert shi.stats.failovers == 1
        assert ("unplaceable", "k", "fast", "TierUnavailableError") in (
            shi.stats.trace
        )

    def test_full_tier_fails_over(self, two_tier) -> None:
        shi = StorageHardwareInterface(two_tier)
        two_tier.by_name("fast").put("fill", None, accounted_size=2**20)
        receipt = shi.write("k", "fast", b"x")
        assert receipt.tier == "slow"
        assert receipt.failover

    def test_failover_disabled_raises(self, two_tier) -> None:
        two_tier.by_name("fast").set_available(False)
        shi = StorageHardwareInterface(
            two_tier, resilience=ResilienceConfig(failover=False)
        )
        with pytest.raises(TierUnavailableError):
            shi.write("k", "fast", b"x")

    def test_failover_prefers_lower_tiers(self) -> None:
        from repro.tiers import StorageHierarchy, Tier, TierSpec

        specs = [
            TierSpec(name="a", capacity=1000, bandwidth=1e9, latency=0),
            TierSpec(name="b", capacity=1000, bandwidth=1e9, latency=0),
            TierSpec(name="c", capacity=None, bandwidth=1e8, latency=0),
        ]
        hierarchy = StorageHierarchy([Tier(s) for s in specs])
        hierarchy.by_name("b").set_available(False)
        shi = StorageHardwareInterface(hierarchy)
        receipt = shi.write("k", "b", b"x")
        assert receipt.tier == "c"  # below first, not "a" above


class TestDelete:
    def test_delete_releases_capacity(self, shi) -> None:
        shi.write("a", "fast", None, accounted_size=400)
        used_before = shi.hierarchy.by_name("fast").used
        assert shi.delete("a") == 400
        assert shi.hierarchy.by_name("fast").used == used_before - 400

    def test_delete_missing(self, shi) -> None:
        with pytest.raises(TierError):
            shi.delete("ghost")

    def test_accounted_size_missing(self, shi) -> None:
        with pytest.raises(TierError):
            shi.accounted_size("ghost")


class TestAllTiersDown:
    """A hierarchy-wide outage must surface as one typed error, not a
    hang, an unbounded retry storm, or whichever tier failed last."""

    def test_every_tier_down_raises_typed_error(self, two_tier) -> None:
        for tier in two_tier:
            tier.set_available(False)
        shi = StorageHardwareInterface(
            two_tier, resilience=ResilienceConfig(max_retries=2, failover=True)
        )
        with pytest.raises(AllTiersUnavailableError) as excinfo:
            shi.write("k", "fast", b"x" * 100)
        # The typed error slots into the existing handler families.
        assert isinstance(excinfo.value, TierUnavailableError)
        assert isinstance(excinfo.value, HCompressError)
        assert ("all_tiers_unavailable", "k") in shi.stats.trace

    def test_retry_budget_is_bounded_per_tier(self, two_tier) -> None:
        attempts = []

        class CountingDownDevice(Device):
            def __init__(self, name):
                self.name = name

            def store(self, key, payload):
                attempts.append(self.name)
                raise TierUnavailableError(f"{self.name} is down")

            def load(self, key):
                raise TierUnavailableError(f"{self.name} is down")

            def delete(self, key):
                pass

            def __contains__(self, key):
                return False

            def keys(self):
                return []

        for tier in two_tier:
            tier.device = CountingDownDevice(tier.spec.name)
        shi = StorageHardwareInterface(
            two_tier, resilience=ResilienceConfig(max_retries=3, failover=True)
        )
        with pytest.raises(AllTiersUnavailableError):
            shi.write("k", "fast", b"x")
        # Unavailability is not retryable: one probe per candidate tier.
        assert attempts == ["fast", "slow"]

    def test_all_transient_exhaustion_stays_retry_exhausted(
        self, two_tier
    ) -> None:
        # When every tier fails *transiently*, the caller should see the
        # retry story (RetryExhaustedError), not an outage verdict.
        for tier in two_tier:
            tier.device = FlakyDevice(tier.device, fail_stores=99)
        shi = StorageHardwareInterface(
            two_tier,
            resilience=ResilienceConfig(max_retries=2, failover=True),
        )
        with pytest.raises(RetryExhaustedError):
            shi.write("k", "fast", b"x")
