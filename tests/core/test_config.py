"""HCompressConfig validation."""

from __future__ import annotations

import pytest

from repro.core import HCompressConfig
from repro.hcdp import EQUAL


class TestDefaults:
    def test_paper_defaults(self) -> None:
        config = HCompressConfig()
        assert config.priority is EQUAL
        assert config.feedback_every_n == 16
        assert config.grain == 4096
        assert len(config.libraries) == 11

    def test_frozen(self) -> None:
        with pytest.raises(AttributeError):
            HCompressConfig().grain = 8192  # type: ignore[misc]


class TestValidation:
    def test_feedback_cadence(self) -> None:
        with pytest.raises(ValueError):
            HCompressConfig(feedback_every_n=0)

    def test_grain(self) -> None:
        with pytest.raises(ValueError):
            HCompressConfig(grain=0)

    def test_load_factor(self) -> None:
        with pytest.raises(ValueError):
            HCompressConfig(load_factor=-0.5)

    def test_drain_penalty(self) -> None:
        with pytest.raises(ValueError):
            HCompressConfig(drain_penalty=-1.0)

    def test_python_to_native(self) -> None:
        with pytest.raises(ValueError):
            HCompressConfig(python_to_native=0.0)
