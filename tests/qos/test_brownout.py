"""Brownout ladder: one rung per move, hysteresis, deterministic trace."""

from __future__ import annotations

from repro.qos import BrownoutController, BrownoutLevel, QosClass, QosConfig


def _controller(**kwargs) -> BrownoutController:
    base = dict(
        enabled=True,
        brownout_high=0.85,
        brownout_low=0.60,
        brownout_dwell=0.25,
    )
    base.update(kwargs)
    return BrownoutController(QosConfig(**base))


class TestLadder:
    def test_starts_normal(self) -> None:
        ctl = _controller()
        assert ctl.level == BrownoutLevel.NORMAL
        assert ctl.codec_filter() is None
        assert ctl.shed_floor() is None

    def test_escalates_one_rung_per_dwell(self) -> None:
        ctl = _controller()
        assert ctl.update(0.95, now=0.0) == BrownoutLevel.PREFER_FAST
        # Inside the dwell window: pinned even under max pressure.
        assert ctl.update(1.0, now=0.1) == BrownoutLevel.PREFER_FAST
        assert ctl.update(1.0, now=0.3) == BrownoutLevel.SKIP_COMPRESSION
        assert ctl.update(1.0, now=0.6) == BrownoutLevel.SHED_LOW
        # Top rung: no further escalation.
        assert ctl.update(1.0, now=1.0) == BrownoutLevel.SHED_LOW

    def test_hysteresis_band_holds_level(self) -> None:
        ctl = _controller()
        ctl.update(0.9, now=0.0)
        # Between low and high: neither escalate nor recover.
        assert ctl.update(0.7, now=1.0) == BrownoutLevel.PREFER_FAST
        assert ctl.update(0.84, now=2.0) == BrownoutLevel.PREFER_FAST

    def test_recovers_one_rung_at_low_pressure(self) -> None:
        ctl = _controller()
        for t in (0.0, 0.3, 0.6):
            ctl.update(1.0, now=t)
        assert ctl.level == BrownoutLevel.SHED_LOW
        assert ctl.update(0.1, now=1.0) == BrownoutLevel.SKIP_COMPRESSION
        assert ctl.update(0.1, now=1.3) == BrownoutLevel.PREFER_FAST
        assert ctl.update(0.1, now=1.6) == BrownoutLevel.NORMAL

    def test_disabled_never_moves(self) -> None:
        ctl = _controller(brownout_enabled=False)
        assert ctl.update(1.0, now=0.0) == BrownoutLevel.NORMAL
        assert ctl.trace == []


class TestRungEffects:
    def test_codec_filter_per_rung(self) -> None:
        ctl = _controller()
        ctl.update(1.0, now=0.0)
        assert ctl.codec_filter() == "fastest"
        ctl.update(1.0, now=0.5)
        assert ctl.codec_filter() == "none"
        ctl.update(1.0, now=1.0)
        assert ctl.codec_filter() == "none"  # SHED_LOW keeps identity-only

    def test_shed_floor_only_at_top_rung(self) -> None:
        ctl = _controller()
        for t in (0.0, 0.3):
            ctl.update(1.0, now=t)
        assert ctl.shed_floor() is None
        ctl.update(1.0, now=0.6)
        assert ctl.shed_floor() == QosClass.INTERACTIVE


class TestTrace:
    def test_moves_are_traced_deterministically(self) -> None:
        traces = []
        for _ in range(2):
            ctl = _controller()
            for t, p in ((0.0, 1.0), (0.3, 1.0), (1.0, 0.1)):
                ctl.update(p, now=t)
            traces.append(tuple(ctl.trace))
        assert traces[0] == traces[1]
        assert [(e[2], e[3]) for e in traces[0]] == [(0, 1), (1, 2), (2, 1)]

    def test_restore_round_trip(self) -> None:
        ctl = _controller()
        ctl.update(1.0, now=0.0)
        raw = ctl.export_state()
        fresh = _controller()
        fresh.restore_state(raw, now=4.0)
        assert fresh.level == BrownoutLevel.PREFER_FAST
        assert fresh.transitions == 1
        # Dwell anchored at restore time: no instant move.
        assert fresh.update(1.0, now=4.1) == BrownoutLevel.PREFER_FAST
        assert fresh.update(1.0, now=4.4) == BrownoutLevel.SKIP_COMPRESSION
