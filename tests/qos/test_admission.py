"""Admission control: backlog model, class-aware shedding, determinism."""

from __future__ import annotations

import pytest

from repro.errors import TaskShedError
from repro.qos import AdmissionController, QosClass, QosConfig
from repro.units import KiB


def _config(**kwargs) -> QosConfig:
    base = dict(
        enabled=True,
        max_backlog_bytes=10 * KiB,
        shed_soft_fill=0.5,
        shed_seed=7,
    )
    base.update(kwargs)
    return QosConfig(**base)


def _controller(**kwargs) -> AdmissionController:
    return AdmissionController(_config(**kwargs), drain_bytes_per_s=1 * KiB)


class TestBacklog:
    def test_below_soft_fill_admits_everything(self) -> None:
        ctl = _controller()
        ctl.admit("t0", 4 * KiB, QosClass.BEST_EFFORT, now=0.0)
        assert ctl.admitted == 1 and ctl.shed == 0
        assert ctl.backlog_bytes == 4 * KiB

    def test_backlog_drains_at_modeled_rate(self) -> None:
        ctl = _controller()
        ctl.admit("t0", 4 * KiB, QosClass.BATCH, now=0.0)
        assert ctl.fill(2.0) == pytest.approx((2 * KiB) / (10 * KiB))
        assert ctl.fill(100.0) == 0.0  # never negative

    def test_hard_overload_sheds(self) -> None:
        ctl = _controller()
        ctl.admit("t0", 9 * KiB, QosClass.CRITICAL, now=0.0)
        with pytest.raises(TaskShedError) as info:
            ctl.admit("t1", 4 * KiB, QosClass.BEST_EFFORT, now=0.0)
        assert info.value.reason == "overload"
        assert info.value.qos_class == int(QosClass.BEST_EFFORT)
        # A shed task adds nothing to the backlog.
        assert ctl.backlog_bytes == 9 * KiB

    def test_protected_class_never_shed(self) -> None:
        ctl = _controller()
        for i in range(8):  # far past fill = 1
            ctl.admit(f"t{i}", 8 * KiB, QosClass.INTERACTIVE, now=0.0)
            ctl.admit(f"c{i}", 8 * KiB, QosClass.CRITICAL, now=0.0)
        assert ctl.shed == 0


class TestSoftBand:
    def test_lower_classes_shed_more(self) -> None:
        """In the soft band the shed probability is excess**(1+class), so
        over many draws class 0 sheds strictly more than class 1."""
        sheds = {0: 0, 1: 0}
        for cls in (QosClass.BEST_EFFORT, QosClass.BATCH):
            ctl = _controller()
            for i in range(200):
                # Hold fill around 0.8: drain 1 KiB then offer 1 KiB.
                ctl.backlog_bytes = 7.5 * KiB
                try:
                    ctl.admit(f"t{i}", 1 * KiB, cls, now=float(i))
                except TaskShedError:
                    sheds[int(cls)] += 1
        assert sheds[0] > sheds[1] > 0

    def test_shed_trace_replays_with_seed(self) -> None:
        traces = []
        for _ in range(2):
            ctl = _controller()
            for i in range(50):
                ctl.backlog_bytes = 8 * KiB
                try:
                    ctl.admit(f"t{i}", 1 * KiB, QosClass.BEST_EFFORT,
                              now=float(i))
                except TaskShedError:
                    pass
            traces.append(tuple(ctl.trace))
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0
        kind, at, task_id, cls, reason, fill = traces[0][0]
        assert kind == "shed" and reason in ("pressure", "overload")

    def test_different_seed_different_lottery(self) -> None:
        outcomes = []
        for shed_seed in (1, 2):
            ctl = _controller(shed_seed=shed_seed)
            decisions = []
            for i in range(50):
                ctl.backlog_bytes = 8 * KiB
                try:
                    ctl.admit(f"t{i}", 1 * KiB, QosClass.BEST_EFFORT,
                              now=float(i))
                    decisions.append(True)
                except TaskShedError:
                    decisions.append(False)
            outcomes.append(decisions)
        assert outcomes[0] != outcomes[1]


class TestBrownoutFloor:
    def test_floor_rejects_below_protected(self) -> None:
        ctl = _controller()
        with pytest.raises(TaskShedError) as info:
            ctl.admit("t0", 1 * KiB, QosClass.BATCH, now=0.0,
                      floor=QosClass.INTERACTIVE)
        assert info.value.reason == "brownout"

    def test_floor_admits_at_or_above(self) -> None:
        ctl = _controller()
        ctl.admit("t0", 1 * KiB, QosClass.INTERACTIVE, now=0.0,
                  floor=QosClass.INTERACTIVE)
        assert ctl.admitted == 1


class TestRestore:
    def test_counters_round_trip(self) -> None:
        ctl = _controller()
        # Protected class: fills the backlog without risking the lottery.
        ctl.admit("t0", 8 * KiB, QosClass.CRITICAL, now=0.0)
        with pytest.raises(TaskShedError):
            ctl.admit("t1", 8 * KiB, QosClass.BEST_EFFORT, now=0.0)
        raw = ctl.export_state()
        fresh = _controller()
        fresh.restore_state(raw, now=5.0)
        assert fresh.admitted == 1 and fresh.shed == 1
        assert fresh.shed_by_class == {int(QosClass.BEST_EFFORT): 1}
        assert fresh.backlog_bytes == pytest.approx(8 * KiB)
        # The drain anchor moved to the restore instant, not t=0.
        assert fresh.fill(6.0) == pytest.approx((7 * KiB) / (10 * KiB))
