"""Tenant-scoped QoS: class mapping, per-tenant quotas, governor wiring."""

from __future__ import annotations

import pytest

from repro.errors import TaskShedError
from repro.qos import AdmissionController, QosClass, QosConfig
from repro.qos.governor import QosGovernor
from repro.tiers import StorageHierarchy, ares_specs
from repro.units import KiB, MiB


def _config(**kwargs) -> QosConfig:
    base = dict(
        enabled=True,
        max_backlog_bytes=10 * KiB,
        shed_soft_fill=0.5,
        shed_seed=7,
    )
    base.update(kwargs)
    return QosConfig(**base)


class TestTenantClasses:
    def test_mapped_tenant_gets_its_class(self) -> None:
        config = _config(
            tenant_classes=(("vip", QosClass.INTERACTIVE),),
            default_class=QosClass.BEST_EFFORT,
        )
        assert config.class_for_tenant("vip") == QosClass.INTERACTIVE
        assert config.class_for_tenant("other") == QosClass.BEST_EFFORT
        assert config.class_for_tenant(None) == QosClass.BEST_EFFORT

    def test_duplicate_tenant_mapping_rejected(self) -> None:
        with pytest.raises(ValueError, match="mapped twice"):
            _config(
                tenant_classes=(
                    ("a", QosClass.BATCH), ("a", QosClass.CRITICAL),
                )
            )

    def test_malformed_mapping_rejected(self) -> None:
        with pytest.raises(ValueError, match="pairs"):
            _config(tenant_classes=(("a",),))

    def test_quota_fraction_bounds(self) -> None:
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            _config(tenant_quota_fraction=0.0)
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            _config(tenant_quota_fraction=1.5)
        assert _config(tenant_quota_fraction=1.0).tenant_quota_fraction == 1.0


class TestTenantQuota:
    def _controller(self, **kwargs) -> AdmissionController:
        return AdmissionController(
            _config(tenant_quota_fraction=0.3, **kwargs),
            drain_bytes_per_s=1 * KiB,
        )

    def test_storming_tenant_hits_its_quota(self) -> None:
        ctl = self._controller()
        ctl.admit("t0", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        with pytest.raises(TaskShedError) as info:
            ctl.admit("t1", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        assert info.value.reason == "tenant-quota"
        assert ctl.shed_by_tenant == {"noisy": 1}

    def test_other_tenants_keep_their_slice(self) -> None:
        """The quota isolates the storm: a quiet tenant admits at the
        same fill where the noisy tenant is shed."""
        ctl = self._controller()
        ctl.admit("t0", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        with pytest.raises(TaskShedError):
            ctl.admit("t1", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        ctl.admit("t2", 2 * KiB, QosClass.BATCH, now=0.0, tenant="quiet")
        assert ctl.tenant_bytes == {"noisy": 2 * KiB, "quiet": 2 * KiB}

    def test_protected_class_exempt_from_quota(self) -> None:
        ctl = self._controller()
        for i in range(3):
            ctl.admit(
                f"t{i}", 2 * KiB, QosClass.CRITICAL, now=0.0, tenant="vip"
            )
        assert ctl.shed == 0

    def test_tenant_share_drains_with_the_queue(self) -> None:
        ctl = self._controller()
        ctl.admit("t0", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        # Half the backlog drains; the tenant's share halves with it.
        assert ctl.fill(1.0) == pytest.approx(0.1)
        assert ctl.tenant_bytes["noisy"] == pytest.approx(1 * KiB)
        ctl.admit("t1", 2 * KiB, QosClass.BATCH, now=1.0, tenant="noisy")

    def test_quota_state_survives_export_restore(self) -> None:
        ctl = self._controller()
        ctl.admit("t0", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        with pytest.raises(TaskShedError):
            ctl.admit("t1", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")
        fresh = self._controller()
        fresh.restore_state(ctl.export_state(), now=0.0)
        assert fresh.tenant_bytes == ctl.tenant_bytes
        assert fresh.shed_by_tenant == {"noisy": 1}
        with pytest.raises(TaskShedError, match="tenant-quota"):
            fresh.admit("t2", 2 * KiB, QosClass.BATCH, now=0.0, tenant="noisy")

    def test_no_quota_no_tenant_accounting(self) -> None:
        ctl = AdmissionController(_config(), drain_bytes_per_s=1 * KiB)
        ctl.admit("t0", 4 * KiB, QosClass.BATCH, now=0.0, tenant="a")
        assert ctl.tenant_bytes == {}


class TestGovernorWiring:
    def _governor(self, **kwargs) -> QosGovernor:
        specs = ares_specs(16 * MiB, 32 * MiB, 256 * MiB, nodes=2)
        return QosGovernor(
            _config(**kwargs), StorageHierarchy.from_specs(specs)
        )

    def test_tenant_class_applies_when_no_explicit_class(self) -> None:
        gov = self._governor(
            tenant_classes=(("vip", QosClass.CRITICAL),),
            default_class=QosClass.BEST_EFFORT,
        )
        # Past hard overload: best-effort sheds, the vip tenant's
        # configured CRITICAL class sails through.
        gov.admission.backlog_bytes = 11 * KiB
        with pytest.raises(TaskShedError):
            gov.admit("t0", 1 * KiB, None, tenant="anon")
        gov.admit("t1", 1 * KiB, None, tenant="vip")

    def test_explicit_class_beats_tenant_mapping(self) -> None:
        gov = self._governor(tenant_classes=(("vip", QosClass.CRITICAL),))
        gov.admission.backlog_bytes = 11 * KiB
        with pytest.raises(TaskShedError) as info:
            gov.admit("t0", 1 * KiB, QosClass.BEST_EFFORT, tenant="vip")
        assert info.value.qos_class == int(QosClass.BEST_EFFORT)

    def test_quota_threads_through_the_governor(self) -> None:
        gov = self._governor(tenant_quota_fraction=0.3)
        gov.admit("t0", 2 * KiB, QosClass.BATCH, tenant="noisy")
        with pytest.raises(TaskShedError, match="tenant-quota"):
            gov.admit("t1", 2 * KiB, QosClass.BATCH, tenant="noisy")
        assert gov.admission.shed_by_tenant == {"noisy": 1}
