"""The QoS governor wired through a live engine: admission, deadlines,
breakers, checkpoint/restore, and the disabled-is-identical guarantee."""

from __future__ import annotations

import pytest

from repro.core import HCompress, HCompressConfig
from repro.core.config import ObservabilityConfig, RecoveryConfig
from repro.errors import DeadlineExceededError, TaskShedError
from repro.qos import QosClass, QosConfig
from repro.qos.breaker import OPEN
from repro.tiers import ares_hierarchy
from repro.units import KiB, MiB


def _hierarchy():
    return ares_hierarchy(
        ram_capacity=4 * MiB, nvme_capacity=8 * MiB, bb_capacity=64 * MiB,
        nodes=2,
    )


def _qos(**kwargs) -> QosConfig:
    base = dict(enabled=True)
    base.update(kwargs)
    return QosConfig(**base)


class TestDisabled:
    def test_no_governor_constructed(self, small_hierarchy, seed) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        assert engine.qos is None

    def test_disabled_runs_are_byte_identical(self, seed, gamma_f64) -> None:
        """With QoS off, two fresh engines produce identical schemas,
        stored bytes, and catalogs — the subsystem leaves no trace."""
        snapshots = []
        for _ in range(2):
            engine = HCompress(_hierarchy(), seed=seed)
            results = [
                engine.compress(gamma_f64, task_id=f"t{i}")
                for i in range(3)
            ]
            snapshots.append((
                [tuple((p.codec, p.tier) for p in r.schema.pieces)
                 for r in results],
                [r.total_stored for r in results],
                engine.manager.catalog_snapshot(),
            ))
        assert snapshots[0] == snapshots[1]

    def test_empty_constraints_share_the_plan_cache(self, small_hierarchy,
                                                    seed, gamma_f64) -> None:
        """Explicit no-op constraints hash to the same cache key as the
        constraint-free call — the disabled path costs nothing."""
        engine = HCompress(small_hierarchy, seed=seed)
        result = engine.compress(gamma_f64, task_id="warm")
        before = engine.engine.stats.plan_cache_hits
        engine.engine.plan(result.task, blocked_tiers=(), codec_filter=None)
        assert engine.engine.stats.plan_cache_hits == before + 1


class TestAdmission:
    def test_overload_sheds_typed(self, seed, gamma_f64) -> None:
        config = HCompressConfig(qos=_qos(
            max_backlog_bytes=96 * KiB,
            drain_bytes_per_s=1.0,  # effectively no drain
            shed_soft_fill=0.9,
        ))
        engine = HCompress(_hierarchy(), config, seed=seed)
        assert engine.qos is not None
        with pytest.raises(TaskShedError) as info:
            for i in range(4):  # 64 KiB each: the second crosses fill > 1
                engine.compress(gamma_f64, task_id=f"t{i}",
                                qos_class=QosClass.BEST_EFFORT)
        assert info.value.reason == "overload"
        assert info.value.qos_class == int(QosClass.BEST_EFFORT)

    def test_shed_task_leaves_no_state(self, seed, gamma_f64) -> None:
        config = HCompressConfig(qos=_qos(
            max_backlog_bytes=96 * KiB, drain_bytes_per_s=1.0,
            shed_soft_fill=0.9,
        ))
        engine = HCompress(_hierarchy(), config, seed=seed)
        shed_ids = []
        for i in range(4):
            try:
                engine.compress(gamma_f64, task_id=f"t{i}",
                                qos_class=QosClass.BEST_EFFORT)
            except TaskShedError:
                shed_ids.append(f"t{i}")
        assert shed_ids
        for task_id in shed_ids:
            assert task_id not in engine.manager

    def test_protected_class_rides_through(self, seed, gamma_f64) -> None:
        config = HCompressConfig(qos=_qos(
            max_backlog_bytes=96 * KiB, drain_bytes_per_s=1.0,
            shed_soft_fill=0.9,
        ))
        engine = HCompress(_hierarchy(), config, seed=seed)
        for i in range(4):
            engine.compress(gamma_f64, task_id=f"t{i}",
                            qos_class=QosClass.INTERACTIVE)
        assert engine.qos.admission.shed == 0


class TestDeadline:
    def test_impossible_write_deadline_raises(self, seed, gamma_f64) -> None:
        engine = HCompress(_hierarchy(), seed=seed)  # QoS off: still honoured
        with pytest.raises(DeadlineExceededError):
            engine.compress(gamma_f64, task_id="rushed", deadline=1e-12)
        assert "rushed" not in engine.manager

    def test_impossible_read_deadline_raises(self, seed, gamma_f64) -> None:
        engine = HCompress(_hierarchy(), seed=seed)
        engine.compress(gamma_f64, task_id="t0")
        with pytest.raises(DeadlineExceededError):
            engine.decompress("t0", deadline=1e-12)
        # The data itself is untouched by the failed read.
        assert engine.decompress("t0").data == gamma_f64

    def test_generous_deadline_completes(self, seed, gamma_f64) -> None:
        engine = HCompress(_hierarchy(), seed=seed)
        result = engine.compress(gamma_f64, task_id="t0", deadline=60.0)
        assert result.total_stored > 0
        assert engine.decompress("t0", deadline=60.0).data == gamma_f64

    def test_default_deadline_from_config(self, seed, gamma_f64) -> None:
        config = HCompressConfig(qos=_qos(default_deadline=1e-12))
        engine = HCompress(_hierarchy(), config, seed=seed)
        with pytest.raises(DeadlineExceededError):
            engine.compress(gamma_f64, task_id="t0",
                            qos_class=QosClass.CRITICAL)
        assert engine.qos.deadline_exceeded == 1

    def test_explicit_deadline_overrides_default(self, seed,
                                                 gamma_f64) -> None:
        config = HCompressConfig(qos=_qos(default_deadline=1e-12))
        engine = HCompress(_hierarchy(), config, seed=seed)
        result = engine.compress(gamma_f64, task_id="t0", deadline=60.0,
                                 qos_class=QosClass.CRITICAL)
        assert result.total_stored > 0


class TestBreakerIntegration:
    def test_open_breaker_blocks_planning_and_flusher(self, seed) -> None:
        config = HCompressConfig(qos=_qos())
        engine = HCompress(_hierarchy(), config, seed=seed)
        board = engine.qos.breakers
        now = engine.qos.now()
        for _ in range(3):
            board.record("nvme", False, now)
        assert "nvme" in engine.qos.quarantined_tiers()
        assert engine.qos.tier_quarantined("nvme")
        assert not engine.qos.tier_quarantined("ram")

    def test_quarantined_tier_excluded_from_plans(self, seed,
                                                  gamma_f64) -> None:
        config = HCompressConfig(qos=_qos())
        engine = HCompress(_hierarchy(), config, seed=seed)
        now = engine.qos.now()
        for _ in range(3):
            engine.qos.breakers.record("ram", False, now)
        result = engine.compress(gamma_f64, task_id="t0")
        assert all(p.tier != "ram" for p in result.schema.pieces)


class TestCheckpointRestore:
    def test_breaker_open_survives_restart_conservatively(
        self, seed, gamma_f64, tmp_path
    ) -> None:
        """Checkpoint while a breaker is open (even mid-probe): the
        restored engine must keep the tier quarantined, never resurrect
        it healthy."""
        config = HCompressConfig(
            qos=_qos(),
            recovery=RecoveryConfig(enabled=True, directory=str(tmp_path),
                                    fsync=False),
        )
        hierarchy = _hierarchy()
        engine = HCompress(hierarchy, config, seed=seed)
        engine.compress(gamma_f64, task_id="t0")
        board = engine.qos.breakers
        now = engine.qos.now()
        for _ in range(3):
            board.record("nvme", False, now)
        # Start a half-open probe, then checkpoint mid-probe.
        board.allow("nvme", now + 10.0)
        assert board.breakers["nvme"].state != OPEN
        engine.checkpoint()

        restored = HCompress.restore(tmp_path, hierarchy, config=config,
                                     seed=seed)
        assert restored.qos is not None
        assert restored.qos.breakers.breakers["nvme"].state == OPEN
        assert restored.qos.tier_quarantined("nvme")
        # Counters travelled too.
        assert restored.qos.admission.admitted == 1
        assert restored.decompress("t0").data == gamma_f64
        restored.close()

    def test_disabled_engine_restores_without_qos(self, seed, gamma_f64,
                                                  tmp_path) -> None:
        config = HCompressConfig(
            recovery=RecoveryConfig(enabled=True, directory=str(tmp_path),
                                    fsync=False),
        )
        hierarchy = _hierarchy()
        engine = HCompress(hierarchy, config, seed=seed)
        engine.compress(gamma_f64, task_id="t0")
        engine.checkpoint()
        restored = HCompress.restore(tmp_path, hierarchy, config=config,
                                     seed=seed)
        assert restored.qos is None
        assert restored.decompress("t0").data == gamma_f64
        restored.close()


class TestObservability:
    def test_qos_metrics_exported(self, seed, gamma_f64) -> None:
        config = HCompressConfig(
            qos=_qos(),
            observability=ObservabilityConfig(enabled=True),
        )
        engine = HCompress(_hierarchy(), config, seed=seed)
        engine.compress(gamma_f64, task_id="t0",
                        qos_class=QosClass.BATCH)
        exported = engine.sync_telemetry().export_metrics()["metrics"]
        assert "hcompress_qos_backlog_bytes" in exported
        assert "hcompress_qos_admission_admitted_total" in exported
        assert engine.obs.registry.value(
            "hcompress_qos_admitted_total", qos_class="BATCH"
        ) == 1
