"""Circuit breaker state machine: trip, quarantine, probe, backoff."""

from __future__ import annotations

import pytest

from repro.qos import BreakerBoard, CircuitBreaker, QosConfig
from repro.qos.breaker import CLOSED, HALF_OPEN, OPEN


def _config(**kwargs) -> QosConfig:
    base = dict(
        enabled=True,
        breaker_failure_threshold=3,
        breaker_window=1.0,
        breaker_open_seconds=0.25,
        breaker_backoff_factor=2.0,
        breaker_open_cap=1.0,
        breaker_probes=1,
    )
    base.update(kwargs)
    return QosConfig(**base)


def _trip(breaker: CircuitBreaker, at: float = 0.0) -> None:
    for i in range(breaker.config.breaker_failure_threshold):
        breaker.record_failure(at + i * 0.01)


class TestTrip:
    def test_closed_allows(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        assert breaker.allow(0.0)
        assert not breaker.blocked(0.0)

    def test_trips_at_threshold(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == CLOSED
        breaker.record_failure(0.2)
        assert breaker.state == OPEN
        assert breaker.blocked(0.25)
        assert not breaker.allow(0.25)

    def test_window_prunes_stale_failures(self) -> None:
        breaker = CircuitBreaker("ram", _config(breaker_window=0.5))
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_failure(1.0)  # first two are outside the window now
        assert breaker.state == CLOSED

    def test_successes_do_not_reset_window_failures(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        breaker.record_failure(0.0)
        breaker.record_success(0.05)
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == OPEN


class TestProbe:
    def test_blocked_is_non_mutating(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        _trip(breaker)
        after = 0.02 + 0.25 + 0.01  # past the quarantine window
        assert not breaker.blocked(after)  # probe would be allowed...
        assert breaker.state == OPEN  # ...but looking didn't grant it

    def test_allow_transitions_to_half_open(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        _trip(breaker)
        assert breaker.allow(0.5)
        assert breaker.state == HALF_OPEN
        # Single-probe config: the slot is spent until an outcome lands.
        assert not breaker.allow(0.5)
        assert breaker.blocked(0.5)

    def test_probe_success_closes(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        _trip(breaker)
        assert breaker.allow(0.5)
        breaker.record_success(0.51)
        assert breaker.state == CLOSED
        assert breaker.allow(0.52)

    def test_probe_failure_reopens_with_backoff(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        _trip(breaker)
        assert breaker.allow(0.5)
        breaker.record_failure(0.51)
        assert breaker.state == OPEN
        # Quarantine doubled: still blocked after the base 0.25s window...
        assert breaker.blocked(0.51 + 0.3)
        # ...open again only after ~0.5s.
        assert not breaker.blocked(0.51 + 0.55)

    def test_reopen_backoff_caps(self) -> None:
        breaker = CircuitBreaker("ram", _config(breaker_open_cap=0.6))
        _trip(breaker)
        now = 0.5
        for _ in range(5):  # uncapped this would be 0.25 * 2**5 = 8s
            assert breaker.allow(now)
            breaker.record_failure(now)
            now += breaker.config.breaker_open_cap + 0.01
        assert breaker.export_state()["open_seconds"] == pytest.approx(0.6)

    def test_close_resets_backoff(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        _trip(breaker)
        breaker.allow(0.5)
        breaker.record_failure(0.5)  # backoff now 0.5s
        breaker.allow(1.1)
        breaker.record_success(1.1)  # closes, resets
        _trip(breaker, at=1.2)
        assert breaker.export_state()["open_seconds"] == pytest.approx(0.25)


class TestRestore:
    def test_half_open_restores_as_open(self) -> None:
        breaker = CircuitBreaker("ram", _config())
        _trip(breaker)
        breaker.allow(0.5)
        assert breaker.state == HALF_OPEN
        raw = breaker.export_state()

        fresh = CircuitBreaker("ram", _config())
        fresh.restore_state(raw, now=10.0)
        assert fresh.state == OPEN
        # Fresh quarantine window anchored at restore time.
        assert fresh.blocked(10.0 + 0.1)
        assert not fresh.allow(10.0 + 0.1)

    def test_closed_restores_closed(self) -> None:
        fresh = CircuitBreaker("ram", _config())
        fresh.restore_state({"state": CLOSED}, now=5.0)
        assert fresh.state == CLOSED and fresh.allow(5.0)

    def test_restored_open_seconds_clamped(self) -> None:
        fresh = CircuitBreaker("ram", _config(breaker_open_cap=1.0))
        fresh.restore_state({"state": OPEN, "open_seconds": 99.0}, now=0.0)
        assert fresh.export_state()["open_seconds"] == pytest.approx(1.0)
        fresh.restore_state({"state": OPEN, "open_seconds": 0.001}, now=0.0)
        assert fresh.export_state()["open_seconds"] == pytest.approx(0.25)


class TestBoard:
    def test_quarantined_lists_blocked_tiers(self) -> None:
        board = BreakerBoard(["ram", "nvme"], _config())
        for t in (0.0, 0.01, 0.02):
            board.record("ram", False, t)
        assert board.quarantined(0.05) == ("ram",)
        assert board.blocked("ram", 0.05)
        assert not board.blocked("nvme", 0.05)
        assert board.allow("nvme", 0.05)

    def test_unknown_tier_is_permissive(self) -> None:
        board = BreakerBoard(["ram"], _config())
        assert board.allow("pfs", 0.0)
        assert not board.blocked("pfs", 0.0)

    def test_trace_is_deterministic(self) -> None:
        traces = []
        for _ in range(2):
            board = BreakerBoard(["ram"], _config())
            for t in (0.0, 0.01, 0.02):
                board.record("ram", False, t)
            board.allow("ram", 0.5)
            board.record("ram", True, 0.51)
            traces.append(tuple(board.trace))
        assert traces[0] == traces[1]
        kinds = [(e[0], e[3], e[4]) for e in traces[0]]
        assert kinds == [
            ("breaker", CLOSED, OPEN),
            ("breaker", OPEN, HALF_OPEN),
            ("breaker", HALF_OPEN, CLOSED),
        ]

    def test_board_restore_round_trip(self) -> None:
        board = BreakerBoard(["ram", "nvme"], _config())
        for t in (0.0, 0.01, 0.02):
            board.record("ram", False, t)
        raw = board.export_state()
        fresh = BreakerBoard(["ram", "nvme"], _config())
        fresh.restore_state(raw, now=3.0)
        assert fresh.breakers["ram"].state == OPEN
        assert fresh.breakers["nvme"].state == CLOSED
