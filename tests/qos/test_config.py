"""QosConfig validation and the Table II priority -> class mapping."""

from __future__ import annotations

import pytest

from repro.hcdp import ARCHIVAL_IO, ASYNC_IO, READ_AFTER_WRITE, Priority
from repro.qos import QosClass, QosConfig, qos_class_for_priority


class TestDefaults:
    def test_disabled_by_default(self) -> None:
        assert QosConfig().enabled is False

    def test_class_order(self) -> None:
        assert (
            QosClass.BEST_EFFORT
            < QosClass.BATCH
            < QosClass.INTERACTIVE
            < QosClass.CRITICAL
        )


class TestPriorityMapping:
    def test_table_ii_presets(self) -> None:
        assert qos_class_for_priority(ARCHIVAL_IO) == QosClass.BEST_EFFORT
        assert qos_class_for_priority(ASYNC_IO) == QosClass.BATCH
        assert qos_class_for_priority(READ_AFTER_WRITE) == QosClass.INTERACTIVE

    def test_custom_priority_is_batch(self) -> None:
        custom = Priority(0.5, 0.2, 0.3)
        assert qos_class_for_priority(custom) == QosClass.BATCH


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_backlog_bytes": 0},
        {"shed_soft_fill": 0.0},
        {"shed_soft_fill": 1.5},
        {"drain_bytes_per_s": 0.0},
        {"breaker_failure_threshold": 0},
        {"breaker_window": 0.0},
        {"breaker_open_seconds": 0.0},
        {"breaker_backoff_factor": 0.5},
        {"breaker_open_cap": 0.01},  # < breaker_open_seconds default
        {"breaker_probes": 0},
        {"breaker_latency_threshold": -1.0},
        {"default_deadline": 0.0},
        {"brownout_low": 0.9, "brownout_high": 0.8},
        {"brownout_dwell": -0.1},
    ])
    def test_rejects_bad_values(self, kwargs) -> None:
        with pytest.raises(ValueError):
            QosConfig(**kwargs)

    def test_accepts_defaults(self) -> None:
        QosConfig()
        QosConfig(enabled=True, default_deadline=1.0,
                  breaker_latency_threshold=0.5, drain_bytes_per_s=1e6)
