"""ResilienceConfig.retry_deadline: a wall-time cap over retry+failover."""

from __future__ import annotations

import pytest

from repro.core import StorageHardwareInterface
from repro.core.config import ResilienceConfig
from repro.errors import (
    AllTiersUnavailableError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.tiers.device import Device


class AlwaysFailingDevice(Device):
    """Every store/load raises TransientIOError."""

    def __init__(self, inner):
        self.inner = inner

    def store(self, key, payload):
        raise TransientIOError(f"store of {key!r} failed")

    def load(self, key):
        raise TransientIOError(f"load of {key!r} failed")

    def delete(self, key):
        self.inner.delete(key)

    def __contains__(self, key):
        return key in self.inner

    def keys(self):
        return self.inner.keys()


def _break_all(hierarchy) -> None:
    for tier in hierarchy:
        tier.device = AlwaysFailingDevice(tier.device)


class TestRetryDeadline:
    def test_validation(self) -> None:
        with pytest.raises(Exception):
            ResilienceConfig(retry_deadline=0.0)
        assert ResilienceConfig(retry_deadline=1.0).retry_deadline == 1.0
        assert ResilienceConfig().retry_deadline is None

    def test_caps_cumulative_backoff(self, two_tier) -> None:
        """A tiny deadline aborts long before the per-tier retry budgets
        are spent, with the terminal typed error."""
        _break_all(two_tier)
        shi = StorageHardwareInterface(
            two_tier,
            resilience=ResilienceConfig(max_retries=50, retry_deadline=1e-6),
        )
        with pytest.raises(AllTiersUnavailableError):
            shi.write("k", "fast", b"x")
        # Aborted early: nowhere near the 50-retry budget on each tier.
        assert shi.stats.retries < 5
        assert any(e[0] == "retry_deadline" for e in shi.stats.trace)

    def test_read_honours_deadline_too(self, two_tier) -> None:
        shi = StorageHardwareInterface(two_tier)
        shi.write("k", "fast", b"data")
        _break_all(two_tier)
        capped = StorageHardwareInterface(
            two_tier,
            resilience=ResilienceConfig(max_retries=50, retry_deadline=1e-6),
        )
        with pytest.raises(AllTiersUnavailableError):
            capped.read("k")
        assert capped.stats.retries < 5

    def test_no_deadline_keeps_legacy_exhaustion(self, two_tier) -> None:
        _break_all(two_tier)
        shi = StorageHardwareInterface(
            two_tier, resilience=ResilienceConfig(max_retries=2),
        )
        with pytest.raises(RetryExhaustedError):
            shi.write("k", "fast", b"x")
        # Full budget spent on both tiers: the deadline did not interfere.
        assert shi.stats.retries == 4

    def test_generous_deadline_does_not_interfere(self, two_tier) -> None:
        fast = two_tier.by_name("fast")

        class FlakyOnce(Device):
            def __init__(self, inner):
                self.inner = inner
                self.failed = False

            def store(self, key, payload):
                if not self.failed:
                    self.failed = True
                    raise TransientIOError("once")
                self.inner.store(key, payload)

            def load(self, key):
                return self.inner.load(key)

            def delete(self, key):
                self.inner.delete(key)

            def __contains__(self, key):
                return key in self.inner

            def keys(self):
                return self.inner.keys()

        fast.device = FlakyOnce(fast.device)
        shi = StorageHardwareInterface(
            two_tier, resilience=ResilienceConfig(retry_deadline=3600.0),
        )
        receipt = shi.write("k", "fast", b"x")
        assert receipt.tier == "fast" and receipt.retries == 1
