"""Deadline budget accounting: clock drift + modeled consumption."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceededError
from repro.qos import Deadline


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_budget_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_fresh_deadline_has_full_budget(self) -> None:
        dl = Deadline(2.0)
        assert dl.remaining() == pytest.approx(2.0)
        assert not dl.exceeded()

    def test_consumed_modeled_seconds_count(self) -> None:
        dl = Deadline(1.0)
        assert dl.remaining(0.4) == pytest.approx(0.6)
        assert dl.exceeded(1.0)
        assert dl.exceeded(1.5)

    def test_clock_drift_counts(self) -> None:
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.now = 0.7
        assert dl.remaining() == pytest.approx(0.3)
        clock.now = 1.1
        assert dl.exceeded()

    def test_drift_and_consumption_share_the_budget(self) -> None:
        clock = FakeClock()
        dl = Deadline(1.0, clock=clock)
        clock.now = 0.6
        assert not dl.exceeded(0.3)
        assert dl.exceeded(0.5)

    def test_check_raises_typed_error_with_context(self) -> None:
        dl = Deadline(0.5)
        dl.check("write 't0'")  # within budget: no raise
        with pytest.raises(DeadlineExceededError, match="write 't0'"):
            dl.check("write 't0'", consumed=0.5)
