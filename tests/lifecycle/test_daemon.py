"""Lifecycle daemon: temperature, TCO scoring, determinism, feature-off
identity, and the batched-hot-path parity contract."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import HCompress, HCompressConfig
from repro.datagen import synthetic_buffer
from repro.lifecycle import (
    AccessRecord,
    LifecycleConfig,
    LifecycleDaemon,
    TierCostModel,
)
from repro.lifecycle.workload import (
    ZipfTraceConfig,
    _trace_hierarchy,
    run_zipf_trace,
    zipf_probabilities,
)
from repro.sim.clock import SimClock
from repro.units import KiB


SMALL = ZipfTraceConfig(tasks=24, reads=96, lifecycle=LifecycleConfig(
    enabled=True, scan_interval=2.0,
))


def _drive(seed, enabled: bool, step: bool = True) -> dict:
    """A shrunk zipf trace with direct engine access; returns the bits
    the contracts compare (migration schedule, catalog bytes)."""
    config = SMALL
    clock = SimClock()
    engine = HCompress(
        _trace_hierarchy(config),
        HCompressConfig(
            lifecycle=LifecycleConfig(
                **{**config.lifecycle.__dict__, "enabled": enabled}
            )
        ),
        seed=seed,
        clock=lambda: clock.now,
    )
    rng = np.random.default_rng(config.rng_seed)
    buffers = {
        f"zipf/t{rank}": synthetic_buffer(
            config.dtype, config.distribution, config.task_kib * KiB, rng
        )
        for rank in range(config.tasks)
    }
    order = [list(buffers)[i] for i in rng.permutation(config.tasks)]
    for task_id in order:
        written = engine.compress(buffers[task_id], task_id=task_id)
        clock.advance(written.io_seconds + written.compress_seconds)
    trace = rng.choice(
        config.tasks,
        size=config.reads,
        p=zipf_probabilities(config.tasks, config.zipf_s),
    )
    for rank in trace:
        clock.advance(config.step_seconds)
        read = engine.decompress(f"zipf/t{rank}")
        clock.advance(read.io_seconds + read.decompress_seconds)
        if step and engine.lifecycle is not None:
            engine.lifecycle.step()
    out = {
        "migrations": tuple(
            engine.lifecycle.stats.migrations
        ) if engine.lifecycle is not None else (),
        "status": (
            engine.lifecycle.status()
            if engine.lifecycle is not None
            else None
        ),
        "catalog": engine.manager.catalog_snapshot(),
        "data": {t: engine.decompress(t).data for t in buffers},
    }
    engine.close()
    return out


class TestAccessRecord:
    def test_temperature_halves_per_half_life(self) -> None:
        record = AccessRecord(temperature=4.0, touched_at=0.0)
        assert record.decayed(16.0, half_life=16.0) == pytest.approx(2.0)
        assert record.decayed(32.0, half_life=16.0) == pytest.approx(1.0)
        assert record.decayed(0.0, half_life=16.0) == pytest.approx(4.0)

    def test_untracked_task_reads_at_zero_rate(self, seed,
                                               small_hierarchy) -> None:
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(lifecycle=LifecycleConfig(enabled=True)),
            seed=seed,
        )
        assert engine.lifecycle.read_rate("nobody") == 0.0
        engine.close()

    def test_repeat_reads_raise_the_rate(self, seed, small_hierarchy,
                                         gamma_f64) -> None:
        clock = SimClock()
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(lifecycle=LifecycleConfig(enabled=True)),
            seed=seed,
            clock=lambda: clock.now,
        )
        engine.compress(gamma_f64, task_id="hot")
        cold = engine.lifecycle.read_rate("hot")
        for _ in range(8):
            clock.advance(1.0)
            engine.decompress("hot")
        assert engine.lifecycle.read_rate("hot") > cold
        engine.close()


class TestCostModel:
    def test_prices_rank_by_tier_speed(self, small_hierarchy) -> None:
        cost = TierCostModel(small_hierarchy)
        prices = [
            cost.dollars_per_gb_s(tier.spec.name) for tier in small_hierarchy
        ]
        # Faster tiers must cost strictly more per GB.s, or the
        # objective would never demote anything.
        assert prices == sorted(prices, reverse=True)
        assert prices[-1] > 0.0

    def test_migration_is_never_free(self, small_hierarchy) -> None:
        cost = TierCostModel(small_hierarchy)
        tiers = list(small_hierarchy)
        dollars = cost.migration_dollars(
            tiers[0], tiers[-1], 4 * KiB, 2 * KiB, "lz4", "lzma", 8 * KiB
        )
        assert dollars > 0.0

    def test_identity_codec_ratio_is_one(self, small_hierarchy) -> None:
        cost = TierCostModel(small_hierarchy)
        assert cost.expected_ratio("none") == 1.0


class TestDeterminism:
    def test_same_seed_same_migration_schedule(self, seed) -> None:
        first = _drive(seed, enabled=True)
        second = _drive(seed, enabled=True)
        assert first["migrations"], "trace produced no migrations to compare"
        assert first["migrations"] == second["migrations"]
        assert first["status"] == second["status"]
        assert first["catalog"] == second["catalog"]

    def test_workload_driver_is_deterministic(self, seed) -> None:
        runs = [
            run_zipf_trace(SMALL, lifecycle=True, seed=seed)
            for _ in range(2)
        ]
        assert runs[0].status == runs[1].status
        assert runs[0].total_dollars == runs[1].total_dollars
        assert runs[0].tier_residency == runs[1].tier_residency


class TestFeatureOffIdentity:
    def test_disabled_engine_holds_none(self, seed, small_hierarchy) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        assert engine.lifecycle is None
        engine.close()

    def test_enabled_but_never_stepped_is_byte_identical(self, seed) -> None:
        """Access bookkeeping alone (note_write/note_read on every op)
        must not perturb placement, schemas, or stored bytes."""
        disabled = _drive(seed, enabled=False)
        idle = _drive(seed, enabled=True, step=False)
        assert idle["catalog"] == disabled["catalog"]
        assert idle["data"] == disabled["data"]
        assert idle["status"]["scans"] == 0

    def test_migrations_change_placement_not_data(self, seed) -> None:
        disabled = _drive(seed, enabled=False)
        enabled = _drive(seed, enabled=True)
        assert enabled["status"]["demotions"] > 0
        assert enabled["catalog"] != disabled["catalog"]
        # Every blob still reads back byte-identical after migration.
        assert enabled["data"] == disabled["data"]


class TestBatchedPathParity:
    def test_compress_batch_with_idle_daemon(self, seed, rng) -> None:
        """Satellite 5: the daemon's write hooks ride the batched hot
        path without kicking it off the fast path or changing bytes."""
        buffers = [
            synthetic_buffer("float64", "gamma", 8 * KiB, rng)
            for _ in range(6)
        ]
        snapshots = []
        for enabled in (False, True):
            engine = HCompress(
                _trace_hierarchy(SMALL),
                HCompressConfig(
                    lifecycle=LifecycleConfig(
                        enabled=enabled, scan_interval=1e9
                    )
                ),
                seed=seed,
            )
            results = engine.compress_batch(
                [
                    {"data": data, "task_id": f"b{i}"}
                    for i, data in enumerate(buffers)
                ]
            )
            snapshots.append((
                [
                    tuple(
                        (p.plan.codec, p.tier, p.stored_size)
                        for p in r.pieces
                    )
                    for r in results
                ],
                engine.manager.catalog_snapshot(),
            ))
            if enabled:
                assert engine.lifecycle.status()["tracked_tasks"] == len(
                    buffers
                )
            engine.close()
        assert snapshots[0] == snapshots[1]


class _StubBrownout:
    def __init__(self, level: int) -> None:
        self.level = level


class _StubQos:
    def __init__(self, level: int, quarantined=()) -> None:
        self.brownout = _StubBrownout(level)
        self._quarantined = set(quarantined)

    def tier_quarantined(self, name: str) -> bool:
        return name in self._quarantined


class TestQosCooperation:
    def test_brownout_pauses_the_daemon(self, seed, small_hierarchy,
                                        gamma_f64) -> None:
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(
                lifecycle=LifecycleConfig(enabled=True, scan_interval=0.0)
            ),
            seed=seed,
        )
        engine.compress(gamma_f64, task_id="t0")
        engine.qos = _StubQos(level=2)
        assert engine.lifecycle.step(force=True) == []
        assert engine.lifecycle.stats.paused == 1
        assert engine.lifecycle.stats.scans == 0
        engine.qos = _StubQos(level=0)
        engine.lifecycle.step(force=True)
        assert engine.lifecycle.stats.scans == 1
        engine.close()

    def test_quarantined_tier_is_skipped(self, seed, gamma_f64) -> None:
        clock = SimClock()
        engine = HCompress(
            _trace_hierarchy(SMALL),
            HCompressConfig(
                lifecycle=LifecycleConfig(
                    enabled=True,
                    scan_interval=0.0,
                    # Storage-heavy pricing: every blob wants to demote.
                    storage_price=1000.0,
                    access_price=0.001,
                )
            ),
            seed=seed,
            clock=lambda: clock.now,
        )
        engine.compress(gamma_f64, task_id="t0")
        names = [tier.spec.name for tier in engine.hierarchy]
        engine.qos = _StubQos(level=0, quarantined=set(names))
        assert engine.lifecycle.step(force=True) == []
        assert engine.lifecycle.stats.skipped_quarantined > 0
        engine.close()


class TestStatus:
    def test_status_is_json_serializable(self, seed, small_hierarchy,
                                         gamma_f64) -> None:
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(lifecycle=LifecycleConfig(enabled=True)),
            seed=seed,
        )
        engine.compress(gamma_f64, task_id="t0")
        engine.lifecycle.step(force=True)
        status = json.loads(json.dumps(engine.lifecycle.status()))
        assert status["enabled"] is True
        assert status["scans"] == 1
        assert status["tracked_tasks"] == 1
        assert status["promote_codec"] in engine.pool
        engine.close()

    def test_generation_keys_never_collide(self) -> None:
        from repro.core.manager import CatalogEntry

        fresh = [CatalogEntry("t/0", 10, "lz4", None)]
        assert LifecycleDaemon._next_generation("t", fresh) == 1
        migrated = [CatalogEntry("t/g3/0", 10, "lzma", None)]
        assert LifecycleDaemon._next_generation("t", migrated) == 4


class TestConfigValidation:
    def test_bad_interval_rejected(self) -> None:
        with pytest.raises(Exception):
            LifecycleConfig(scan_interval=-1.0)

    def test_bad_horizon_rejected(self) -> None:
        with pytest.raises(Exception):
            LifecycleConfig(horizon=0.0)
