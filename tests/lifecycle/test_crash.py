"""Mid-migration crash consistency: a kill at any lifecycle site leaves
every acked blob readable at exactly one tier."""

from __future__ import annotations

import pytest

from repro.faults import CrashConfig, run_crash_recovery

LIFECYCLE_SITES = (
    "lifecycle.pre_copy",
    "lifecycle.post_copy",
    "lifecycle.post_journal",
    "lifecycle.post_evict",
)


@pytest.mark.parametrize("site", LIFECYCLE_SITES)
@pytest.mark.parametrize("hit", (1, 2))
def test_kill_mid_migration_holds_invariants(site, hit) -> None:
    """Crash at each window of the copy -> journal -> evict discipline:
    recovery must leave no orphaned capacity, no double copies, and every
    acked write byte-identical (i.e. readable at exactly one tier)."""
    from repro.recovery import CrashPlan

    outcome = run_crash_recovery(plan=CrashPlan(site=site, hit=hit))
    assert outcome.crashed and outcome.fired_site == site
    assert outcome.holds, outcome.summary()
    assert outcome.orphan_keys_after == 0
    assert outcome.duplicate_keys_after == 0
    assert outcome.mismatched == 0


def test_migrated_blobs_survive_the_crash_cycle() -> None:
    """The baseline (no crash) with the daemon on: migrations happened,
    and the post-recovery verification read every blob back intact."""
    outcome = run_crash_recovery(plan=None)
    assert not outcome.crashed
    assert outcome.holds, outcome.summary()
    assert outcome.verified_intact == outcome.tasks_acked - outcome.evicts_acked


def test_daemon_off_never_reaches_lifecycle_sites() -> None:
    """With the daemon disabled the workload must never take a lifecycle
    crash site — the instrumentation is dead when the feature is off."""
    from repro.recovery import CrashPlan

    outcome = run_crash_recovery(
        plan=CrashPlan(site="lifecycle.pre_copy"),
        config=CrashConfig(lifecycle=False),
    )
    assert not outcome.crashed
    assert outcome.holds, outcome.summary()
