"""Sharded lifecycle tiering: per-shard daemons stay inside their
failure domain — a shard only ever migrates its own blobs."""

from __future__ import annotations

import numpy as np

from repro.core import HCompressConfig
from repro.datagen import synthetic_buffer
from repro.lifecycle import LifecycleConfig
from repro.shard import ShardConfig, ShardedHCompress
from repro.tiers import ares_specs
from repro.units import GiB, KiB, MiB

#: Storage-heavy pricing, zero scan interval: every scan demotes whatever
#: fits, so the isolation check does not depend on wall-clock timing.
DEMOTE_EVERYTHING = LifecycleConfig(
    enabled=True,
    scan_interval=0.0,
    storage_price=1000.0,
    access_price=0.001,
    max_migrations_per_step=8,
)


def _sharded(seed, shards: int) -> ShardedHCompress:
    return ShardedHCompress(
        ares_specs(16 * MiB, 32 * MiB, 1 * GiB, nodes=2 * shards),
        HCompressConfig(lifecycle=DEMOTE_EVERYTHING),
        ShardConfig(shards=shards),
        seed=seed,
    )


def _tenant_on(sharded: ShardedHCompress, shard_id: int) -> str:
    for t in range(256):
        if sharded.ring.route(f"tenant-{t}") == shard_id:
            return f"tenant-{t}"
    raise AssertionError(f"no tenant routes to shard {shard_id}")


def test_each_shard_migrates_only_its_own_blobs(seed, rng) -> None:
    sharded = _sharded(seed, shards=2)
    buffer = synthetic_buffer("float64", "gamma", 8 * KiB, rng)
    tenants = {
        shard_id: _tenant_on(sharded, shard_id) for shard_id in (0, 1)
    }
    owned: dict[int, set[str]] = {0: set(), 1: set()}
    for shard_id, tenant in tenants.items():
        for index in range(4):
            task_id = f"s{shard_id}/t{index}"
            sharded.compress(buffer, task_id=task_id, tenant=tenant)
            owned[shard_id].add(task_id)

    migrated = sharded.lifecycle_step(force=True)
    assert any(migrated.values()), "no shard migrated anything"
    for shard_id, migrations in migrated.items():
        catalog = set(sharded.engines[shard_id].manager.task_ids())
        for migration in migrations:
            # The daemon only sees (and only moves) its shard's catalog.
            assert migration.task_id in catalog
            assert migration.task_id in owned[shard_id]
            assert migration.task_id not in owned[1 - shard_id]

    status = sharded.lifecycle_status()
    assert set(status) == {0, 1}
    for shard_id, shard_status in status.items():
        assert shard_status["demotions"] == len(migrated[shard_id])
    sharded.close()


def test_unsharded_config_off_has_no_daemon(seed) -> None:
    sharded = ShardedHCompress(
        ares_specs(16 * MiB, 32 * MiB, 1 * GiB, nodes=2),
        seed=seed,
    )
    assert sharded.lifecycle_status() == {}
    assert sharded.lifecycle_step(force=True) == {}
    sharded.close()


def test_dead_shard_is_skipped(seed, rng) -> None:
    sharded = _sharded(seed, shards=2)
    buffer = synthetic_buffer("float64", "gamma", 8 * KiB, rng)
    for shard_id in (0, 1):
        sharded.compress(
            buffer,
            task_id=f"s{shard_id}/t0",
            tenant=_tenant_on(sharded, shard_id),
        )
    sharded.kill_shard(0)
    migrated = sharded.lifecycle_step(force=True)
    assert 0 not in migrated
    assert set(sharded.lifecycle_status()) == {1}
    sharded.close()
