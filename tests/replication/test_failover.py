"""End-to-end failover: kill a replicated primary, promote its standby.

Covers the contract from docs/SHARDING.md: automatic promotion on the
next dispatch, zero acked-write loss (including the group-commit tail
the dead primary never synced), the retryable PROMOTING window, fencing
via the manifest version, idempotence of a retried ``failover()``, and
the byte-identical-when-disabled guarantee.
"""

from __future__ import annotations

import pytest

from repro.core import HCompressConfig
from repro.core.config import RecoveryConfig
from repro.errors import (
    FailoverInProgressError,
    HCompressError,
    ShardStateError,
    SimulatedCrashError,
)
from repro.recovery import CrashPlan, Crashpoints
from repro.replication import ReplicationConfig, replica_dirname
from repro.shard import ShardConfig, ShardedHCompress
from repro.sim.clock import SimClock
from repro.tiers import ares_specs
from repro.units import GiB, MiB


def _specs(scale: int = 2):
    return ares_specs(
        16 * MiB * scale, 32 * MiB * scale, 1 * GiB * scale, nodes=scale
    )


def _replicated(seed, tmp_path, clock: SimClock, *,
                promotion_seconds: float = 0.0,
                fsync_every: int = 8,
                crashpoints=None, **replication_kwargs) -> ShardedHCompress:
    return ShardedHCompress(
        _specs(),
        HCompressConfig(
            recovery=RecoveryConfig(fsync=False, fsync_every=fsync_every),
        ),
        ShardConfig(
            shards=2,
            directory=tmp_path / "deploy",
            replication=ReplicationConfig(
                enabled=True,
                promotion_seconds=promotion_seconds,
                **replication_kwargs,
            ),
        ),
        seed=seed,
        clock=lambda: clock.now,
        crashpoints=crashpoints,
    )


def _tenant_on(sharded: ShardedHCompress, shard_id: int) -> str:
    for t in range(256):
        if sharded.ring.route(f"tenant-{t}") == shard_id:
            return f"tenant-{t}"
    raise AssertionError(f"no tenant routes to shard {shard_id}")


class TestAutomaticFailover:
    def test_kill_promotes_and_loses_no_acked_write(
        self, seed, tmp_path, gamma_f64
    ) -> None:
        """Every acked write survives the kill — including the journal
        tail the primary's group commit never made locally durable."""
        clock = SimClock()
        sharded = _replicated(seed, tmp_path, clock, fsync_every=8)
        tenant = _tenant_on(sharded, 0)
        for i in range(5):
            sharded.compress(gamma_f64, task_id=f"t{i}", tenant=tenant)
            clock.advance(0.05)
        victim = sharded.engines[0]
        assert victim.journal.pending > 0  # a genuinely unsynced tail
        old_dir = sharded.manifest.directories[0]
        sharded.kill_shard(0)
        assert sharded.engines[0] is None
        # The very next dispatch — any tenant's — runs the promotion.
        read = sharded.decompress("t0")
        assert read.data == gamma_f64
        assert sharded.engines[0] is not None
        assert sharded.replication.failovers[0] == 1
        assert sharded.manifest.directories[0] == replica_dirname(0, 0)
        # The dead primary's directory was recycled as a new standby.
        standby_dirs = [
            r.directory.name for r in sharded.replication.standbys[0]
        ]
        assert standby_dirs == [old_dir]
        for i in range(5):
            assert sharded.decompress(f"t{i}").data == gamma_f64
        sharded.close()

    def test_promotion_window_sheds_retryably_then_serves(
        self, seed, tmp_path, gamma_f64
    ) -> None:
        clock = SimClock()
        sharded = _replicated(seed, tmp_path, clock, promotion_seconds=0.25)
        tenant = _tenant_on(sharded, 0)
        sharded.compress(gamma_f64, task_id="t0", tenant=tenant)
        sharded.kill_shard(0)
        with pytest.raises(FailoverInProgressError) as excinfo:
            sharded.decompress("t0")
        assert 0 < excinfo.value.retry_after <= 0.25
        # FailoverInProgressError is QoS-class: retryable, not a health
        # signal — the shard must not be re-marked DOWN for shedding.
        assert sharded.supervisor.health[0].status == "PROMOTING"
        clock.advance(0.3)
        assert sharded.decompress("t0").data == gamma_f64
        assert sharded.supervisor.health[0].status == "UP"
        trace = [s for s, _, sid, _ in sharded.supervisor.trace if sid == 0]
        assert trace == ["DOWN", "PROMOTING", "UP"]
        sharded.close()

    def test_retried_failover_after_convergence_is_typed_noop(
        self, seed, tmp_path, gamma_f64
    ) -> None:
        clock = SimClock()
        sharded = _replicated(seed, tmp_path, clock)
        tenant = _tenant_on(sharded, 0)
        sharded.compress(gamma_f64, task_id="t0", tenant=tenant)
        sharded.kill_shard(0)
        sharded.failover(0)
        version = sharded.manifest.version
        with pytest.raises(ShardStateError):
            sharded.failover(0)
        assert sharded.manifest.version == version
        sharded.close()

    def test_failover_requires_replication(self, seed, tmp_path,
                                           gamma_f64) -> None:
        sharded = ShardedHCompress(
            _specs(),
            shard_config=ShardConfig(shards=2, directory=tmp_path / "d"),
            seed=seed,
        )
        sharded.kill_shard(0)
        with pytest.raises(ShardStateError):
            sharded.failover(0)
        sharded.close()

    def test_replication_needs_deployment_directory(self, seed) -> None:
        with pytest.raises(HCompressError):
            ShardedHCompress(
                _specs(),
                shard_config=ShardConfig(
                    shards=2,
                    replication=ReplicationConfig(enabled=True),
                ),
                seed=seed,
            )


class TestCrashMidPromotion:
    @pytest.mark.parametrize("site", [
        "replication.pre_promote",
        "replication.post_manifest",
        "replication.post_reroute",
        "replication.post_demote",
    ])
    def test_retried_failover_repairs_any_crash_site(
        self, seed, tmp_path, gamma_f64, site
    ) -> None:
        clock = SimClock()
        crashpoints = Crashpoints(CrashPlan(site=site))
        sharded = _replicated(
            seed, tmp_path, clock, crashpoints=crashpoints
        )
        tenant = _tenant_on(sharded, 0)
        sharded.compress(gamma_f64, task_id="t0", tenant=tenant)
        sharded.kill_shard(0)
        with pytest.raises(SimulatedCrashError):
            sharded.decompress("t0")
        assert crashpoints.fired == site
        # A new incarnation repairs by retrying: every stage is idempotent.
        sharded.failover(0)
        assert sharded.decompress("t0").data == gamma_f64
        assert sharded.replication.failovers[0] == 1
        disk = sharded.verify_manifest()
        assert disk.directories == sharded.manifest.directories
        sharded.close()


class TestDisabledIdentity:
    def test_disabled_config_matches_unreplicated_deployment(
        self, seed, tmp_path, gamma_f64
    ) -> None:
        """``ReplicationConfig()`` (the default, disabled) must leave the
        deployment byte-identical to one built with no replication knob:
        same placements, same stored bytes, no standby directories."""
        snapshots = []
        for name, replication in (
            ("plain", None),
            ("off", ReplicationConfig()),
        ):
            kwargs = {} if replication is None else {
                "replication": replication
            }
            sharded = ShardedHCompress(
                _specs(),
                shard_config=ShardConfig(
                    shards=2, directory=tmp_path / name, **kwargs
                ),
                seed=seed,
            )
            assert sharded.replication is None
            results = [
                sharded.compress(gamma_f64, task_id=f"t{i}",
                                 tenant=f"tenant-{i}")
                for i in range(4)
            ]
            snapshots.append([
                tuple((p.plan.codec, p.tier, p.stored_size)
                      for p in r.pieces)
                for r in results
            ])
            replica_dirs = [
                p.name for p in (tmp_path / name).iterdir()
                if "-r" in p.name
            ]
            assert replica_dirs == []
            sharded.close()
        assert snapshots[0] == snapshots[1]


class TestStatus:
    def test_replication_status_tracks_shipping_and_failover(
        self, seed, tmp_path, gamma_f64
    ) -> None:
        clock = SimClock()
        sharded = _replicated(seed, tmp_path, clock)
        tenant = _tenant_on(sharded, 0)
        sharded.compress(gamma_f64, task_id="t0", tenant=tenant)
        status = sharded.replication_status()
        assert status[0]["primary_lsn"] >= 1
        assert status[0]["shipped_records"] >= 1
        assert status[0]["replicas"][0]["lag"] == 0  # synchronous
        sharded.kill_shard(0)
        sharded.failover(0)
        status = sharded.replication_status()
        assert status[0]["failovers"] == 1
        assert status[0]["catch_ups"] >= 1
        sharded.close()

    def test_status_requires_replication(self, seed) -> None:
        sharded = ShardedHCompress(
            _specs(), shard_config=ShardConfig(shards=2), seed=seed
        )
        with pytest.raises(HCompressError):
            sharded.replication_status()
        sharded.close()
