"""Replication telemetry: promotion counter push + coordinator mirror."""

from __future__ import annotations

from repro.obs import Observability, ObservabilityConfig
from repro.recovery import Journal, JournalRecord
from repro.replication import ReplicationConfig, ReplicationCoordinator

ENTRIES = (("t0/0", 4096, "zlib", 123),)


def _obs() -> Observability:
    return Observability(ObservabilityConfig(enabled=True))


class TestPush:
    def test_record_shard_promotion_increments_counter(self) -> None:
        obs = _obs()
        obs.record_shard_promotion("0")
        obs.record_shard_promotion("0")
        obs.record_shard_promotion("1")
        reg = obs.registry
        assert reg.value(
            "hcompress_replication_promotions_total", shard="0"
        ) == 2
        assert reg.value(
            "hcompress_replication_promotions_total", shard="1"
        ) == 1


class TestMirror:
    def test_sync_replication_mirrors_coordinator_view(
        self, tmp_path
    ) -> None:
        coordinator = ReplicationCoordinator(
            1,
            ReplicationConfig(enabled=True, replicas=2),
            tmp_path,
            fsync=False,
        )
        journal = Journal(tmp_path / "primary" / "journal.wal", fsync=False)
        coordinator.attach(0, journal)
        journal.append("commit", "t0", ENTRIES)
        journal.append("commit", "t1", ENTRIES)
        # One standby falls behind: fake a lag by rolling its LSN back.
        coordinator.standbys[0][1].applied_lsn = 1
        obs = _obs()
        obs.sync_replication(coordinator, 0)
        reg = obs.registry
        assert reg.value(
            "hcompress_replication_shipped_records_total", shard="0"
        ) == 4
        assert reg.value(
            "hcompress_replication_lag_records", shard="0", replica="0"
        ) == 0
        assert reg.value(
            "hcompress_replication_lag_records", shard="0", replica="1"
        ) == 1
        assert reg.value(
            "hcompress_replication_catchups_total", shard="0"
        ) == 0
        journal.close()
        coordinator.close()


class TestEndToEnd:
    def test_failover_emits_span_and_counter(self, seed, tmp_path,
                                             gamma_f64) -> None:
        from repro.core import HCompressConfig
        from repro.shard import ShardConfig, ShardedHCompress
        from repro.tiers import ares_specs
        from repro.units import GiB, MiB

        sharded = ShardedHCompress(
            ares_specs(32 * MiB, 64 * MiB, 2 * GiB, nodes=2),
            HCompressConfig(
                observability=ObservabilityConfig(enabled=True),
            ),
            ShardConfig(
                shards=2,
                directory=tmp_path,
                replication=ReplicationConfig(
                    enabled=True, promotion_seconds=0.0
                ),
            ),
            seed=seed,
        )
        tenant = next(
            f"tenant-{t}" for t in range(256)
            if sharded.ring.route(f"tenant-{t}") == 0
        )
        sharded.compress(gamma_f64, task_id="t0", tenant=tenant)
        sharded.kill_shard(0)
        engine = sharded.failover(0)
        spans = [s for s in engine.obs.tracer.spans
                 if s.name == "replication.promote"]
        assert len(spans) == 1
        assert spans[0].attrs["shard"] == 0
        assert spans[0].attrs["applied_lsn"] == engine.journal.durable_lsn
        assert engine.obs.registry.value(
            "hcompress_replication_promotions_total", shard="0"
        ) == 1
        # observabilities() mirrors the coordinator into the shard view.
        obs = sharded.observabilities()[0]
        assert obs.registry.value(
            "hcompress_replication_shipped_records_total", shard="0"
        ) >= 1
        sharded.close()
