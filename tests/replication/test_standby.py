"""StandbyReplica: shipped-frame persistence, idempotence, snapshots."""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError
from repro.recovery import (
    EngineSnapshot,
    JournalRecord,
    replay_journal,
    write_snapshot,
)
from repro.replication import StandbyReplica

ENTRIES = (("t0/0", 4096, "zlib", 123),)


def _record(lsn: int, task: str = "t0") -> JournalRecord:
    return JournalRecord(lsn, "commit", task, ENTRIES)


@pytest.fixture()
def standby(tmp_path) -> StandbyReplica:
    return StandbyReplica(0, 0, tmp_path / "shard-00-r0", fsync=False)


class TestApply:
    def test_apply_persists_frame_verbatim(self, standby) -> None:
        record = _record(1)
        assert standby.apply(record)
        assert standby.applied_lsn == 1
        replay = replay_journal(standby.journal_path)
        assert replay.records == [record]

    def test_apply_is_idempotent_by_lsn(self, standby) -> None:
        record = _record(1)
        assert standby.apply(record)
        assert not standby.apply(record)  # re-ship: dropped
        assert standby.records_applied == 1
        assert len(replay_journal(standby.journal_path).records) == 1

    def test_stale_lsn_dropped(self, standby) -> None:
        standby.apply(_record(5))
        assert not standby.apply(_record(3))
        assert standby.applied_lsn == 5

    def test_closed_standby_refuses_applies(self, standby) -> None:
        standby.close()
        standby.close()  # idempotent
        with pytest.raises(RecoveryError):
            standby.apply(_record(1))


class TestFrameVerification:
    def test_valid_frame_applies(self, standby) -> None:
        record = _record(1)
        assert standby.apply(record, record.frame())
        assert standby.applied_lsn == 1
        assert standby.frames_rejected == 0
        assert replay_journal(standby.journal_path).records == [record]

    def test_corrupt_frame_is_rejected_before_persisting(self,
                                                         standby) -> None:
        record = _record(1)
        frame = bytearray(record.frame())
        frame[-1] ^= 0xFF  # payload rot: CRC no longer matches
        assert not standby.apply(record, bytes(frame))
        assert standby.frames_rejected == 1
        assert standby.applied_lsn == 0  # catch-up will re-fetch it
        assert replay_journal(standby.journal_path).records == []
        # The intact frame still lands afterwards.
        assert standby.apply(record, record.frame())
        assert standby.applied_lsn == 1

    def test_truncated_frame_is_rejected(self, standby) -> None:
        frame = _record(1).frame()
        assert not standby.apply(_record(1), frame[:4])  # short header
        assert not standby.apply(_record(1), frame[:-3])  # short payload
        assert standby.frames_rejected == 2
        assert standby.applied_lsn == 0

    def test_frame_lsn_must_match_record(self, standby) -> None:
        # A frame for LSN 2 shipped against the LSN-1 record: both sides
        # are individually well-formed, so only the cross-check trips.
        assert not standby.apply(_record(1), _record(2, "t2").frame())
        assert standby.frames_rejected == 1
        assert standby.applied_lsn == 0

    def test_omitted_frame_is_trusted(self, standby) -> None:
        assert standby.apply(_record(1))  # in-process hand-off path
        assert standby.frames_rejected == 0
        assert standby.applied_lsn == 1


class TestAdoption:
    def test_reopen_resumes_applied_lsn(self, tmp_path) -> None:
        directory = tmp_path / "shard-00-r0"
        first = StandbyReplica(0, 0, directory, fsync=False)
        for lsn in (1, 2, 3):
            first.apply(_record(lsn, f"t{lsn}"))
        first.close()
        second = StandbyReplica(0, 0, directory, fsync=False)
        assert second.applied_lsn == 3
        assert not second.apply(_record(3))  # already held

    def test_adoption_repairs_torn_tail(self, tmp_path) -> None:
        directory = tmp_path / "shard-00-r0"
        first = StandbyReplica(0, 0, directory, fsync=False)
        first.apply(_record(1))
        first.apply(_record(2, "t2"))
        first.close()
        # Model a crash mid-ship: half a frame lands after the intact two.
        torn = _record(3, "t3").frame()
        with open(first.journal_path, "ab") as handle:
            handle.write(torn[: len(torn) // 2])
        second = StandbyReplica(0, 0, directory, fsync=False)
        assert second.applied_lsn == 2
        replay = replay_journal(second.journal_path)
        assert not replay.truncated  # tail was cut in place
        assert replay.last_lsn == 2
        # The repaired journal extends cleanly.
        assert second.apply(_record(3, "t3"))
        assert replay_journal(second.journal_path).last_lsn == 3


class TestSnapshots:
    def _primary_with_snapshot(self, tmp_path, journal_lsn: int):
        primary = tmp_path / "primary"
        write_snapshot(
            primary,
            EngineSnapshot(journal_lsn=journal_lsn, catalog={}),
            fsync=False,
        )
        return primary

    def test_install_snapshot_advances_applied_lsn(self, standby,
                                                   tmp_path) -> None:
        primary = self._primary_with_snapshot(tmp_path, journal_lsn=7)
        assert standby.install_snapshot(primary) == 7
        assert standby.snapshot_lsn == 7
        assert standby.applied_lsn == 7

    def test_install_snapshot_compacts_covered_journal(self, standby,
                                                       tmp_path) -> None:
        for lsn in (1, 2, 3, 4):
            standby.apply(_record(lsn, f"t{lsn}"))
        primary = self._primary_with_snapshot(tmp_path, journal_lsn=3)
        standby.install_snapshot(primary)
        # Only the suffix the snapshot does not cover survives.
        survivors = replay_journal(standby.journal_path).records
        assert [r.lsn for r in survivors] == [4]
        assert standby.applied_lsn == 4  # journal tail still counts

    def test_lag_against_primary_lsn(self, standby) -> None:
        standby.apply(_record(1))
        assert standby.lag(primary_lsn=4) == 3
        assert standby.lag(primary_lsn=1) == 0
        assert standby.lag(primary_lsn=0) == 0  # never negative
