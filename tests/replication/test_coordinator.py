"""ReplicationCoordinator: shipping, anti-entropy, promotion bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.recovery import EngineSnapshot, Journal, write_snapshot
from repro.replication import ReplicationConfig, ReplicationCoordinator

ENTRIES = (("t0/0", 4096, "zlib", 123),)


def _coordinator(tmp_path, shards: int = 1,
                 replicas: int = 2) -> ReplicationCoordinator:
    return ReplicationCoordinator(
        shards,
        ReplicationConfig(enabled=True, replicas=replicas),
        tmp_path,
        fsync=False,
    )


@pytest.fixture()
def primary_journal(tmp_path) -> Journal:
    return Journal(tmp_path / "primary" / "journal.wal", fsync=False)


class TestConstruction:
    def test_requires_enabled_config(self, tmp_path) -> None:
        with pytest.raises(ShardError):
            ReplicationCoordinator(1, ReplicationConfig(), tmp_path)

    def test_builds_flat_standby_directories(self, tmp_path) -> None:
        coordinator = _coordinator(tmp_path, shards=2, replicas=2)
        for name in ("shard-00-r0", "shard-00-r1",
                     "shard-01-r0", "shard-01-r1"):
            assert (tmp_path / name).is_dir()
        coordinator.close()


class TestShipping:
    def test_attach_ships_each_append_to_every_standby(
        self, tmp_path, primary_journal
    ) -> None:
        coordinator = _coordinator(tmp_path)
        coordinator.attach(0, primary_journal)
        primary_journal.append("commit", "t0", ENTRIES)
        primary_journal.append("commit", "t1", ENTRIES)
        # Shipped before any sync: the standbys hold what the primary's
        # group-commit buffer would lose.
        assert primary_journal.pending == 2
        assert coordinator.primary_lsn[0] == 2
        assert coordinator.shipped_records[0] == 4  # 2 records x 2 standbys
        for replica in coordinator.standbys[0]:
            assert replica.applied_lsn == 2
        assert coordinator.lag(0) == {0: 0, 1: 0}
        coordinator.close()

    def test_detach_stops_shipping_and_is_idempotent(
        self, tmp_path, primary_journal
    ) -> None:
        coordinator = _coordinator(tmp_path)
        coordinator.attach(0, primary_journal)
        primary_journal.append("commit", "t0", ENTRIES)
        coordinator.detach(0)
        coordinator.detach(0)
        primary_journal.append("commit", "t1", ENTRIES)
        assert coordinator.shipped_records[0] == 2  # only the first record
        for replica in coordinator.standbys[0]:
            assert replica.applied_lsn == 1
        coordinator.close()


class TestAntiEntropy:
    def test_catch_up_replays_tail_from_applied_lsn(
        self, tmp_path, primary_journal
    ) -> None:
        coordinator = _coordinator(tmp_path, replicas=1)
        # The primary journaled 3 records while nothing was attached.
        for task in ("t0", "t1", "t2"):
            primary_journal.commit("commit", task, ENTRIES)
        applied = coordinator.catch_up(0, primary_journal.path.parent)
        assert applied == 3
        assert coordinator.standbys[0][0].applied_lsn == 3
        assert coordinator.catch_ups[0] == 1
        # A second pass is a no-op: applies are idempotent by LSN.
        assert coordinator.catch_up(0, primary_journal.path.parent) == 0
        coordinator.close()

    def test_ship_checkpoint_installs_on_every_standby(
        self, tmp_path
    ) -> None:
        coordinator = _coordinator(tmp_path, replicas=2)
        primary = tmp_path / "primary"
        write_snapshot(
            primary, EngineSnapshot(journal_lsn=9, catalog={}), fsync=False
        )
        coordinator.ship_checkpoint(0, primary)
        for replica in coordinator.standbys[0]:
            assert replica.snapshot_lsn == 9
            assert replica.applied_lsn == 9
        coordinator.close()


class TestPromotion:
    def test_candidate_is_most_caught_up_lowest_id(
        self, tmp_path, primary_journal
    ) -> None:
        coordinator = _coordinator(tmp_path, replicas=3)
        r0, r1, r2 = coordinator.standbys[0]
        coordinator.attach(0, primary_journal)
        primary_journal.append("commit", "t0", ENTRIES)
        # All equal: ties break toward the lowest replica id.
        assert coordinator.promotion_candidate(0) is r0
        # A strictly more caught-up standby wins regardless of id.
        from repro.recovery import JournalRecord

        r2.apply(JournalRecord(2, "commit", "t1", ENTRIES))
        assert coordinator.promotion_candidate(0) is r2
        coordinator.close()

    def test_promote_removes_candidate_from_standby_set(
        self, tmp_path
    ) -> None:
        coordinator = _coordinator(tmp_path, replicas=2)
        candidate = coordinator.promotion_candidate(0)
        directory = coordinator.promote(0, candidate)
        assert directory == candidate.directory
        assert candidate not in coordinator.standbys[0]
        assert len(coordinator.standbys[0]) == 1
        coordinator.close()

    def test_promote_empty_set_is_typed(self, tmp_path) -> None:
        coordinator = _coordinator(tmp_path, replicas=1)
        coordinator.promote(0, coordinator.promotion_candidate(0))
        with pytest.raises(ShardError):
            coordinator.promotion_candidate(0)
        coordinator.close()

    def test_demote_recycles_directory_with_fresh_id(self, tmp_path) -> None:
        coordinator = _coordinator(tmp_path, replicas=2)
        candidate = coordinator.promotion_candidate(0)
        old_primary_dir = tmp_path / "shard-00"
        old_primary_dir.mkdir()
        coordinator.promote(0, candidate)
        replica = coordinator.demote(0, old_primary_dir)
        # Ids restart after the highest survivor, so they stay unique.
        assert replica.replica_id == 2
        assert replica.directory == old_primary_dir
        assert len(coordinator.standbys[0]) == 2
        # Idempotent: demoting the same directory replaces, not duplicates
        # (the stale enrolment is dropped before ids are renumbered).
        again = coordinator.demote(0, old_primary_dir)
        assert len(coordinator.standbys[0]) == 2
        assert again.replica_id == 2
        coordinator.close()


class TestStatus:
    def test_status_shape(self, tmp_path, primary_journal) -> None:
        coordinator = _coordinator(tmp_path, replicas=1)
        coordinator.attach(0, primary_journal)
        primary_journal.append("commit", "t0", ENTRIES)
        status = coordinator.status()
        assert status[0]["primary_lsn"] == 1
        assert status[0]["shipped_records"] == 1
        assert status[0]["failovers"] == 0
        assert status[0]["replicas"][0]["applied_lsn"] == 1
        assert status[0]["replicas"][0]["lag"] == 0
        assert status[0]["replicas"][0]["directory"] == "shard-00-r0"
        coordinator.close()
