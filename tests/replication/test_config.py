"""ReplicationConfig: validation and the feature-off default shape."""

from __future__ import annotations

import pytest

from repro.replication import ReplicationConfig, replica_dirname


class TestDefaults:
    def test_disabled_by_default(self) -> None:
        config = ReplicationConfig()
        assert not config.enabled
        assert config.replicas == 1
        assert config.auto_failover

    def test_frozen(self) -> None:
        config = ReplicationConfig()
        with pytest.raises(AttributeError):
            config.enabled = True  # type: ignore[misc]


class TestValidation:
    def test_replicas_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            ReplicationConfig(replicas=0)

    def test_promotion_window_must_be_nonnegative(self) -> None:
        with pytest.raises(ValueError):
            ReplicationConfig(promotion_seconds=-0.1)

    def test_zero_window_is_legal(self) -> None:
        assert ReplicationConfig(promotion_seconds=0.0).promotion_seconds == 0


def test_replica_dirname_is_flat_and_zero_padded() -> None:
    assert replica_dirname(3, 1) == "shard-03-r1"
    assert replica_dirname(12, 0) == "shard-12-r0"
