"""Hermes data placement engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.hermes import MaxBandwidthDpe, MinIoTimeDpe, RandomDpe, RoundRobinDpe
from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import PAGE


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="ram", capacity=10 * PAGE, bandwidth=4e9,
                          latency=1e-6, lanes=2)),
            Tier(TierSpec(name="ssd", capacity=20 * PAGE, bandwidth=2e9,
                          latency=1e-5, lanes=2)),
            Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e8,
                          latency=1e-3, lanes=4)),
        ]
    )


@pytest.fixture()
def status(hierarchy):
    return SystemMonitor(hierarchy).sample()


def _assert_tiles(placements, size) -> None:
    assert sum(n for _, n in placements) == size


class TestMaxBandwidth:
    def test_fits_in_top_tier(self, status) -> None:
        placements = MaxBandwidthDpe().place(5 * PAGE, status)
        assert placements == [("ram", 5 * PAGE)]

    def test_spills_in_order(self, status) -> None:
        placements = MaxBandwidthDpe().place(50 * PAGE, status)
        _assert_tiles(placements, 50 * PAGE)
        assert [t for t, _ in placements] == ["ram", "ssd", "pfs"]

    def test_grain_aligned_intermediate_pieces(self, hierarchy) -> None:
        hierarchy.by_name("ram").put("f", None, accounted_size=3 * PAGE + 100)
        status = SystemMonitor(hierarchy).sample()
        placements = MaxBandwidthDpe().place(40 * PAGE, status)
        _assert_tiles(placements, 40 * PAGE)
        for tier, nbytes in placements[:-1]:
            assert nbytes % PAGE == 0

    def test_skips_full_tier(self, hierarchy) -> None:
        hierarchy.by_name("ram").put("f", None, accounted_size=10 * PAGE)
        status = SystemMonitor(hierarchy).sample()
        placements = MaxBandwidthDpe().place(5 * PAGE, status)
        assert placements[0][0] == "ssd"

    def test_skips_unavailable_tier(self, hierarchy) -> None:
        hierarchy.by_name("ram").set_available(False)
        status = SystemMonitor(hierarchy).sample()
        placements = MaxBandwidthDpe().place(5 * PAGE, status)
        assert placements[0][0] == "ssd"

    def test_zero_size(self, status) -> None:
        assert MaxBandwidthDpe().place(0, status) == []

    def test_capacity_error_without_sink(self) -> None:
        h = StorageHierarchy(
            [Tier(TierSpec(name="only", capacity=PAGE, bandwidth=1e9,
                           latency=0))]
        )
        status = SystemMonitor(h).sample()
        with pytest.raises(CapacityError):
            MaxBandwidthDpe().place(10 * PAGE, status)


class TestRoundRobin:
    def test_rotates_start_tier(self, status) -> None:
        dpe = RoundRobinDpe()
        first = dpe.place(2 * PAGE, status)[0][0]
        second = dpe.place(2 * PAGE, status)[0][0]
        assert first != second

    def test_tiles_full_request(self, status) -> None:
        dpe = RoundRobinDpe()
        for _ in range(5):
            _assert_tiles(dpe.place(7 * PAGE, status), 7 * PAGE)


class TestRandom:
    def test_deterministic_with_seeded_rng(self, status) -> None:
        a = RandomDpe(np.random.default_rng(1)).place(2 * PAGE, status)
        b = RandomDpe(np.random.default_rng(1)).place(2 * PAGE, status)
        assert a == b

    def test_tiles(self, status) -> None:
        dpe = RandomDpe(np.random.default_rng(0))
        for _ in range(10):
            _assert_tiles(dpe.place(4 * PAGE, status), 4 * PAGE)


class TestMinIoTime:
    def test_prefers_fast_tier_when_idle(self, hierarchy, status) -> None:
        specs = {t.spec.name: t.spec for t in hierarchy}
        placements = MinIoTimeDpe(specs).place(2 * PAGE, status)
        assert placements[0][0] == "ram"

    def test_load_steers_away(self, hierarchy) -> None:
        specs = {t.spec.name: t.spec for t in hierarchy}
        for _ in range(50):
            hierarchy.by_name("ram").begin_io(PAGE)
        status = SystemMonitor(hierarchy).sample()
        placements = MinIoTimeDpe(specs).place(2 * PAGE, status)
        assert placements[0][0] != "ram"
