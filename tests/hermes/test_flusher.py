"""Asynchronous tier draining."""

from __future__ import annotations

import pytest

from repro.errors import TierError
from repro.hermes.flusher import TierFlusher
from repro.sim import Delay, Simulation
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import PAGE


def _hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="fast", capacity=10 * PAGE, bandwidth=1e9,
                          latency=0, lanes=2)),
            Tier(TierSpec(name="slow", capacity=None, bandwidth=1e8,
                          latency=0, lanes=2)),
        ]
    )


class TestDraining:
    def test_drains_above_high_water(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        for i in range(9):  # 90% full
            fast.put(f"k{i}", None, accounted_size=PAGE)
        flusher = TierFlusher(hierarchy, high_water=0.7, low_water=0.4,
                              poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(5.0)]))
        sim.run()
        assert flusher.stats.moves > 0
        assert fast.used / fast.spec.capacity <= 0.7
        assert hierarchy.by_name("slow").used > 0

    def test_fifo_order(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        for i in range(9):
            fast.put(f"k{i}", None, accounted_size=PAGE)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(5.0)]))
        sim.run()
        # Oldest keys moved first.
        moved = set(hierarchy.by_name("slow").keys())
        expected_first = {f"k{i}" for i in range(len(moved))}
        assert moved == expected_first

    def test_idle_below_high_water(self) -> None:
        hierarchy = _hierarchy()
        hierarchy.by_name("fast").put("k", None, accounted_size=2 * PAGE)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(1.0)]))
        sim.run()
        assert flusher.stats.moves == 0
        assert flusher.stats.polls > 10

    def test_payloads_travel_with_extents(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        for i in range(9):
            fast.put(f"k{i}", bytes([i]) * 100, accounted_size=PAGE)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(5.0)]))
        sim.run()
        slow = hierarchy.by_name("slow")
        for key in slow.keys():
            index = int(key[1:])
            assert slow.get(key) == bytes([index]) * 100

    def test_flush_io_charged_on_both_tiers(self) -> None:
        from repro.sim import TraceRecorder

        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        for i in range(9):
            fast.put(f"k{i}", None, accounted_size=PAGE)
        trace = TraceRecorder()
        sim = Simulation(hierarchy, trace=trace)
        sim.add_process(TierFlusher(hierarchy, poll_seconds=0.01).process(),
                        daemon=True)
        sim.add_process(iter([Delay(5.0)]))
        sim.run()
        tiers_touched = {rec.tier for rec in trace.records}
        assert tiers_touched == {"fast", "slow"}


class TestResilience:
    def test_down_source_tier_skipped(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        for i in range(9):
            fast.put(f"k{i}", None, accounted_size=PAGE)
        fast.set_available(False)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(1.0)]))
        sim.run()
        assert flusher.stats.moves == 0
        assert flusher.stats.skipped_unavailable > 0
        assert fast.used == 9 * PAGE  # nothing lost, nothing moved

    def test_resumes_after_recovery(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        for i in range(9):
            fast.put(f"k{i}", None, accounted_size=PAGE)
        fast.set_available(False)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)

        def recover():
            yield Delay(0.5)
            fast.set_available(True)
            yield Delay(2.0)

        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(recover())
        sim.run()
        assert flusher.stats.skipped_unavailable > 0
        assert flusher.stats.moves > 0
        assert fast.used / fast.spec.capacity <= 0.7

    def test_down_destination_defers_move(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        slow = hierarchy.by_name("slow")
        for i in range(9):
            fast.put(f"k{i}", bytes([i]) * 8, accounted_size=PAGE)
        slow.set_available(False)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(1.0)]))
        sim.run()
        # No destination available: nothing moved, nothing lost.
        assert flusher.stats.moves == 0
        assert sorted(fast.keys()) == sorted(f"k{i}" for i in range(9))

    def test_transient_destination_failure_retried_later(self) -> None:
        from repro.errors import TransientIOError
        from repro.tiers.device import Device

        class FailOnce(Device):
            def __init__(self, inner):
                self.inner = inner
                self.failures = 0

            def store(self, key, payload):
                if self.failures < 1:
                    self.failures += 1
                    raise TransientIOError("injected")
                self.inner.store(key, payload)

            def load(self, key):
                return self.inner.load(key)

            def delete(self, key):
                self.inner.delete(key)

            def __contains__(self, key):
                return key in self.inner

            def keys(self):
                return self.inner.keys()

        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        slow = hierarchy.by_name("slow")
        device = FailOnce(slow.device)
        slow.device = device
        for i in range(9):
            fast.put(f"k{i}", bytes([i]) * 8, accounted_size=PAGE)
        flusher = TierFlusher(hierarchy, poll_seconds=0.01)
        sim = Simulation(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
        sim.add_process(iter([Delay(5.0)]))
        sim.run()
        assert flusher.stats.failed_moves == 1
        assert flusher.stats.moves > 0  # drained despite the hiccup
        # Copy-before-evict: the key whose store failed is still readable
        # somewhere (source kept it until the copy landed).
        total_keys = set(fast.keys()) | set(slow.keys())
        assert {f"k{i}" for i in range(9)} <= total_keys


class TestValidation:
    def test_water_marks(self) -> None:
        h = _hierarchy()
        with pytest.raises(TierError):
            TierFlusher(h, high_water=0.4, low_water=0.6)
        with pytest.raises(TierError):
            TierFlusher(h, poll_seconds=0.0)
        with pytest.raises(TierError):
            TierFlusher(h, batch_moves=0)
