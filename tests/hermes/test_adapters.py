"""Hermes + static compression: the placement-then-compress comparator."""

from __future__ import annotations

import pytest

from repro.errors import TierError
from repro.hermes import HermesWithStaticCompression
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import KiB, PAGE


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="ram", capacity=64 * PAGE, bandwidth=4e9,
                          latency=1e-6, lanes=2)),
            Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e8,
                          latency=1e-3, lanes=4)),
        ]
    )


class TestPlacementBeforeCompression:
    def test_reservation_is_uncompressed(self, hierarchy, gamma_f64) -> None:
        """Hermes reserves by uncompressed size: after filling RAM's
        reservation, new tasks go to the PFS even though RAM physically
        holds far less (the paper's under-utilisation)."""
        adapter = HermesWithStaticCompression(hierarchy, codec="zlib")
        record1 = adapter.put("t1", 64 * PAGE, gamma_f64[: 64 * PAGE])
        assert all(r.tier == "ram" for r in record1.receipts)
        ram = hierarchy.by_name("ram")
        assert ram.used < 48 * PAGE  # compressed footprint, well under cap

        record2 = adapter.put("t2", 8 * PAGE, gamma_f64[: 8 * PAGE])
        assert all(r.tier == "pfs" for r in record2.receipts)

    def test_footprint_is_compressed(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="zlib")
        record = adapter.put("t", len(gamma_f64), gamma_f64)
        assert record.total_stored < len(gamma_f64)

    def test_none_codec_stores_raw(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="none")
        record = adapter.put("t", len(gamma_f64), gamma_f64)
        assert record.total_stored >= len(gamma_f64)

    def test_compression_time_charged(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="zlib")
        record = adapter.put("t", len(gamma_f64), gamma_f64)
        assert record.compress_seconds > 0

    def test_unknown_codec(self, hierarchy) -> None:
        with pytest.raises(TierError):
            HermesWithStaticCompression(hierarchy, codec="zstd")


class TestRoundtrip:
    def test_materialised_roundtrip(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="lz4")
        adapter.put("t", len(gamma_f64), gamma_f64)
        data, io_seconds, decompress_seconds = adapter.get("t")
        assert data == gamma_f64
        assert io_seconds > 0
        assert decompress_seconds > 0

    def test_modeled_put_uses_sample_ratio(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="zlib")
        record = adapter.put("t", 1024 * KiB, gamma_f64)  # sample-scaled
        assert record.total_stored < 1024 * KiB
        data, _, _ = adapter.get("t")
        assert data is None  # accounting-only

    def test_evict(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="lz4")
        adapter.put("t", len(gamma_f64), gamma_f64)
        assert adapter.evict("t") > 0
        assert hierarchy.total_used() == 0
        assert "t" not in adapter

    def test_duplicate_task(self, hierarchy, gamma_f64) -> None:
        adapter = HermesWithStaticCompression(hierarchy, codec="lz4")
        adapter.put("t", len(gamma_f64), gamma_f64)
        with pytest.raises(TierError):
            adapter.put("t", len(gamma_f64), gamma_f64)
