"""Hermes multi-tier buffering (the MTNC baseline)."""

from __future__ import annotations

import pytest

from repro.errors import TierError
from repro.hermes import HermesBuffering
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import PAGE


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="ram", capacity=8 * PAGE, bandwidth=4e9,
                          latency=1e-6, lanes=2)),
            Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e8,
                          latency=1e-3, lanes=4)),
        ]
    )


@pytest.fixture()
def buffering(hierarchy) -> HermesBuffering:
    return HermesBuffering(hierarchy)


class TestPut:
    def test_small_task_lands_on_top(self, buffering) -> None:
        record = buffering.put("t", 4 * PAGE)
        assert [r.tier for r in record.receipts] == ["ram"]
        assert record.total_stored == 4 * PAGE

    def test_large_task_spills(self, buffering) -> None:
        record = buffering.put("t", 20 * PAGE)
        assert [r.tier for r in record.receipts] == ["ram", "pfs"]
        assert record.total_stored == 20 * PAGE

    def test_no_compression_ever(self, buffering) -> None:
        record = buffering.put("t", 12 * PAGE)
        assert all(r.compress_seconds == 0.0 for r in record.receipts)
        assert all(r.stored_size == r.nbytes for r in record.receipts)

    def test_duplicate_task(self, buffering) -> None:
        buffering.put("t", PAGE)
        with pytest.raises(TierError):
            buffering.put("t", PAGE)

    def test_payload_stored_when_materialised(self, buffering) -> None:
        data = bytes(range(256)) * 16  # 4096 bytes
        buffering.put("t", len(data), data)
        restored, _ = buffering.get("t")
        assert restored == data


class TestGet:
    def test_modeled_get_returns_none_with_time(self, buffering) -> None:
        buffering.put("t", 20 * PAGE)
        data, io_seconds = buffering.get("t")
        assert data is None
        assert io_seconds > 0

    def test_get_unknown(self, buffering) -> None:
        with pytest.raises(TierError):
            buffering.get("ghost")

    def test_get_follows_relocation(self, buffering, hierarchy) -> None:
        """Reads find pieces wherever the flusher moved them."""
        data = bytes(4 * PAGE)
        buffering.put("t", len(data), data)
        ram, pfs = hierarchy.by_name("ram"), hierarchy.by_name("pfs")
        payload = ram.get("t/0")
        size = ram.evict("t/0")
        pfs.put("t/0", payload, accounted_size=size)
        restored, _ = buffering.get("t")
        assert restored == data
        assert buffering.locate("t/0").spec.name == "pfs"


class TestEvict:
    def test_evict_releases_tiers(self, buffering, hierarchy) -> None:
        buffering.put("t", 6 * PAGE)
        assert buffering.evict("t") == 6 * PAGE
        assert hierarchy.total_used() == 0
        assert "t" not in buffering

    def test_evict_unknown(self, buffering) -> None:
        with pytest.raises(TierError):
            buffering.evict("ghost")
