"""Seeded corruption fuzz: every codec family detects, heals, reads back.

Two layers:

* A per-codec sweep that plants one at-rest byte flip into a stored blob
  of *every* registered codec (the zlib/lzma/brotli class, the SIMD-class
  byte codecs, and the cache-line RAM codecs ``bdi``/``fpc``) and
  requires 100% detection + repair with byte-identical reads.
* An end-to-end engine fuzz over the real write path with repeated rot
  planted between writes — every acked write must read back identical
  after scrubbing, with zero read failures.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.codecs import CompressionLibraryPool
from repro.codecs.metadata import wrap_payload
from repro.core import HCompress, HCompressConfig
from repro.core.config import ScrubConfig
from repro.core.manager import CatalogEntry
from repro.datagen import synthetic_buffer
from repro.faults import LatentCorruptionInjector
from repro.hashing import content_hash64
from repro.units import KiB

#: Every pool codec plus the cache-line RAM codecs (not pool members).
ALL_CODECS = tuple(CompressionLibraryPool().names) + ("bdi", "fpc")

SCRUB = ScrubConfig(
    enabled=True, content_digests=True, verify_reads=True,
    scan_interval=0.0, max_repairs_per_step=64,
)


def _mirror(engine) -> dict[str, bytes]:
    out: dict[str, bytes] = {}
    for tier in engine.hierarchy:
        if not tier.available:
            continue
        device = getattr(tier.device, "inner", tier.device)
        for key in list(tier.keys()):
            if tier.extent(key).has_payload and key not in out:
                out[key] = device.load(key)
    return out


def _scrub_until_quiet(engine) -> list:
    repairs = []
    for _ in range(16):
        step = engine.scrub.step(force=True)
        if not step and not engine.scrub._pending:
            break
        repairs.extend(step)
    return repairs


class TestEveryCodecFamily:
    def test_all_codecs_detect_and_heal(self, seed,
                                        small_hierarchy) -> None:
        engine = HCompress(
            small_hierarchy, HCompressConfig(scrub=SCRUB), seed=seed
        )
        rng = np.random.default_rng(11)
        # Word-patterned data every codec family can act on (bdi wants
        # small deltas, fpc wants repeated 4-byte patterns, the entropy
        # coders want skew) — correctness, not ratio, is under test.
        base = (
            np.arange(1024, dtype="<u8") + rng.integers(0, 4, 1024)
        ).tobytes()
        originals: dict[str, bytes] = {}
        for codec in ALL_CODECS:
            data = base
            blob, _header = wrap_payload(data, 0, codec)
            key = f"fuzz-{codec}/0"
            tier = next(t for t in engine.hierarchy if t.fits(len(blob)))
            tier.put(key, blob)
            engine.manager._catalog[f"fuzz-{codec}"] = [
                CatalogEntry(
                    key, len(data), codec, zlib.crc32(blob),
                    content_hash64(data),
                )
            ]
            originals[f"fuzz-{codec}"] = data
        mirror = _mirror(engine)
        engine.manager.on_corrupt = lambda key, blob: mirror.get(key)
        fuzz_keys = {f"fuzz-{codec}/0" for codec in ALL_CODECS}
        planted = LatentCorruptionInjector(
            engine.hierarchy, seed=13
        ).corrupt(count=len(fuzz_keys), keys=fuzz_keys)
        assert {p.key for p in planted} == fuzz_keys

        repairs = _scrub_until_quiet(engine)
        # 100% detection, 100% repair, zero quarantine.
        assert engine.scrub.stats.corruptions == len(fuzz_keys)
        assert {r.key for r in repairs} == fuzz_keys
        assert all(r.outcome == "healed" for r in repairs)
        assert not engine.manager.quarantined
        for task_id, data in originals.items():
            assert engine.decompress(task_id).data == data, task_id
        engine.close()


class TestEngineFuzz:
    @pytest.mark.parametrize("fuzz_seed", [0, 1])
    def test_acked_writes_survive_repeated_rot(self, seed, small_hierarchy,
                                               fuzz_seed) -> None:
        engine = HCompress(
            small_hierarchy, HCompressConfig(scrub=SCRUB), seed=seed
        )
        rng = np.random.default_rng(fuzz_seed)
        rot = LatentCorruptionInjector(engine.hierarchy, seed=fuzz_seed)
        corpus = [
            ("float64", "gamma"), ("float32", "normal"),
            ("int32", "uniform"), ("float64", "exponential"),
        ]
        buffers: dict[str, bytes] = {}
        mirror: dict[str, bytes] = {}
        for index in range(12):
            dtype, dist = corpus[index % len(corpus)]
            data = synthetic_buffer(dtype, dist, 8 * KiB, rng)
            engine.compress(data, task_id=f"fuzz/t{index}")
            buffers[f"fuzz/t{index}"] = data
            mirror.update(_mirror(engine))  # refresh before planting
            if index % 3 == 2:
                rot.corrupt(count=1, keys=set(mirror))
                engine.manager.on_corrupt = (
                    lambda key, blob: mirror.get(key)
                )
                engine.scrub.step(force=True)
        _scrub_until_quiet(engine)
        assert engine.scrub.stats.corruptions == len(rot.planted)
        assert engine.scrub.stats.quarantined == 0
        failures = [
            task_id
            for task_id, data in buffers.items()
            if engine.decompress(task_id).data != data
        ]
        assert failures == []  # zero acked-read failures, zero byte diffs
        engine.close()
