"""ScrubConfig validation and the feature-off identity contract."""

from __future__ import annotations

import json

import pytest

from repro.core import HCompress, HCompressConfig
from repro.core.config import ResilienceConfig, ScrubConfig


class TestScrubConfigValidation:
    def test_defaults_are_off(self) -> None:
        config = ScrubConfig()
        assert not config.enabled
        assert not config.content_digests
        assert not config.verify_reads

    def test_verify_reads_requires_content_digests(self) -> None:
        with pytest.raises(ValueError):
            ScrubConfig(verify_reads=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scan_interval=-1.0),
            dict(bytes_per_step=0),
            dict(max_repairs_per_step=0),
            dict(max_brownout_level=-1),
        ],
    )
    def test_ranges_are_validated(self, kwargs) -> None:
        with pytest.raises(ValueError):
            ScrubConfig(**kwargs)

    def test_quarantine_after_repairs_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            ResilienceConfig(quarantine_after_repairs=0)


class TestFeatureOffIdentity:
    """Scrub off must be byte-identical to a build without the subsystem."""

    def test_default_engine_has_no_scrubber(self, seed,
                                            small_hierarchy) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        assert engine.scrub is None
        engine.close()

    def test_digests_off_keeps_legacy_entry_shape(self, seed,
                                                  small_hierarchy,
                                                  gamma_f64) -> None:
        engine = HCompress(small_hierarchy, seed=seed)
        engine.compress(gamma_f64, task_id="legacy")
        for entries in engine.manager.catalog_snapshot().values():
            assert all(len(entry) == 4 for entry in entries)
        # The snapshot JSON therefore round-trips with no 5th element.
        blob = json.dumps(engine.manager.catalog_snapshot())
        assert all(len(e) == 4 for e in json.loads(blob)["legacy"])
        engine.close()

    def test_digests_on_extends_entries(self, seed, small_hierarchy,
                                        gamma_f64) -> None:
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(scrub=ScrubConfig(content_digests=True)),
            seed=seed,
        )
        engine.compress(gamma_f64, task_id="digested")
        entries = engine.manager.catalog_snapshot()["digested"]
        assert all(len(entry) == 5 for entry in entries)
        assert all(isinstance(entry[4], int) for entry in entries)
        # Digests alone construct no daemon and verify nothing on read.
        assert engine.scrub is None
        engine.close()

    def test_piece_digest_identity_cache(self, seed, small_hierarchy,
                                         gamma_f64) -> None:
        """The per-buffer digest cache never conflates distinct content.

        Bursts reuse one sample object, so the manager caches the piece
        digest per (buffer identity, offset, length); alternating two
        different buffers of the same length must still record two
        different, content-correct digests.
        """
        from repro.hashing import content_hash64

        engine = HCompress(
            small_hierarchy,
            HCompressConfig(scrub=ScrubConfig(content_digests=True)),
            seed=seed,
        )
        other = bytes(reversed(gamma_f64))
        for index in range(4):
            data = gamma_f64 if index % 2 == 0 else other
            engine.compress(data, task_id=f"alt.{index}")
        digests = [
            tuple(e.digest for e in engine.manager.task_entries(f"alt.{i}"))
            for i in range(4)
        ]
        # Identical buffers agree, different buffers differ — the cache
        # keys on object identity and never crosses contents.
        assert digests[0] == digests[2]
        assert digests[1] == digests[3]
        assert digests[0] != digests[1]
        if len(digests[0]) == 1:
            assert digests[0][0] == content_hash64(gamma_f64)
            assert digests[1][0] == content_hash64(other)
        # Reads verify every digest for real on freshly decoded bytes.
        for index in range(4):
            expected = gamma_f64 if index % 2 == 0 else other
            assert engine.decompress(f"alt.{index}").data == expected
        engine.close()

    def test_both_entry_shapes_restore(self, seed, small_hierarchy,
                                       gamma_f64, tmp_path) -> None:
        from repro.core.config import RecoveryConfig

        config = HCompressConfig(
            recovery=RecoveryConfig(
                enabled=True, directory=str(tmp_path), fsync=False
            ),
            scrub=ScrubConfig(content_digests=True),
        )
        engine = HCompress(small_hierarchy, config, seed=seed)
        engine.compress(gamma_f64, task_id="mixed")
        # Hand-extend the catalog with a legacy 4-element entry alongside
        # the digest-bearing one, then checkpoint: both shapes must parse.
        engine.manager._catalog["mixed"] = [
            entry._replace(digest=None) if index % 2 else entry
            for index, entry in enumerate(
                engine.manager.task_entries("mixed")
            )
        ]
        engine.checkpoint()
        engine.close()
        restored = HCompress.restore(
            tmp_path, small_hierarchy, config=config, seed=seed
        )
        assert restored.decompress("mixed").data == gamma_f64
        restored.close()
