"""Crash-consistency of scrub repairs: the swept ``scrub.*`` sites."""

from __future__ import annotations

import pytest

from repro.errors import HCompressError
from repro.faults import CrashConfig, run_crash_recovery
from repro.recovery import CRASH_SITES, CrashPlan

SCRUB_SITES = tuple(s for s in CRASH_SITES if s.startswith("scrub."))

SCRUB_CRASH = CrashConfig(scrub=True, corrupt_every=1, lifecycle=False)


class TestConfig:
    def test_corrupt_every_requires_scrub(self) -> None:
        with pytest.raises(HCompressError):
            CrashConfig(corrupt_every=2)

    def test_scrub_sites_are_registered(self) -> None:
        assert SCRUB_SITES == (
            "scrub.pre_repair",
            "scrub.post_copy",
            "scrub.post_journal",
            "scrub.post_evict",
        )


class TestScrubCrashSites:
    @pytest.mark.parametrize("site", SCRUB_SITES)
    def test_crash_mid_repair_holds(self, site) -> None:
        outcome = run_crash_recovery(
            plan=CrashPlan(site=site, hit=1, seed=7), config=SCRUB_CRASH
        )
        assert outcome.crashed, site
        assert outcome.holds, outcome.summary()
        assert outcome.corruptions_planted > 0
        # The restored store ends fully healed: nothing quarantined,
        # fsck-clean, every acked write byte-identical.
        assert outcome.quarantined_after == 0
        assert outcome.fsck_errors_after == 0

    def test_uncrashed_scrub_run_heals_everything(self) -> None:
        outcome = run_crash_recovery(plan=None, config=SCRUB_CRASH)
        assert not outcome.crashed
        assert outcome.holds, outcome.summary()
        assert outcome.corruptions_planted > 0
        assert outcome.scrub_repairs >= outcome.corruptions_planted
        assert outcome.quarantined_after == 0
        assert outcome.fsck_errors_after == 0
