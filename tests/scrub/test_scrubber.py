"""Scrubber behaviour: detection, the repair ladder, quarantine, QoS."""

from __future__ import annotations

import pytest

from repro.core import HCompress, HCompressConfig
from repro.core.config import ScrubConfig
from repro.errors import IntegrityError
from repro.faults import LatentCorruptionInjector

SCRUB = ScrubConfig(
    enabled=True, content_digests=True, verify_reads=True, scan_interval=0.0
)


def _mirror(engine) -> dict[str, bytes]:
    """Pristine stored blobs keyed by piece key (the replica stand-in)."""
    out: dict[str, bytes] = {}
    for tier in engine.hierarchy:
        if not tier.available:
            continue
        device = getattr(tier.device, "inner", tier.device)
        for key in list(tier.keys()):
            if tier.extent(key).has_payload and key not in out:
                out[key] = device.load(key)
    return out


@pytest.fixture()
def engine(seed, small_hierarchy):
    engine = HCompress(
        small_hierarchy, HCompressConfig(scrub=SCRUB), seed=seed
    )
    yield engine
    engine.close()


class TestDetection:
    def test_clean_catalog_yields_no_repairs(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="clean")
        assert engine.scrub.step(force=True) == []
        assert engine.scrub.stats.corruptions == 0
        assert engine.scrub.stats.pieces_scanned > 0
        assert engine.scrub.stats.bytes_scanned > 0

    def test_planted_rot_is_detected(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="rotting")
        planted = LatentCorruptionInjector(engine.hierarchy, seed=1).corrupt()
        assert len(planted) == 1
        engine.scrub.step(force=True)
        assert engine.scrub.stats.corruptions == 1


class TestRepairLadder:
    def test_hook_heals_with_a_generation_rewrite(self, engine,
                                                  gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="healme")
        mirror = _mirror(engine)
        engine.manager.on_corrupt = lambda key, blob: mirror.get(key)
        LatentCorruptionInjector(engine.hierarchy, seed=2).corrupt()
        repairs = engine.scrub.step(force=True)
        assert [r.outcome for r in repairs] == ["healed"]
        repair = repairs[0]
        assert repair.source == "hook"
        assert "/g1/" in repair.new_key
        # The rotten key is gone from every tier; the new one is live.
        assert engine.hierarchy.find(repair.key) is None
        assert engine.hierarchy.find(repair.new_key) is not None
        assert engine.decompress("healme").data == gamma_f64
        assert engine.scrub.stats.rewrites == 1
        assert not engine.manager.quarantined

    def test_survivor_copy_heals(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="copied")
        entry = engine.manager.task_entries("copied")[0]
        home = engine.hierarchy.find(entry.key)
        pristine = home.get(entry.key)
        other = next(t for t in engine.hierarchy if t is not home)
        other.put(entry.key, pristine)
        # Rot the home copy only.
        device = getattr(home.device, "inner", home.device)
        blob = bytearray(pristine)
        blob[len(blob) // 2] ^= 0xFF
        device.store(entry.key, bytes(blob))
        repairs = engine.scrub.step(force=True)
        assert [(r.source, r.outcome) for r in repairs] == [
            ("survivor", "healed")
        ]
        # Both old copies (rotten home + survivor) were reclaimed.
        assert engine.hierarchy.find(entry.key) is None
        assert engine.decompress("copied").data == gamma_f64

    def test_reread_heals_transient_rot_in_place(self, engine,
                                                 gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="flicker")
        entry = engine.manager.task_entries("flicker")[0]
        home = engine.hierarchy.find(entry.key)

        class FlickerOnce:
            """Corrupts exactly one load; the stored bytes stay intact."""

            def __init__(self, inner) -> None:
                self.inner = inner
                self.fired = False

            def load(self, key: str) -> bytes:
                blob = self.inner.load(key)
                if key == entry.key and not self.fired:
                    self.fired = True
                    return bytes([blob[0] ^ 0xFF]) + blob[1:]
                return blob

            def __getattr__(self, name):
                return getattr(self.inner, name)

        home.device = FlickerOnce(home.device)
        repairs = engine.scrub.step(force=True)
        assert [(r.source, r.outcome) for r in repairs] == [
            ("reread", "healed")
        ]
        assert repairs[0].new_key == ""  # no rewrite: state was never wrong
        assert engine.scrub.stats.rewrites == 0
        assert engine.decompress("flicker").data == gamma_f64


class TestQuarantine:
    def test_exhausted_ladder_quarantines(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="doomed")
        planted = LatentCorruptionInjector(engine.hierarchy, seed=3).corrupt()
        repairs = engine.scrub.step(force=True)
        assert [r.outcome for r in repairs] == ["quarantined"]
        assert planted[0].key in engine.manager.quarantined
        # Foreground reads now fail fast and typed.
        with pytest.raises(IntegrityError):
            engine.decompress("doomed")
        # The scrubber skips known-bad keys instead of re-burning budget.
        corruptions = engine.scrub.stats.corruptions
        assert engine.scrub.step(force=True) == []
        assert engine.scrub.stats.corruptions == corruptions

    def test_late_replica_lifts_the_quarantine(self, engine,
                                               gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="saved")
        mirror = _mirror(engine)
        LatentCorruptionInjector(engine.hierarchy, seed=4).corrupt()
        assert [
            r.outcome for r in engine.scrub.step(force=True)
        ] == ["quarantined"]
        # While no repair source exists the key is skipped, not
        # re-quarantined — quarantine is one event, not one per pass.
        events = engine.manager.quarantine_events
        assert engine.scrub.step(force=True) == []
        assert engine.manager.quarantine_events == events
        # A replica source appearing later (standby catch-up, operator
        # restore) heals the piece and lifts the quarantine — the
        # scrubber itself retries the ladder's upper rungs, no manual
        # un-quarantine needed.
        engine.manager.on_corrupt = lambda key, blob: mirror.get(key)
        repairs = engine.scrub.step(force=True)
        assert [r.outcome for r in repairs] == ["healed"]
        assert not engine.manager.quarantined
        assert engine.manager.quarantine_events == events
        assert engine.decompress("saved").data == gamma_f64


class _StubBrownout:
    def __init__(self, level: int) -> None:
        self.level = level


class _StubQos:
    def __init__(self, level: int) -> None:
        self.brownout = _StubBrownout(level)


class TestDaemonDiscipline:
    def test_rate_limit_without_force(self, seed, small_hierarchy,
                                      gamma_f64) -> None:
        from repro.sim.clock import SimClock

        clock = SimClock()
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(
                scrub=ScrubConfig(
                    enabled=True, content_digests=True, scan_interval=10.0
                )
            ),
            seed=seed,
            clock=lambda: clock.now,
        )
        engine.compress(gamma_f64, task_id="t0")
        engine.scrub.step()
        assert engine.scrub.stats.steps == 1
        engine.scrub.step()  # inside the interval: skipped
        assert engine.scrub.stats.steps == 1
        clock.advance(10.1)
        engine.scrub.step()
        assert engine.scrub.stats.steps == 2
        engine.close()

    def test_brownout_pauses_the_scrubber(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="t0")
        engine.qos = _StubQos(level=2)
        assert engine.scrub.step(force=True) == []
        assert engine.scrub.stats.paused == 1
        assert engine.scrub.stats.steps == 0
        engine.qos = _StubQos(level=0)
        engine.scrub.step(force=True)
        assert engine.scrub.stats.steps == 1

    def test_bytes_budget_bounds_one_step(self, seed, small_hierarchy,
                                          gamma_f64) -> None:
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(
                scrub=ScrubConfig(
                    enabled=True, content_digests=True, scan_interval=0.0,
                    bytes_per_step=1,
                )
            ),
            seed=seed,
        )
        for index in range(4):
            engine.compress(gamma_f64, task_id=f"t{index}")
        engine.scrub.step(force=True)
        status = engine.scrub.status()
        assert status["tasks_scanned"] == 1  # budget stops the walk
        assert status["pending_tasks"] == 3
        # Later steps resume the same pass instead of restarting it.
        engine.scrub.step(force=True)
        assert engine.scrub.status()["tasks_scanned"] == 2
        assert engine.scrub.stats.scans == 1
        engine.close()

    def test_status_shape(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="t0")
        engine.scrub.step(force=True)
        status = engine.scrub.status()
        assert status["enabled"] is True
        for key in (
            "scans", "steps", "paused", "tasks_scanned", "pieces_scanned",
            "bytes_scanned", "corruptions", "repairs", "rewrites",
            "quarantined", "failed", "pending_tasks",
        ):
            assert key in status
