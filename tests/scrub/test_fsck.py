"""``hcompress fsck``: offline store checks, live engine checks, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core import HCompress, HCompressConfig
from repro.core.config import RecoveryConfig, ScrubConfig
from repro.faults import LatentCorruptionInjector
from repro.recovery.journal import JOURNAL_NAME
from repro.recovery.snapshot import SNAPSHOT_NAME
from repro.scrub import fsck_engine, fsck_store
from repro.units import GiB, MiB


def _checkpointed_store(directory, seed, hierarchy, gamma_f64,
                        tasks: int = 3):
    config = HCompressConfig(
        recovery=RecoveryConfig(
            enabled=True, directory=str(directory), fsync=False
        ),
        scrub=ScrubConfig(content_digests=True),
    )
    engine = HCompress(hierarchy, config, seed=seed)
    for index in range(tasks):
        engine.compress(gamma_f64, task_id=f"fsck-{index}")
    engine.checkpoint()
    engine.close()


class TestOfflineStore:
    def test_clean_store_is_clean(self, tmp_path, seed, small_hierarchy,
                                  gamma_f64) -> None:
        _checkpointed_store(tmp_path, seed, small_hierarchy, gamma_f64)
        report = fsck_store(tmp_path)
        assert report.clean
        assert report.exit_code == 0
        assert report.tasks == 3
        assert report.pieces >= 3

    def test_missing_directory_is_fatal(self, tmp_path) -> None:
        report = fsck_store(tmp_path / "nope")
        assert report.exit_code == 3

    def test_empty_directory_is_fatal(self, tmp_path) -> None:
        report = fsck_store(tmp_path)
        assert report.exit_code == 3

    def test_torn_tail_is_warned_and_repairable(self, tmp_path, seed,
                                                small_hierarchy,
                                                gamma_f64) -> None:
        _checkpointed_store(tmp_path, seed, small_hierarchy, gamma_f64)
        with open(tmp_path / JOURNAL_NAME, "ab") as handle:
            handle.write(b"torn-frame-garbage")
        report = fsck_store(tmp_path)
        assert report.exit_code == 1
        assert any(f.check == "journal.tail" for f in report.findings)
        repaired = fsck_store(tmp_path, repair=True)
        assert any(
            f.check == "journal.tail" and f.repaired
            for f in repaired.findings
        )
        assert fsck_store(tmp_path).clean  # second pass proves the repair

    def test_malformed_snapshot_is_fatal(self, tmp_path, seed,
                                         small_hierarchy,
                                         gamma_f64) -> None:
        _checkpointed_store(tmp_path, seed, small_hierarchy, gamma_f64)
        (tmp_path / SNAPSHOT_NAME).write_text("{not json")
        assert fsck_store(tmp_path).exit_code == 3

    def test_leftover_tmp_files_are_repairable(self, tmp_path, seed,
                                               small_hierarchy,
                                               gamma_f64) -> None:
        _checkpointed_store(tmp_path, seed, small_hierarchy, gamma_f64)
        (tmp_path / "snapshot.json.tmp").write_text("{}")
        report = fsck_store(tmp_path)
        assert report.exit_code == 1
        fsck_store(tmp_path, repair=True)
        assert not (tmp_path / "snapshot.json.tmp").exists()
        assert fsck_store(tmp_path).clean

    def test_report_to_dict_shape(self, tmp_path, seed, small_hierarchy,
                                  gamma_f64) -> None:
        _checkpointed_store(tmp_path, seed, small_hierarchy, gamma_f64)
        doc = fsck_store(tmp_path).to_dict()
        for key in (
            "store", "clean", "exit_code", "tasks", "pieces",
            "digests_checked", "errors", "warnings", "findings",
        ):
            assert key in doc
        json.dumps(doc)  # JSON-serializable end to end


class TestShardedStore:
    def test_two_shard_replicated_root(self, tmp_path) -> None:
        from repro.replication import ReplicationConfig
        from repro.shard import ShardConfig, ShardedHCompress
        from repro.tiers import ares_specs

        specs = ares_specs(128 * MiB, 256 * MiB, 8 * GiB, nodes=4)
        sharded = ShardedHCompress(
            specs,
            HCompressConfig(
                recovery=RecoveryConfig(fsync=False),
                scrub=ScrubConfig(content_digests=True),
            ),
            ShardConfig(
                shards=2,
                directory=str(tmp_path),
                replication=ReplicationConfig(enabled=True, replicas=1),
            ),
        )
        data = bytes(range(256)) * 64
        for index in range(8):
            sharded.compress(
                data, task_id=f"s-{index}", tenant=f"tenant-{index % 4}"
            )
        sharded.checkpoint()
        sharded.close()

        report = fsck_store(tmp_path)
        assert report.clean, [f.detail for f in report.findings]
        assert report.tasks >= 8  # primaries and replicas both counted
        # Every shard and replica directory was visited (prefixed checks
        # appear only on findings; prove coverage via a planted fault).
        victim = tmp_path / "shard-00-r0" / JOURNAL_NAME
        with open(victim, "ab") as handle:
            handle.write(b"rot")
        broken = fsck_store(tmp_path)
        assert broken.exit_code == 1
        assert any(
            f.check.startswith("shard-00-r0:") for f in broken.findings
        )

    def test_missing_shard_directory_is_an_error(self, tmp_path) -> None:
        import shutil

        from repro.shard import ShardConfig, ShardedHCompress
        from repro.tiers import ares_specs

        specs = ares_specs(128 * MiB, 256 * MiB, 8 * GiB, nodes=4)
        sharded = ShardedHCompress(
            specs,
            HCompressConfig(recovery=RecoveryConfig(fsync=False)),
            ShardConfig(shards=2, directory=str(tmp_path)),
        )
        sharded.compress(b"x" * 4096, task_id="t", tenant="tenant-0")
        sharded.close()
        shutil.rmtree(tmp_path / "shard-01")
        report = fsck_store(tmp_path)
        assert report.exit_code == 2
        assert any(
            f.check == "manifest.directories" for f in report.findings
        )


class TestLiveEngine:
    @pytest.fixture()
    def engine(self, seed, small_hierarchy):
        engine = HCompress(
            small_hierarchy,
            HCompressConfig(
                scrub=ScrubConfig(
                    enabled=True, content_digests=True, verify_reads=True,
                    scan_interval=0.0,
                )
            ),
            seed=seed,
        )
        yield engine
        engine.close()

    def test_clean_engine(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="live")
        report = fsck_engine(engine, digest_samples=16)
        assert report.clean
        assert report.digests_checked > 0

    def test_latent_rot_is_caught_by_spot_check(self, engine,
                                                gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="rotting")
        LatentCorruptionInjector(engine.hierarchy, seed=5).corrupt()
        report = fsck_engine(engine, digest_samples=64)
        assert report.exit_code == 2
        assert any(f.check == "digest.mismatch" for f in report.findings)

    def test_orphan_is_flagged_and_repairable(self, engine,
                                              gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="live")
        tier = next(iter(engine.hierarchy))
        tier.put("stray/0", b"abandoned")
        report = fsck_engine(engine)
        assert any(f.check == "extent.orphan" for f in report.findings)
        fsck_engine(engine, repair=True)
        assert "stray/0" not in tier
        assert fsck_engine(engine).clean

    def test_quarantined_pieces_are_warned(self, engine, gamma_f64) -> None:
        engine.compress(gamma_f64, task_id="doomed")
        LatentCorruptionInjector(engine.hierarchy, seed=6).corrupt()
        engine.scrub.step(force=True)  # no repair source -> quarantine
        report = fsck_engine(engine)
        assert any(f.check == "quarantine" for f in report.findings)
        assert report.exit_code >= 1


class TestCli:
    def test_fsck_exit_codes_and_json(self, tmp_path, seed,
                                      small_hierarchy, gamma_f64,
                                      capsys) -> None:
        _checkpointed_store(tmp_path, seed, small_hierarchy, gamma_f64)
        assert cli_main(["fsck", str(tmp_path)]) == 0
        capsys.readouterr()
        with open(tmp_path / JOURNAL_NAME, "ab") as handle:
            handle.write(b"rot")
        assert cli_main(["fsck", str(tmp_path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 1
        assert cli_main(["fsck", str(tmp_path), "--repair"]) == 1
        capsys.readouterr()
        assert cli_main(["fsck", str(tmp_path)]) == 0
