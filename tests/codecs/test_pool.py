"""Compression Library Pool: roster, measurement, profiles."""

from __future__ import annotations

import pytest

from repro.codecs import (
    NOMINAL_PROFILES,
    CompressionLibraryPool,
    PAPER_LIBRARIES,
    get_profile,
    nominal_duration,
)
from repro.errors import UnknownCodecError
from repro.units import MB


class TestRoster:
    def test_default_is_paper_roster(self) -> None:
        pool = CompressionLibraryPool()
        assert pool.names[0] == "none"
        assert set(pool.names[1:]) == set(PAPER_LIBRARIES)
        assert len(pool) == 12

    def test_custom_roster(self) -> None:
        pool = CompressionLibraryPool(["zlib", "lz4"])
        assert pool.names == ("none", "zlib", "lz4")

    def test_none_never_duplicated(self) -> None:
        pool = CompressionLibraryPool(["none", "zlib"])
        assert pool.names == ("none", "zlib")

    def test_bad_roster_fails_eagerly(self) -> None:
        with pytest.raises(UnknownCodecError):
            CompressionLibraryPool(["zstd"])

    def test_lookup_by_index_and_name(self) -> None:
        pool = CompressionLibraryPool()
        assert pool.codec(0).meta.name == "none"
        assert pool.codec("zlib").meta.name == "zlib"
        assert pool.index("none") == 0

    def test_contains(self) -> None:
        pool = CompressionLibraryPool()
        assert "zlib" in pool
        assert "zstd" not in pool

    def test_unknown_member_lookup(self) -> None:
        pool = CompressionLibraryPool(["zlib"])
        with pytest.raises(KeyError):
            pool.codec("lz4")  # registered codec, but not in this pool


class TestMeasurement:
    def test_measure_reports_ratio(self, gamma_f64) -> None:
        pool = CompressionLibraryPool()
        cost = pool.measure("zlib", gamma_f64)
        assert cost.ratio > 1.2
        assert cost.original_size == len(gamma_f64)
        assert cost.compress_mbps > 0
        assert cost.decompress_mbps > 0

    def test_measure_all_skips_identity(self, gamma_f64) -> None:
        pool = CompressionLibraryPool(["zlib", "lz4"])
        costs = pool.measure_all(gamma_f64[:8192])
        assert set(costs) == {"zlib", "lz4"}


class TestProfiles:
    def test_every_pool_member_has_profile(self) -> None:
        pool = CompressionLibraryPool()
        for name in pool.names:
            assert get_profile(name).name == name

    def test_speed_ordering_matches_families(self) -> None:
        """Byte-LZ family faster than entropy, which beats archival."""
        assert get_profile("lz4").compress_mbps > get_profile("huffman").compress_mbps
        assert get_profile("huffman").compress_mbps > get_profile("zlib").compress_mbps
        assert get_profile("zlib").compress_mbps > get_profile("lzma").compress_mbps

    def test_ratio_hints_ordering(self) -> None:
        """Heavier codecs promise better ratios on skewed data."""
        assert get_profile("lzma").hint("gamma") > get_profile("lz4").hint("gamma")
        assert get_profile("zlib").hint("gamma") > get_profile("snappy").hint("gamma")

    def test_uniform_data_hint_near_one(self) -> None:
        for name in NOMINAL_PROFILES:
            assert get_profile(name).hint("uniform") <= 1.1

    def test_unknown_profile(self) -> None:
        with pytest.raises(UnknownCodecError):
            get_profile("zstd")

    def test_nominal_duration(self) -> None:
        seconds = nominal_duration("zlib", 30 * MB, "compress")
        assert seconds == pytest.approx(1.0)
        assert nominal_duration("zlib", 30 * MB, "decompress") < seconds

    def test_nominal_duration_bad_direction(self) -> None:
        with pytest.raises(ValueError):
            nominal_duration("zlib", 100, "sideways")

    def test_nominal_seconds_via_pool(self) -> None:
        pool = CompressionLibraryPool()
        assert pool.nominal_seconds("lz4", 730 * MB) == pytest.approx(1.0)
