"""Burrows-Wheeler transform: suffix array correctness and inversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.bwt import bwt_decode, bwt_encode, suffix_array
from repro.errors import CorruptDataError


def _naive_suffix_array(arr: np.ndarray) -> np.ndarray:
    suffixes = [tuple(arr[i:]) for i in range(len(arr))]
    return np.array(sorted(range(len(arr)), key=lambda i: suffixes[i]))


class TestSuffixArray:
    @pytest.mark.parametrize(
        "text",
        [b"banana", b"mississippi", b"aaaaaa", b"abcabcabc", b"z", b"ba"],
    )
    def test_against_naive(self, text: bytes) -> None:
        arr = np.frombuffer(text, dtype=np.uint8).astype(np.int32)
        assert (suffix_array(arr) == _naive_suffix_array(arr)).all()

    def test_random_against_naive(self) -> None:
        rng = np.random.default_rng(17)
        for _ in range(10):
            arr = rng.integers(0, 5, rng.integers(2, 200)).astype(np.int32)
            assert (suffix_array(arr) == _naive_suffix_array(arr)).all()

    def test_empty_and_singleton(self) -> None:
        assert suffix_array(np.array([], dtype=np.int32)).size == 0
        assert (suffix_array(np.array([7], dtype=np.int32)) == [0]).all()

    def test_is_permutation(self) -> None:
        rng = np.random.default_rng(3)
        arr = rng.integers(0, 256, 5000).astype(np.int32)
        sa = suffix_array(arr)
        assert sorted(sa.tolist()) == list(range(5000))


class TestBwt:
    def test_banana_known_vector(self) -> None:
        # Sorted rotations of "banana$" give last column "annb$aa"; with
        # the sentinel elided the column is "annbaa" at primary index 4.
        column, primary = bwt_encode(b"banana")
        assert column == b"annbaa"
        assert primary == 4

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"banana",
            b"the quick brown fox " * 50,
            bytes(1000),
            bytes(range(256)),
        ],
    )
    def test_roundtrip(self, data: bytes) -> None:
        column, primary = bwt_encode(data)
        assert len(column) == len(data)
        assert bwt_decode(column, primary) == data

    def test_roundtrip_random(self) -> None:
        rng = np.random.default_rng(23)
        for _ in range(8):
            data = rng.integers(0, 256, rng.integers(1, 3000), dtype=np.uint8).tobytes()
            column, primary = bwt_encode(data)
            assert bwt_decode(column, primary) == data

    def test_groups_similar_contexts(self) -> None:
        """BWT of periodic text has longer runs than the input."""
        data = b"abracadabra" * 200
        column, _ = bwt_encode(data)

        def runs(buf: bytes) -> int:
            return 1 + sum(1 for a, b in zip(buf, buf[1:]) if a != b)

        assert runs(column) < runs(data) / 2

    def test_decode_bad_index(self) -> None:
        column, _ = bwt_encode(b"hello world")
        with pytest.raises(CorruptDataError):
            bwt_decode(column, len(column) + 5)
        with pytest.raises(CorruptDataError):
            bwt_decode(column, -1)

    def test_decode_empty_nonzero_index(self) -> None:
        with pytest.raises(CorruptDataError):
            bwt_decode(b"", 3)
