"""The 16-byte sub-task header (paper §IV-G2)."""

from __future__ import annotations

import pytest

from repro.codecs import HEADER_SIZE, SubTaskHeader, unwrap_payload, wrap_payload
from repro.errors import SchemaError


class TestHeader:
    def test_is_exactly_sixteen_bytes(self) -> None:
        assert HEADER_SIZE == 16
        header = SubTaskHeader(0, 100, 1, 50)
        assert len(header.pack()) == 16

    def test_pack_unpack_roundtrip(self) -> None:
        header = SubTaskHeader(4096, 8192, 5, 3000)
        assert SubTaskHeader.unpack(header.pack()) == header

    def test_u32_bounds_enforced(self) -> None:
        with pytest.raises(SchemaError):
            SubTaskHeader(-1, 0, 0, 0)
        with pytest.raises(SchemaError):
            SubTaskHeader(0, 2**32, 0, 0)

    def test_unpack_short_buffer(self) -> None:
        with pytest.raises(SchemaError):
            SubTaskHeader.unpack(b"\x00" * 8)

    def test_unpack_ignores_trailing_bytes(self) -> None:
        header = SubTaskHeader(1, 2, 3, 4)
        assert SubTaskHeader.unpack(header.pack() + b"payload") == header


class TestWrapUnwrap:
    def test_roundtrip_with_real_codec(self) -> None:
        data = b"compress me please " * 500
        blob, header = wrap_payload(data, start_offset=4096, codec_name="zlib")
        assert header.start_offset == 4096
        assert header.length == len(data)
        assert header.codec_id == 1
        assert len(blob) == HEADER_SIZE + header.resulting_size
        restored, parsed = unwrap_payload(blob)
        assert restored == data
        assert parsed == header

    def test_identity_codec_wrap(self) -> None:
        data = b"raw bytes"
        blob, header = wrap_payload(data, 0, "none")
        assert header.codec_id == 0
        assert header.resulting_size == len(data)
        assert unwrap_payload(blob)[0] == data

    def test_decode_is_self_describing(self) -> None:
        """The reader needs only the blob — no external codec hint."""
        for codec in ("lz4", "bzip2", "huffman", "snappy"):
            data = b"the same input bytes " * 300
            blob, _ = wrap_payload(data, 0, codec)
            restored, header = unwrap_payload(blob)
            assert restored == data

    def test_truncated_payload_detected(self) -> None:
        blob, _ = wrap_payload(b"hello world " * 100, 0, "zlib")
        with pytest.raises(SchemaError):
            unwrap_payload(blob[:-5])

    def test_header_length_mismatch_detected(self) -> None:
        data = b"x" * 1000
        blob, header = wrap_payload(data, 0, "none")
        tampered = SubTaskHeader(
            header.start_offset, header.length + 1, header.codec_id,
            header.resulting_size,
        )
        with pytest.raises(SchemaError):
            unwrap_payload(tampered.pack() + blob[HEADER_SIZE:])

    def test_wrap_by_codec_id(self) -> None:
        blob, header = wrap_payload(b"data " * 200, 0, 5)  # id 5 = lz4
        assert header.codec_id == 5
        assert unwrap_payload(blob)[0] == b"data " * 200
