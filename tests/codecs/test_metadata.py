"""The 16-byte sub-task header (paper §IV-G2)."""

from __future__ import annotations

import pytest

from repro.codecs import HEADER_SIZE, SubTaskHeader, unwrap_payload, wrap_payload
from repro.errors import SchemaError


class TestHeader:
    def test_is_exactly_sixteen_bytes(self) -> None:
        assert HEADER_SIZE == 16
        header = SubTaskHeader(0, 100, 1, 50)
        assert len(header.pack()) == 16

    def test_pack_unpack_roundtrip(self) -> None:
        header = SubTaskHeader(4096, 8192, 5, 3000)
        assert SubTaskHeader.unpack(header.pack()) == header

    def test_u32_bounds_enforced(self) -> None:
        with pytest.raises(SchemaError):
            SubTaskHeader(-1, 0, 0, 0)
        with pytest.raises(SchemaError):
            SubTaskHeader(0, 2**32, 0, 0)
        with pytest.raises(SchemaError):
            SubTaskHeader(0, -1, 0, 0)
        with pytest.raises(SchemaError):
            SubTaskHeader(0, 0, 0, 2**32)

    def test_end_offset_overflow_rejected(self) -> None:
        # start + length individually fit u32 but the end offset does not:
        # a reassembly slice from such a header would mis-place data.
        with pytest.raises(SchemaError, match="overflow"):
            SubTaskHeader(2**31, 2**31, 0, 10)
        # The boundary itself is fine.
        SubTaskHeader(2**32 - 2, 1, 0, 10)

    def test_unpack_unknown_codec_id_is_typed(self) -> None:
        import struct

        blob = struct.pack("<IIII", 0, 100, 31337, 50)
        with pytest.raises(SchemaError, match="unknown codec id"):
            SubTaskHeader.unpack(blob)

    def test_unpack_corrupt_field_is_typed_not_a_crash(self) -> None:
        # Random garbage must surface as SchemaError, never KeyError /
        # IndexError / struct.error leaking into the read path.
        import random

        rng = random.Random(0xBEEF)
        for _ in range(200):
            blob = bytes(rng.randrange(256) for _ in range(HEADER_SIZE))
            try:
                SubTaskHeader.unpack(blob)
            except SchemaError:
                pass

    def test_unpack_short_buffer(self) -> None:
        with pytest.raises(SchemaError):
            SubTaskHeader.unpack(b"\x00" * 8)

    def test_unpack_ignores_trailing_bytes(self) -> None:
        header = SubTaskHeader(1, 2, 3, 4)
        assert SubTaskHeader.unpack(header.pack() + b"payload") == header


class TestWrapUnwrap:
    def test_roundtrip_with_real_codec(self) -> None:
        data = b"compress me please " * 500
        blob, header = wrap_payload(data, start_offset=4096, codec_name="zlib")
        assert header.start_offset == 4096
        assert header.length == len(data)
        assert header.codec_id == 1
        assert len(blob) == HEADER_SIZE + header.resulting_size
        restored, parsed = unwrap_payload(blob)
        assert restored == data
        assert parsed == header

    def test_identity_codec_wrap(self) -> None:
        data = b"raw bytes"
        blob, header = wrap_payload(data, 0, "none")
        assert header.codec_id == 0
        assert header.resulting_size == len(data)
        assert unwrap_payload(blob)[0] == data

    def test_decode_is_self_describing(self) -> None:
        """The reader needs only the blob — no external codec hint."""
        for codec in ("lz4", "bzip2", "huffman", "snappy"):
            data = b"the same input bytes " * 300
            blob, _ = wrap_payload(data, 0, codec)
            restored, header = unwrap_payload(blob)
            assert restored == data

    def test_truncated_payload_detected(self) -> None:
        blob, _ = wrap_payload(b"hello world " * 100, 0, "zlib")
        with pytest.raises(SchemaError):
            unwrap_payload(blob[:-5])

    def test_header_length_mismatch_detected(self) -> None:
        data = b"x" * 1000
        blob, header = wrap_payload(data, 0, "none")
        tampered = SubTaskHeader(
            header.start_offset, header.length + 1, header.codec_id,
            header.resulting_size,
        )
        with pytest.raises(SchemaError):
            unwrap_payload(tampered.pack() + blob[HEADER_SIZE:])

    def test_wrap_by_codec_id(self) -> None:
        blob, header = wrap_payload(b"data " * 200, 0, 5)  # id 5 = lz4
        assert header.codec_id == 5
        assert unwrap_payload(blob)[0] == b"data " * 200

    def test_trailing_garbage_after_payload_detected(self) -> None:
        # unwrap requires blob == header + payload exactly: extra bytes
        # mean resulting_size no longer describes the stored payload.
        blob, _ = wrap_payload(b"hello " * 200, 0, "zlib")
        with pytest.raises(SchemaError, match="size mismatch"):
            unwrap_payload(blob + b"\x00" * 3)

    def test_unwrap_unknown_codec_id_is_typed(self) -> None:
        blob, header = wrap_payload(b"x" * 100, 0, "none")
        tampered = SubTaskHeader(
            header.start_offset, header.length, 31337, header.resulting_size
        )
        # 31337 is u32-valid so construction succeeds; the registry lookup
        # at decode time is what must catch it.
        with pytest.raises(SchemaError, match="unknown codec id"):
            unwrap_payload(tampered.pack() + blob[HEADER_SIZE:])
