"""Cache-line-class RAM-tier codecs: bdi and fpc.

Round-trip properties over seeded corpora (aligned, unaligned, empty,
NaN/Inf floats), every control/pattern path, typed failures for
truncated and bit-flipped payloads, the vectorised 16-byte header
batch helpers, and the pool/profile wiring that makes HCDP prefer
these codecs for RAM-tier pieces.
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro.codecs import (
    EXTENDED_LIBRARIES,
    CompressionLibraryPool,
    SubTaskHeader,
    get_codec,
    pack_headers,
    unpack_headers,
)
from repro.codecs.cacheline import (
    bdi_decode,
    bdi_encode,
    fpc_decode,
    fpc_encode,
)
from repro.errors import CodecError, CorruptDataError, SchemaError

SEED = 0xCAC4E11
CODECS = ("bdi", "fpc")


def _corpora(rng: random.Random) -> list[bytes]:
    """Aligned, unaligned, empty, and float NaN/Inf buffers."""
    out = [b""]
    for n in (64, 256, 4096):  # line-aligned
        out.append(rng.randbytes(n))
    for n in (1, 3, 63, 65, 100, 1000, 4097):  # unaligned tails
        out.append(rng.randbytes(n))
    # low-entropy shapes each control path favours
    out.append(bytes(512))  # all zero
    out.append(b"\x07" * 640)  # repeated byte
    base = np.arange(64, dtype="<i8") * 3 + 10**12
    out.append(base.tobytes())  # small 8-byte deltas
    base32 = (np.arange(256, dtype="<i4") % 100 + 50_000).astype("<i4")
    out.append(base32.tobytes())  # small 4-byte deltas
    halves = np.full(128, 0x00AB00AB, dtype="<u4")
    out.append(halves.tobytes())  # repeated halfwords (fpc pattern 4)
    # floats with NaN/Inf mixed in
    floats = np.array(
        [0.0, -0.0, 1.5, np.nan, np.inf, -np.inf, 1e308, 5e-324] * 16,
        dtype="<f8",
    )
    out.append(floats.tobytes())
    f32 = np.array([np.nan, np.inf, -np.inf, 0.25] * 33, dtype="<f4")
    out.append(f32.tobytes()[:-2])  # unaligned float tail
    return out


@pytest.mark.parametrize("name", CODECS)
def test_seeded_roundtrip(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED)
    for data in _corpora(rng):
        payload = codec.compress(data)
        assert codec.decompress(payload) == data


@pytest.mark.parametrize("name", CODECS)
def test_compressible_shapes_actually_shrink(name: str) -> None:
    """The codec earns its nominal ratio on its favourite shapes."""
    codec = get_codec(name)
    zero = bytes(64 * 1024)
    assert len(codec.compress(zero)) < len(zero) / 4
    deltas = (np.arange(8192, dtype="<i8") + 7).tobytes()
    assert len(codec.compress(deltas)) < len(deltas)


def test_bdi_grain_selection_covers_both_word_sizes() -> None:
    """8-byte deltas pick grain 0; 4-byte-friendly input picks grain 1."""
    wide = (np.arange(512, dtype="<i8") * 5 + 2**40).tobytes()
    narrow_words = np.tile(
        np.arange(16, dtype="<i4") + 1_000_000, 64
    ).tobytes()
    grains = set()
    for data in (wide, narrow_words):
        body = bdi_encode(data)
        grains.add(body[0])
        assert bdi_decode(body, len(data)) == data
    assert grains == {0, 1}


def test_fpc_every_pattern_roundtrips() -> None:
    """One word per FPC pattern class, decoded back exactly."""
    words = np.array(
        [
            0x00000000,  # zero
            0x0000007F,  # sign-extended int8
            0xFFFFFF80,  # negative int8
            0x3B3B3B3B,  # repeated byte
            0x00007FFF,  # sign-extended int16
            0x00AB00AB,  # repeated halfword
            0x12340000,  # high half only
            0xDEADBEEF,  # raw
        ],
        dtype="<u4",
    )
    data = words.tobytes()
    assert fpc_decode(fpc_encode(data), len(data)) == data


@pytest.mark.parametrize("name", CODECS)
def test_truncated_payload_raises_typed(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED ^ 1)
    data = (np.arange(1024, dtype="<i8") * 3).tobytes()
    payload = codec.compress(data)
    for cut in range(1, min(len(payload), 24)):
        try:
            out = codec.decompress(payload[:-cut])
        except CodecError:
            continue
        assert isinstance(out, bytes)  # never a numpy/struct surprise
    # and a hard truncation inside the frame header
    with pytest.raises(CodecError):
        codec.decompress(payload[:3])
    del rng


@pytest.mark.parametrize("name", CODECS)
def test_bitflipped_payload_detected_or_typed(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED ^ 2)
    data = (np.arange(512, dtype="<i4") % 97).astype("<i4").tobytes()
    payload = bytearray(codec.compress(data))
    for _ in range(32):
        pos = rng.randrange(len(payload))
        flipped = bytearray(payload)
        flipped[pos] ^= 1 << rng.randrange(8)
        try:
            out = codec.decompress(bytes(flipped))
        except CodecError:
            continue
        assert isinstance(out, bytes)


def test_bdi_raw_body_validation() -> None:
    data = random.Random(SEED ^ 3).randbytes(256)
    body = bdi_encode(data)
    with pytest.raises(CorruptDataError):
        bdi_decode(b"", 256)  # empty body, non-empty payload
    with pytest.raises(CorruptDataError):
        bdi_decode(b"\x07" + body[1:], 256)  # unknown grain flag
    with pytest.raises(CorruptDataError):
        bdi_decode(body[:2], 256)  # truncated control section
    with pytest.raises(CorruptDataError):
        bdi_decode(body + b"\x00", 256)  # body length mismatch
    with pytest.raises(CorruptDataError):
        bdi_decode(b"\x00", 0)  # non-empty body for empty payload
    assert bdi_decode(b"", 0) == b""


def test_fpc_raw_body_validation() -> None:
    data = random.Random(SEED ^ 4).randbytes(256)
    body = fpc_encode(data)
    with pytest.raises(CorruptDataError):
        fpc_decode(body[:10], 256)  # truncated
    with pytest.raises(CorruptDataError):
        fpc_decode(body + b"\x00", 256)  # length mismatch
    with pytest.raises(CorruptDataError):
        fpc_decode(b"\x00", 0)
    assert fpc_decode(b"", 0) == b""
    # a prefix nibble forced above the raw code must be rejected
    bad = bytearray(fpc_encode(bytes(8)))
    bad[0] = 0xFF
    with pytest.raises(CorruptDataError):
        fpc_decode(bytes(bad), 8)


# -- vectorised header helpers ------------------------------------------------


def _headers() -> list[SubTaskHeader]:
    return [
        SubTaskHeader(0, 4096, 13, 1024),
        SubTaskHeader(4096, 4096, 14, 2048),
        SubTaskHeader(8192, 100, 0, 100),
    ]


def test_pack_headers_matches_sequential() -> None:
    headers = _headers()
    assert pack_headers(headers) == b"".join(h.pack() for h in headers)
    assert pack_headers([]) == b""


def test_unpack_headers_matches_sequential() -> None:
    headers = _headers()
    blobs = [h.pack() + bytes(h.resulting_size) for h in headers]
    assert unpack_headers(blobs) == [
        SubTaskHeader.unpack(blob) for blob in blobs
    ]
    assert unpack_headers([]) == []


def test_unpack_headers_bad_blob_raises_like_sequential() -> None:
    good = _headers()[0]
    bad = struct.pack("<IIII", 0, 16, 255, 16)  # unregistered codec id
    with pytest.raises(SchemaError):
        unpack_headers([good.pack(), bad])
    with pytest.raises(SchemaError):
        unpack_headers([good.pack(), b"\x01"])  # short blob


# -- pool wiring --------------------------------------------------------------


def test_extended_pool_carries_cacheline_profiles() -> None:
    assert "bdi" in EXTENDED_LIBRARIES and "fpc" in EXTENDED_LIBRARIES
    pool = CompressionLibraryPool(EXTENDED_LIBRARIES)
    for name in CODECS:
        profile = pool.profile(name)
        # ~GB/s nominal class: faster than any byte-LZ in the paper set
        assert profile.compress_mbps >= 2000.0
        assert profile.decompress_mbps >= 4000.0
        assert get_codec(name).meta.family == "cacheline"
