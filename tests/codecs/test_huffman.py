"""Canonical Huffman internals: code construction, limits, corruption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.codecs.huffman import (
    MAX_CODE_LEN,
    build_code_lengths,
    canonical_codes,
)
from repro.errors import CorruptDataError


def _kraft(lengths: np.ndarray) -> float:
    active = lengths[lengths > 0].astype(np.int64)
    return float((2.0 ** (-active)).sum())


class TestCodeLengths:
    def test_uniform_frequencies_give_uniform_lengths(self) -> None:
        freqs = np.zeros(256, dtype=np.int64)
        freqs[:4] = 100
        lengths = build_code_lengths(freqs)
        assert set(lengths[:4]) == {2}
        assert (lengths[4:] == 0).all()

    def test_skew_gives_short_code_to_common_symbol(self) -> None:
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = 1000
        freqs[1:5] = 10
        lengths = build_code_lengths(freqs)
        assert lengths[0] < lengths[1]

    def test_single_symbol_gets_length_one(self) -> None:
        freqs = np.zeros(256, dtype=np.int64)
        freqs[42] = 7
        lengths = build_code_lengths(freqs)
        assert lengths[42] == 1
        assert lengths.sum() == 1

    def test_empty_frequencies(self) -> None:
        lengths = build_code_lengths(np.zeros(256, dtype=np.int64))
        assert (lengths == 0).all()

    def test_kraft_inequality_holds(self) -> None:
        rng = np.random.default_rng(5)
        for _ in range(20):
            freqs = rng.integers(0, 1000, 256)
            if freqs.sum() == 0:
                continue
            lengths = build_code_lengths(freqs)
            assert _kraft(lengths) <= 1.0 + 1e-12

    def test_length_limiting_fibonacci_counts(self) -> None:
        """Fibonacci-like counts force depths past 15 without limiting."""
        freqs = np.zeros(256, dtype=np.int64)
        a, b = 1, 1
        for i in range(40):
            freqs[i] = a
            a, b = b, a + b
        lengths = build_code_lengths(freqs)
        assert lengths.max() <= MAX_CODE_LEN
        assert _kraft(lengths) <= 1.0 + 1e-12

    def test_rejects_wrong_shape(self) -> None:
        with pytest.raises(ValueError):
            build_code_lengths(np.zeros(10))

    def test_rejects_negative(self) -> None:
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = -1
        with pytest.raises(ValueError):
            build_code_lengths(freqs)


class TestCanonicalCodes:
    def test_codes_are_prefix_free(self) -> None:
        freqs = np.array([50, 30, 10, 5, 3, 2] + [0] * 250, dtype=np.int64)
        lengths = build_code_lengths(freqs)
        codes = canonical_codes(lengths)
        entries = [
            (int(codes[s]), int(lengths[s]))
            for s in np.flatnonzero(lengths)
        ]
        for i, (code_a, len_a) in enumerate(entries):
            for j, (code_b, len_b) in enumerate(entries):
                if i == j:
                    continue
                if len_a <= len_b:
                    assert (code_b >> (len_b - len_a)) != code_a, (
                        f"{code_a:0{len_a}b} prefixes {code_b:0{len_b}b}"
                    )

    def test_canonical_ordering(self) -> None:
        """Within one length, codes ascend with symbol value."""
        freqs = np.zeros(256, dtype=np.int64)
        freqs[10] = freqs[20] = freqs[30] = freqs[40] = 5
        lengths = build_code_lengths(freqs)
        codes = canonical_codes(lengths)
        assert codes[10] < codes[20] < codes[30] < codes[40]


class TestCorruption:
    def test_truncated_header(self) -> None:
        codec = get_codec("huffman")
        with pytest.raises(CorruptDataError):
            codec.decompress(b"\x00\x01")

    def test_unknown_mode(self) -> None:
        codec = get_codec("huffman")
        payload = bytearray(codec.compress(b"x" * 100))
        payload[0] = 7
        with pytest.raises(CorruptDataError):
            codec.decompress(bytes(payload))

    def test_stored_length_mismatch(self) -> None:
        codec = get_codec("huffman")
        payload = codec.compress(b"tiny")  # stored mode
        with pytest.raises(CorruptDataError):
            codec.decompress(payload + b"extra")

    def test_truncated_bitstream(self) -> None:
        codec = get_codec("huffman")
        data = bytes(range(256)) * 40
        payload = codec.compress(data)
        with pytest.raises(CorruptDataError):
            codec.decompress(payload[: len(payload) // 2])

    def test_tampered_code_table(self) -> None:
        """The format carries no checksum, so tampering with the code
        table must either raise or decode to something else — silently
        returning the original would mean the table is ignored."""
        codec = get_codec("huffman")
        data = b"abcabcabc" * 2000
        payload = bytearray(codec.compress(data))
        assert payload[0] == 0, "expected coded mode"
        # Tamper the nibble-packed length entry of symbol 'a' (0x61):
        # table starts after the 9-byte header, one byte per 2 symbols.
        payload[9 + 0x61 // 2] ^= 0xFF
        try:
            restored = codec.decompress(bytes(payload))
        except CorruptDataError:
            return
        assert restored != data


class TestStoredFallback:
    def test_small_inputs_stored(self) -> None:
        codec = get_codec("huffman")
        data = b"small"
        payload = codec.compress(data)
        assert payload[0] == 1
        assert codec.decompress(payload) == data

    def test_incompressible_falls_back(self) -> None:
        codec = get_codec("huffman")
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        payload = codec.compress(data)
        assert len(payload) <= len(data) + 16
