"""Round-trip correctness of every codec over every data shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import codec_names, get_codec

_RNG = np.random.default_rng(99)

DATASETS = {
    "empty": b"",
    "one_byte": b"\x00",
    "two_bytes": b"ab",
    "short_text": b"hello",
    "repeated": b"A" * 10_000,
    "text": b"the quick brown fox jumps over the lazy dog. " * 400,
    "zeros": bytes(40_000),
    "single_run_then_noise": bytes(5_000)
    + _RNG.integers(0, 256, 5_000, dtype=np.uint8).tobytes(),
    "uniform_bytes": _RNG.integers(0, 256, 50_000, dtype=np.uint8).tobytes(),
    "normal_f64": _RNG.normal(0, 1, 6_000).astype(np.float64).tobytes(),
    "gamma_f32": _RNG.gamma(2.0, 2.0, 12_000).astype(np.float32).tobytes(),
    "ascending_i32": np.arange(12_000, dtype=np.int32).tobytes(),
    "periodic": (b"\x01\x02\x03\x04\x05\x06\x07\x08" * 4_000),
    "all_values": bytes(range(256)) * 64,
    "alternating": b"\x00\xff" * 8_000,
}


@pytest.mark.parametrize("codec_name", codec_names())
@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_roundtrip(codec_name: str, dataset: str) -> None:
    codec = get_codec(codec_name)
    data = DATASETS[dataset]
    payload = codec.compress(data)
    assert codec.decompress(payload) == data


@pytest.mark.parametrize("codec_name", codec_names(include_identity=False))
def test_compressible_data_shrinks(codec_name: str) -> None:
    """Every real codec must reduce trivially redundant input."""
    codec = get_codec(codec_name)
    # Runs of four satisfy even the RLE codec's minimum-run threshold.
    data = b"aaaabbbb" * 5_000
    assert len(codec.compress(data)) < len(data)


@pytest.mark.parametrize("codec_name", codec_names())
def test_incompressible_data_bounded_expansion(codec_name: str) -> None:
    """Stored-mode fallbacks cap expansion at frame-header size."""
    codec = get_codec(codec_name)
    data = _RNG.integers(0, 256, 65_536, dtype=np.uint8).tobytes()
    payload = codec.compress(data)
    # Our from-scratch codecs store raw (+frame); stdlib bzip2 may expand
    # ~1% — the paper's own "compressed data might even be bigger" case.
    assert len(payload) <= len(data) * 1.02 + 64
    assert codec.decompress(payload) == data


@pytest.mark.parametrize("codec_name", codec_names())
def test_ratio_convention(codec_name: str) -> None:
    """ratio() is original/compressed and 1.0 on empty input."""
    codec = get_codec(codec_name)
    assert codec.ratio(b"") == 1.0
    data = b"xy" * 5_000
    ratio = codec.ratio(data)
    assert ratio == len(data) / len(codec.compress(data))


@pytest.mark.parametrize("codec_name", codec_names())
def test_bytearray_and_memoryview_inputs(codec_name: str) -> None:
    codec = get_codec(codec_name)
    data = b"some bytes worth compressing " * 100
    for view in (bytearray(data), memoryview(data)):
        assert codec.decompress(codec.compress(view)) == data


@pytest.mark.parametrize("codec_name", codec_names())
def test_rejects_non_bytes(codec_name: str) -> None:
    codec = get_codec(codec_name)
    with pytest.raises(TypeError):
        codec.compress("a string")  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        codec.decompress(12345)  # type: ignore[arg-type]


@pytest.mark.parametrize("codec_name", codec_names())
def test_compress_is_deterministic(codec_name: str) -> None:
    codec = get_codec(codec_name)
    data = DATASETS["gamma_f32"]
    assert codec.compress(data) == codec.compress(data)
