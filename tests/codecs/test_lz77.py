"""LZ77 machinery: matcher invariants, frames, varints, copy semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.lz77 import (
    MODE_CODED,
    MODE_STORED,
    MatchParams,
    Token,
    copy_match,
    find_tokens,
    frame_parse,
    frame_wrap,
    read_varint,
    write_varint,
)
from repro.errors import CorruptDataError


def _assert_tiling(data: bytes, tokens: list[Token], params: MatchParams) -> None:
    cursor = 0
    for tok in tokens:
        assert tok.lit_start == cursor
        cursor += tok.lit_len + tok.match_len
        if tok.match_len:
            assert params.min_match <= tok.match_len <= params.max_match
            assert 1 <= tok.offset <= params.window
            # The match must reproduce the actual bytes.
            src = tok.lit_start + tok.lit_len - tok.offset
            for k in range(tok.match_len):
                assert data[src + k] == data[tok.lit_start + tok.lit_len + k]
        else:
            assert tok.offset == 0
    assert cursor == len(data)


class TestMatcher:
    @pytest.mark.parametrize(
        "params",
        [
            MatchParams(),
            MatchParams(hash_bits=12, min_match=3, window=8192, skip_trigger=4),
            MatchParams(hash_bits=14, min_match=6, max_match=64, window=1 << 20),
        ],
    )
    def test_tokens_tile_input(self, params: MatchParams) -> None:
        rng = np.random.default_rng(11)
        for data in (
            b"",
            b"abc",
            b"abcabcabcabcabcabc" * 50,
            rng.integers(0, 8, 5000, dtype=np.uint8).tobytes(),
            rng.integers(0, 256, 5000, dtype=np.uint8).tobytes(),
            bytes(3000),
        ):
            _assert_tiling(data, find_tokens(data, params), params)

    def test_empty_input_no_tokens(self) -> None:
        assert find_tokens(b"", MatchParams()) == []

    def test_repetitive_input_finds_matches(self) -> None:
        tokens = find_tokens(b"0123456789" * 500, MatchParams())
        assert any(t.match_len > 0 for t in tokens)

    def test_random_input_mostly_literals(self) -> None:
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes()
        tokens = find_tokens(data, MatchParams())
        matched = sum(t.match_len for t in tokens)
        assert matched < len(data) * 0.05

    def test_params_validation(self) -> None:
        with pytest.raises(ValueError):
            MatchParams(hash_bits=4)
        with pytest.raises(ValueError):
            MatchParams(min_match=2)
        with pytest.raises(ValueError):
            MatchParams(min_match=8, max_match=7)
        with pytest.raises(ValueError):
            MatchParams(window=0)


class TestCopyMatch:
    def test_non_overlapping(self) -> None:
        out = bytearray(b"abcdef")
        copy_match(out, offset=6, length=3)
        assert out == b"abcdefabc"

    def test_overlapping_run(self) -> None:
        out = bytearray(b"x")
        copy_match(out, offset=1, length=7)
        assert out == b"x" * 8

    def test_overlapping_pattern(self) -> None:
        out = bytearray(b"ab")
        copy_match(out, offset=2, length=5)
        assert out == b"abababa"

    def test_bad_offset(self) -> None:
        with pytest.raises(CorruptDataError):
            copy_match(bytearray(b"abc"), offset=4, length=2)
        with pytest.raises(CorruptDataError):
            copy_match(bytearray(b"abc"), offset=0, length=2)


class TestFrame:
    def test_roundtrip(self) -> None:
        framed = frame_wrap(MODE_CODED, 1234, b"body")
        mode, size, body = frame_parse(framed, "test")
        assert (mode, size, body) == (MODE_CODED, 1234, b"body")

    def test_stored_length_checked(self) -> None:
        framed = frame_wrap(MODE_STORED, 10, b"short")
        with pytest.raises(CorruptDataError):
            frame_parse(framed, "test")

    def test_truncated_header(self) -> None:
        with pytest.raises(CorruptDataError):
            frame_parse(b"\x00", "test")

    def test_unknown_mode(self) -> None:
        with pytest.raises(CorruptDataError):
            frame_parse(frame_wrap(5, 0, b""), "test")


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40, 2**63 - 1])
    def test_roundtrip(self, value: int) -> None:
        buf = bytearray()
        write_varint(buf, value)
        decoded, pos = read_varint(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            write_varint(bytearray(), -1)

    def test_truncated(self) -> None:
        with pytest.raises(CorruptDataError):
            read_varint(b"\x80\x80", 0)

    def test_overlong(self) -> None:
        with pytest.raises(CorruptDataError):
            read_varint(b"\x80" * 12, 0)

    def test_sequential_reads(self) -> None:
        buf = bytearray()
        write_varint(buf, 5)
        write_varint(buf, 500)
        a, pos = read_varint(bytes(buf), 0)
        b, pos = read_varint(bytes(buf), pos)
        assert (a, b) == (5, 500)
