"""Codec registry, factory, and metadata behaviour."""

from __future__ import annotations

import pytest

from repro.codecs import (
    Codec,
    CodecMeta,
    codec_ids,
    codec_names,
    get_codec,
    iter_codecs,
)
from repro.codecs.base import register_codec
from repro.errors import CodecError, UnknownCodecError


class TestRegistry:
    def test_identity_is_id_zero(self) -> None:
        assert get_codec(0).meta.name == "none"

    def test_paper_roster_registered(self) -> None:
        names = set(codec_names())
        for expected in (
            "none", "bzip2", "zlib", "huffman", "brotli", "bsc", "lzma",
            "lz4", "lzo", "pithy", "snappy", "quicklz", "rle",
        ):
            assert expected in names

    def test_lookup_by_name_and_id_agree(self) -> None:
        for codec in iter_codecs():
            assert get_codec(codec.meta.name) is codec
            assert get_codec(codec.meta.codec_id) is codec

    def test_ids_are_unique_and_sorted(self) -> None:
        ids = codec_ids()
        assert ids == sorted(set(ids))

    def test_unknown_name_raises(self) -> None:
        with pytest.raises(UnknownCodecError):
            get_codec("zstd")

    def test_unknown_id_raises(self) -> None:
        with pytest.raises(UnknownCodecError):
            get_codec(9999)

    def test_unknown_codec_error_is_codec_error_and_keyerror(self) -> None:
        with pytest.raises(CodecError):
            get_codec("nope")
        with pytest.raises(KeyError):
            get_codec("nope")

    def test_codec_singletons(self) -> None:
        assert get_codec("zlib") is get_codec("zlib")

    def test_exclude_identity(self) -> None:
        assert "none" not in codec_names(include_identity=False)

    def test_iteration_order_by_id(self) -> None:
        ids = [c.meta.codec_id for c in iter_codecs()]
        assert ids == sorted(ids)


class TestRegistration:
    def test_duplicate_name_rejected(self) -> None:
        class Dup(Codec):
            meta = CodecMeta(name="zlib", codec_id=200, family="none")

            def compress(self, data):  # pragma: no cover
                return data

            def decompress(self, payload):  # pragma: no cover
                return payload

        with pytest.raises(CodecError, match="duplicate codec name"):
            register_codec(Dup)

    def test_duplicate_id_rejected(self) -> None:
        class Dup(Codec):
            meta = CodecMeta(name="definitely-new", codec_id=1, family="none")

            def compress(self, data):  # pragma: no cover
                return data

            def decompress(self, payload):  # pragma: no cover
                return payload

        with pytest.raises(CodecError, match="duplicate codec id"):
            register_codec(Dup)

    def test_bad_family_rejected(self) -> None:
        class Bad(Codec):
            meta = CodecMeta(name="badfam", codec_id=201, family="quantum")

            def compress(self, data):  # pragma: no cover
                return data

            def decompress(self, payload):  # pragma: no cover
                return payload

        with pytest.raises(CodecError, match="unknown codec family"):
            register_codec(Bad)

    def test_missing_meta_rejected(self) -> None:
        class NoMeta(Codec):
            def compress(self, data):  # pragma: no cover
                return data

            def decompress(self, payload):  # pragma: no cover
                return payload

        with pytest.raises(CodecError, match="CodecMeta"):
            register_codec(NoMeta)

    def test_negative_id_rejected(self) -> None:
        class Neg(Codec):
            meta = CodecMeta(name="negid", codec_id=-3, family="none")

            def compress(self, data):  # pragma: no cover
                return data

            def decompress(self, payload):  # pragma: no cover
                return payload

        with pytest.raises(CodecError, match="non-negative"):
            register_codec(Neg)


class TestStdlibLevels:
    def test_zlib_level_validation(self) -> None:
        from repro.codecs.zlib_codec import ZlibCodec

        with pytest.raises(ValueError):
            ZlibCodec(level=0)
        with pytest.raises(ValueError):
            ZlibCodec(level=10)

    def test_bzip2_level_validation(self) -> None:
        from repro.codecs.bzip2_codec import Bzip2Codec

        with pytest.raises(ValueError):
            Bzip2Codec(level=0)

    def test_lzma_preset_validation(self) -> None:
        from repro.codecs.lzma_codec import LzmaCodec

        with pytest.raises(ValueError):
            LzmaCodec(preset=10)

    def test_stdlib_flag(self) -> None:
        assert get_codec("zlib").meta.stdlib
        assert get_codec("bzip2").meta.stdlib
        assert get_codec("lzma").meta.stdlib
        assert not get_codec("lz4").meta.stdlib
        assert not get_codec("bsc").meta.stdlib
