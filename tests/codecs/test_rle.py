"""Run-length codec and the raw RLE stage used inside bsc."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.codecs.rle import MIN_RUN, rle_decode, rle_encode
from repro.errors import CorruptDataError


class TestRawStage:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"aaa",
            b"aaaa" + b"b" * 200 + b"xyz",
            bytes(10_000),
            b"ab" * 5_000,
            bytes([7]) * 127 + bytes([8]) * 131,  # run-length boundaries
            b"x" * (0x7F + MIN_RUN),  # exactly max run
            b"x" * (0x7F + MIN_RUN + 1),  # one over max run
        ],
    )
    def test_roundtrip(self, data: bytes) -> None:
        assert rle_decode(rle_encode(data)) == data

    def test_random_roundtrip(self) -> None:
        rng = np.random.default_rng(5)
        for _ in range(10):
            data = rng.integers(0, 4, rng.integers(0, 2000), dtype=np.uint8).tobytes()
            assert rle_decode(rle_encode(data)) == data

    def test_long_runs_shrink(self) -> None:
        data = bytes(5_000)
        assert len(rle_encode(data)) < 200

    def test_short_runs_kept_literal(self) -> None:
        """Runs below MIN_RUN are cheaper as literals."""
        data = b"aabbccddee" * 10
        encoded = rle_encode(data)
        assert rle_decode(encoded) == data

    def test_expected_size_mismatch(self) -> None:
        encoded = rle_encode(b"hello world")
        with pytest.raises(CorruptDataError):
            rle_decode(encoded, expected_size=5)

    def test_truncated_run(self) -> None:
        with pytest.raises(CorruptDataError):
            rle_decode(b"\x80")  # run control with no byte

    def test_truncated_literals(self) -> None:
        with pytest.raises(CorruptDataError):
            rle_decode(b"\x05ab")  # declares 6 literals, has 2


class TestFramedCodec:
    def test_codec_registered(self) -> None:
        assert get_codec("rle").meta.codec_id == 12

    def test_incompressible_stored(self) -> None:
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        codec = get_codec("rle")
        payload = codec.compress(data)
        assert len(payload) <= len(data) + 16
        assert codec.decompress(payload) == data

    def test_zero_page_compresses_hard(self) -> None:
        codec = get_codec("rle")
        data = bytes(65_536)
        # Grammar tops out at ~65x (2 control bytes per 130-byte run).
        assert codec.ratio(data) > 50
