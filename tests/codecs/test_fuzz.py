"""Seeded fuzz: every codec round-trips or fails with a typed error.

Complements the hypothesis property tests (test_properties.py): those
prove well-formed inputs round-trip; this file feeds every registered
codec adversarial *payloads* — random garbage, truncated encodings,
bit-flipped encodings — and pins the decode contract: ``decompress``
either returns bytes or raises :class:`CodecError`. It must never leak a
raw ``struct.error`` / ``IndexError`` / ``KeyError`` / segfault-shaped
surprise into the read path, and a successful decode of a corrupted
payload must never be silently wrong for the framed codecs (those with a
checksum detect the corruption instead).

Deterministic by construction: one seeded PRNG, no hypothesis shrinking.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.codecs import codec_names, get_codec
from repro.errors import CodecError

SEED = 0xC0DEC
ROUNDS = 12  # per codec per corruption mode

#: bsc's pure-Python BWT is O(n log n) with a big constant; keep it small.
_MAX_LEN = {"bsc": 512}


def _corpus(rng: random.Random, max_len: int) -> bytes:
    """Mixed-entropy buffers: random, runs, repeated blocks, empty."""
    shape = rng.randrange(4)
    n = rng.randrange(max_len + 1)
    if shape == 0:
        return rng.randbytes(n)
    if shape == 1:
        return bytes(rng.randrange(4) for _ in range(n))  # low entropy
    if shape == 2:
        block = rng.randbytes(max(rng.randrange(16), 1))
        return (block * (n // max(len(block), 1) + 1))[:n]
    return b""


def _decode_contract(codec, payload: bytes) -> None:
    """decompress(payload) returns bytes or raises CodecError — nothing else."""
    try:
        out = codec.decompress(payload)
    except CodecError:
        return
    assert isinstance(out, bytes)


@pytest.mark.parametrize("name", codec_names())
def test_roundtrip_under_seeded_corpus(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED ^ zlib.crc32(name.encode()))
    for _ in range(ROUNDS):
        data = _corpus(rng, _MAX_LEN.get(name, 4096))
        assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("name", codec_names())
def test_random_garbage_decodes_or_raises_typed(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED ^ zlib.crc32(name.encode()) ^ 1)
    for _ in range(ROUNDS):
        _decode_contract(codec, rng.randbytes(rng.randrange(2048)))


@pytest.mark.parametrize("name", codec_names())
def test_truncated_payload_decodes_or_raises_typed(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED ^ zlib.crc32(name.encode()) ^ 2)
    for _ in range(ROUNDS):
        data = _corpus(rng, _MAX_LEN.get(name, 4096))
        payload = codec.compress(data)
        if not payload:
            continue
        cut = rng.randrange(len(payload))
        _decode_contract(codec, payload[:cut])


@pytest.mark.parametrize("name", codec_names())
def test_bitflipped_payload_decodes_or_raises_typed(name: str) -> None:
    codec = get_codec(name)
    rng = random.Random(SEED ^ zlib.crc32(name.encode()) ^ 3)
    for _ in range(ROUNDS):
        data = _corpus(rng, _MAX_LEN.get(name, 4096))
        payload = bytearray(codec.compress(data))
        if not payload:
            continue
        for _ in range(rng.randrange(1, 4)):
            payload[rng.randrange(len(payload))] ^= 1 << rng.randrange(8)
        _decode_contract(codec, bytes(payload))


@pytest.mark.parametrize("name", ["bdi", "fpc"])
def test_cacheline_raw_body_decodes_or_raises_typed(name: str) -> None:
    """The unframed cache-line decoders share the decode contract.

    The framed tests above only reach ``bdi_decode``/``fpc_decode``
    through an intact frame; a corrupt *body* behind a valid frame is the
    case the read path actually sees after a payload bit-flip, so the raw
    decoders get their own adversarial pass: random bodies, truncated
    encodings, and flipped control/prefix sections against arbitrary
    expected sizes must return bytes or raise CodecError — never a numpy
    shape error or overallocation.
    """
    from repro.codecs.cacheline import bdi_decode, bdi_encode, fpc_decode, fpc_encode

    encode, decode = (
        (bdi_encode, bdi_decode) if name == "bdi" else (fpc_encode, fpc_decode)
    )
    rng = random.Random(SEED ^ zlib.crc32(name.encode()) ^ 4)
    for _ in range(ROUNDS * 4):
        size = rng.randrange(4096)
        mode = rng.randrange(3)
        if mode == 0:
            body = rng.randbytes(rng.randrange(2048))
        else:
            body = bytearray(encode(_corpus(rng, 2048)))
            if not body:
                body = bytearray(b"\x00")
            if mode == 1:
                body = bytes(body[: rng.randrange(len(body))])
            else:
                for _ in range(rng.randrange(1, 4)):
                    body[rng.randrange(len(body))] ^= 1 << rng.randrange(8)
                body = bytes(body)
        try:
            out = decode(bytes(body), size)
        except CodecError:
            continue
        assert isinstance(out, bytes) and len(out) == size
