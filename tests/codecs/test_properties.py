"""Property-based (hypothesis) tests of the codec layer."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.codecs import codec_names, get_codec
from repro.codecs.bwt import bwt_decode, bwt_encode
from repro.codecs.lz77 import read_varint, write_varint
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.huffman import build_code_lengths, canonical_codes

import numpy as np

# Mixed generator: raw random bytes, low-entropy bytes, and repeated blocks
# — exercises coded and stored paths of every codec.
_buffers = st.one_of(
    st.binary(max_size=4096),
    st.binary(max_size=64).map(lambda b: b * 37),
    st.lists(st.integers(0, 3), max_size=2048).map(bytes),
)

# The heavy pure-Python codecs (bsc's BWT) get a smaller budget.
_FAST_CODECS = [n for n in codec_names() if n not in ("bsc",)]


@settings(max_examples=25, deadline=None)
@given(data=_buffers, codec_name=st.sampled_from(_FAST_CODECS))
def test_every_codec_roundtrips(data: bytes, codec_name: str) -> None:
    codec = get_codec(codec_name)
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=10, deadline=None)
@given(data=st.binary(max_size=1024))
def test_bsc_roundtrips(data: bytes) -> None:
    codec = get_codec("bsc")
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=2048))
def test_bwt_is_a_permutation_and_invertible(data: bytes) -> None:
    column, primary = bwt_encode(data)
    assert sorted(column) == sorted(data)
    assert bwt_decode(column, primary) == data


@settings(max_examples=50, deadline=None)
@given(data=_buffers)
def test_rle_stage_roundtrips(data: bytes) -> None:
    assert rle_decode(rle_encode(data), len(data)) == data


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_roundtrips(value: int) -> None:
    buf = bytearray()
    write_varint(buf, value)
    decoded, consumed = read_varint(bytes(buf), 0)
    assert decoded == value
    assert consumed == len(buf)


@settings(max_examples=30, deadline=None)
@given(
    counts=st.lists(st.integers(0, 10_000), min_size=256, max_size=256),
)
def test_huffman_lengths_satisfy_kraft(counts: list[int]) -> None:
    freqs = np.array(counts, dtype=np.int64)
    lengths = build_code_lengths(freqs)
    active = lengths[lengths > 0].astype(np.float64)
    if active.size:
        assert float((2.0**-active).sum()) <= 1.0 + 1e-12
    # Symbols with zero frequency never get codes.
    assert (lengths[freqs == 0] == 0).all()


@settings(max_examples=20, deadline=None)
@given(
    counts=st.lists(st.integers(0, 1000), min_size=256, max_size=256).filter(
        lambda c: sum(1 for x in c if x) >= 2
    ),
)
def test_huffman_codes_prefix_free(counts: list[int]) -> None:
    freqs = np.array(counts, dtype=np.int64)
    lengths = build_code_lengths(freqs)
    codes = canonical_codes(lengths)
    entries = sorted(
        ((int(lengths[s]), int(codes[s])) for s in np.flatnonzero(lengths))
    )
    # Canonical codes sorted by (length, code): no earlier code may prefix
    # a later one.
    for (len_a, code_a), (len_b, code_b) in zip(entries, entries[1:]):
        assert len_a <= len_b
        assert (code_b >> (len_b - len_a)) > code_a or (
            len_a == len_b and code_b > code_a
        )
