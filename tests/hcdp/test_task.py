"""IOTask construction and invariants."""

from __future__ import annotations

import pytest

from repro.analyzer import InputAnalyzer
from repro.errors import SchemaError
from repro.hcdp import IOTask, Operation, next_task_id


@pytest.fixture()
def analysis(gamma_f64):
    return InputAnalyzer().analyze(gamma_f64)


class TestTask:
    def test_materialised_when_data_matches_size(self, analysis, gamma_f64) -> None:
        task = IOTask("t", len(gamma_f64), analysis, data=gamma_f64)
        assert task.materialised

    def test_sample_scaled_not_materialised(self, analysis, gamma_f64) -> None:
        task = IOTask("t", len(gamma_f64) * 100, analysis, data=gamma_f64)
        assert not task.materialised

    def test_data_larger_than_size_rejected(self, analysis, gamma_f64) -> None:
        with pytest.raises(SchemaError):
            IOTask("t", 10, analysis, data=gamma_f64)

    def test_negative_size_rejected(self, analysis) -> None:
        with pytest.raises(SchemaError):
            IOTask("t", -1, analysis)

    def test_unknown_operation_rejected(self, analysis) -> None:
        with pytest.raises(SchemaError):
            IOTask("t", 10, analysis, operation="append")

    def test_read_operation_allowed(self, analysis) -> None:
        task = IOTask("t", 10, analysis, operation=Operation.READ)
        assert task.operation == "read"

    def test_task_ids_unique(self) -> None:
        ids = {next_task_id() for _ in range(100)}
        assert len(ids) == 100

    def test_task_id_prefix(self) -> None:
        assert next_task_id("vpic").startswith("vpic-")
