"""Property-based tests: every schema the engine emits satisfies Table I."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor
from repro.codecs import CompressionLibraryPool
from repro.core import HCompressProfiler
from repro.hcdp import HcdpEngine, IOTask, Priority, validate_schema
from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import KiB, PAGE

# Module-level singletons: hypothesis drives many examples and the seed
# fit is the expensive part.
_SEED = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed(
    sizes=(8 * KiB, 32 * KiB)
)
_PREDICTOR = CompressionCostPredictor()
_PREDICTOR.fit_seed(_SEED.observations)
_ANALYSIS = InputAnalyzer().analyze(
    np.random.default_rng(0).gamma(2.0, 60.0, 4096).tobytes()
)


def _hierarchy(caps: list[int | None], fills: list[int]) -> StorageHierarchy:
    tiers = []
    bandwidth = 16e9
    for i, cap in enumerate(caps):
        spec = TierSpec(
            name=f"tier{i}",
            capacity=cap,
            bandwidth=bandwidth,
            latency=1e-6 * (i + 1),
            lanes=2,
        )
        tier = Tier(spec)
        if cap is not None and fills[i]:
            tier.put("fill", None, accounted_size=min(fills[i], cap))
        tiers.append(tier)
        bandwidth /= 2
    return tiers and StorageHierarchy(tiers)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)
@given(
    caps=st.lists(
        st.integers(1, 64).map(lambda pages: pages * PAGE),
        min_size=1,
        max_size=3,
    ),
    fills=st.lists(st.integers(0, 64).map(lambda p: p * PAGE), min_size=3,
                   max_size=3),
    size=st.integers(0, 300 * PAGE),
    weights=st.tuples(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
    ).filter(lambda w: sum(w) > 0),
    load_factor=st.floats(0, 2),
)
def test_engine_schemas_always_satisfy_table_one(
    caps, fills, size, weights, load_factor
) -> None:
    caps = caps + [None]  # unbounded sink guarantees feasibility
    fills = fills + [0]
    hierarchy = _hierarchy(caps, fills)
    engine = HcdpEngine(
        _PREDICTOR,
        SystemMonitor(hierarchy),
        CompressionLibraryPool(),
        priority=Priority(*weights),
        load_factor=load_factor,
    )
    task = IOTask("prop", size, _ANALYSIS)
    schema = engine.plan(task)
    validate_schema(schema, hierarchy)
    # Every piece's expected stored size respects the tier's remaining
    # capacity at planning time (constraint 5, live form).
    for piece in schema.pieces:
        tier = hierarchy.by_name(piece.tier)
        remaining = tier.remaining
        if remaining is not None:
            assert piece.expected_stored_size <= remaining


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(1, 500 * PAGE),
    cap_pages=st.integers(1, 100),
)
def test_plans_are_deterministic(size: int, cap_pages: int) -> None:
    def run() -> list:
        hierarchy = _hierarchy([cap_pages * PAGE, None], [0, 0])
        engine = HcdpEngine(
            _PREDICTOR, SystemMonitor(hierarchy), CompressionLibraryPool()
        )
        return engine.plan(IOTask("d", size, _ANALYSIS)).pieces

    assert run() == run()
