"""The HCDP dynamic program: placement, splitting, codec selection."""

from __future__ import annotations

import pytest

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor
from repro.codecs import CompressionLibraryPool
from repro.errors import PlacementError
from repro.hcdp import (
    ARCHIVAL_IO,
    EQUAL,
    HcdpEngine,
    IOTask,
    Operation,
    Priority,
    validate_schema,
)
from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import MiB, PAGE


@pytest.fixture()
def predictor(seed) -> CompressionCostPredictor:
    p = CompressionCostPredictor()
    p.fit_seed(seed.observations)
    return p


@pytest.fixture()
def analysis(gamma_f64):
    return InputAnalyzer().analyze(gamma_f64)


def _engine(hierarchy, predictor, **kw) -> HcdpEngine:
    return HcdpEngine(
        predictor, SystemMonitor(hierarchy), CompressionLibraryPool(), **kw
    )


def _bounded_hierarchy(*caps, pfs=True) -> StorageHierarchy:
    tiers = []
    bandwidths = [8e9, 4e9, 2e9, 1e9]
    names = ["t0", "t1", "t2", "t3"]
    for i, cap in enumerate(caps):
        tiers.append(
            Tier(TierSpec(name=names[i], capacity=cap, bandwidth=bandwidths[i],
                          latency=1e-6 * (i + 1), lanes=2))
        )
    if pfs:
        tiers.append(
            Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e8,
                          latency=1e-3, lanes=4))
        )
    return StorageHierarchy(tiers)


class TestBasicPlanning:
    def test_small_task_single_piece(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(16 * MiB)
        engine = _engine(h, predictor)
        schema = engine.plan(IOTask("t", 1 * MiB, analysis))
        validate_schema(schema, h)
        assert len(schema) == 1
        assert schema.pieces[0].tier == "t0"

    def test_empty_task(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(16 * MiB)
        schema = _engine(h, predictor).plan(IOTask("t", 0, analysis))
        assert len(schema) == 0

    def test_read_task_rejected(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(16 * MiB)
        with pytest.raises(PlacementError):
            _engine(h, predictor).plan(
                IOTask("t", 10, analysis, operation=Operation.READ)
            )

    def test_oversized_task_spills_to_pfs(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(1 * MiB)
        schema = _engine(h, predictor).plan(IOTask("t", 64 * MiB, analysis))
        validate_schema(schema, h)
        assert "pfs" in schema.tiers_used()

    def test_split_fills_upper_then_lower(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(2 * MiB, 4 * MiB)
        schema = _engine(h, predictor).plan(IOTask("t", 32 * MiB, analysis))
        validate_schema(schema, h)
        assert len(schema) >= 2
        levels = [p.tier_level for p in schema.pieces]
        assert levels == sorted(levels)

    def test_infeasible_without_sink(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(1 * MiB, pfs=False)
        with pytest.raises(PlacementError):
            _engine(h, predictor).plan(IOTask("t", 100 * MiB, analysis))

    def test_unavailable_tier_skipped(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(16 * MiB)
        h.by_name("t0").set_available(False)
        schema = _engine(h, predictor).plan(IOTask("t", 1 * MiB, analysis))
        assert schema.pieces[0].tier != "t0"

    def test_header_overhead_accounted(self, predictor, analysis) -> None:
        """A task exactly the tier's size cannot claim to fit with its
        16-byte header on top."""
        h = _bounded_hierarchy(1 * MiB)
        schema = _engine(h, predictor).plan(IOTask("t", 1 * MiB, analysis))
        validate_schema(schema, h)
        piece = schema.pieces[0]
        if piece.tier == "t0":  # fitting required compression
            assert piece.codec != "none"

    def test_stats_accumulate(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(16 * MiB)
        engine = _engine(h, predictor)
        for i in range(5):
            engine.plan(IOTask(f"t{i}", 1 * MiB, analysis))
        assert engine.stats.tasks_planned == 5
        assert engine.stats.pieces_emitted >= 5
        assert engine.stats.memo_misses > 0


class TestCodecSelection:
    def test_fast_roomy_tier_prefers_no_compression(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(64 * MiB)
        engine = _engine(h, predictor, priority=EQUAL, drain_penalty=0.0)
        schema = engine.plan(IOTask("t", 1 * MiB, analysis))
        assert schema.pieces[0].codec == "none"

    def test_archival_priority_prefers_ratio(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(64 * MiB)
        engine = _engine(h, predictor, priority=ARCHIVAL_IO)
        schema = engine.plan(IOTask("t", 1 * MiB, analysis))
        piece = schema.pieces[0]
        assert piece.codec != "none"
        # Pure-ratio weighting lands in the heavy (archival) family.
        assert piece.codec in ("lzma", "bzip2", "bsc", "zlib", "brotli")
        assert piece.expected_ratio > 1.15

    def test_slow_sink_placement_compresses(self, predictor, analysis) -> None:
        """Tasks that can only land on the slow PFS choose compression
        under write priority."""
        h = _bounded_hierarchy(64 * PAGE)  # upper tier far too small
        engine = _engine(h, predictor, priority=Priority(1.0, 1.0, 0.0))
        h.by_name("t0").put("fill", None, accounted_size=64 * PAGE)
        schema = engine.plan(IOTask("t", 8 * MiB, analysis))
        pfs_pieces = [p for p in schema.pieces if p.tier == "pfs"]
        assert pfs_pieces
        assert all(p.codec != "none" for p in pfs_pieces)

    def test_compression_stretches_capacity(self, predictor, analysis) -> None:
        """With a tier that fits the task only when compressed, the engine
        prefers compressing over spilling to a much slower tier."""
        h = _bounded_hierarchy(3 * MiB)
        engine = _engine(h, predictor, priority=Priority(1.0, 1.0, 0.0))
        schema = engine.plan(IOTask("t", 4 * MiB, analysis))
        validate_schema(schema, h)
        top = [p for p in schema.pieces if p.tier == "t0"]
        assert top, "expected at least part of the task on the fast tier"
        assert any(p.codec != "none" for p in schema.pieces)

    def test_priority_swap_at_runtime(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(64 * MiB)
        engine = _engine(h, predictor, drain_penalty=0.0)
        first = engine.plan(IOTask("a", 1 * MiB, analysis))
        engine.set_priority(ARCHIVAL_IO)
        second = engine.plan(IOTask("b", 1 * MiB, analysis))
        assert first.pieces[0].codec != second.pieces[0].codec


class TestMemoisation:
    def test_repeated_sizes_hit_memo(self, predictor, analysis) -> None:
        h = _bounded_hierarchy(2 * MiB, 4 * MiB)
        engine = _engine(h, predictor)
        engine.plan(IOTask("a", 32 * MiB, analysis))
        assert engine.stats.memo_hits > 0

    def test_load_signal_changes_choice(self, predictor, analysis) -> None:
        """The same task plans differently once the target tier reports a
        deep queue (the System Monitor's load signal at work)."""
        h = _bounded_hierarchy(64 * PAGE)
        h.by_name("t0").put("fill", None, accounted_size=64 * PAGE)
        engine = _engine(h, predictor, priority=Priority(1.0, 1.0, 0.0))
        idle = engine.plan(IOTask("idle", 4 * MiB, analysis))
        pfs = h.by_name("pfs")
        for _ in range(64):
            pfs.begin_io(4 * MiB)
        busy = engine.plan(IOTask("busy", 4 * MiB, analysis))
        idle_ratio = idle.pieces[-1].expected_ratio
        busy_ratio = busy.pieces[-1].expected_ratio
        assert busy_ratio >= idle_ratio
