"""Schema structure and the Table-I constraint validator."""

from __future__ import annotations

import pytest

from repro.analyzer import InputAnalyzer
from repro.errors import SchemaError
from repro.hcdp import IOTask, Schema, SubTaskPlan, validate_schema
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import PAGE


@pytest.fixture()
def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="ram", capacity=64 * PAGE, bandwidth=2e9,
                          latency=0, lanes=2)),
            Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e9,
                          latency=0, lanes=4)),
        ]
    )


@pytest.fixture()
def task(gamma_f64) -> IOTask:
    analysis = InputAnalyzer().analyze(gamma_f64)
    return IOTask("t", 10 * PAGE, analysis)


def _piece(offset, length, tier, level, codec="none", ratio=1.0, stored=None,
           cost=0.1) -> SubTaskPlan:
    return SubTaskPlan(
        offset=offset,
        length=length,
        tier=tier,
        tier_level=level,
        codec=codec,
        expected_ratio=ratio,
        expected_stored_size=stored if stored is not None else length,
        expected_cost=cost,
    )


class TestPlanInvariants:
    def test_constraint4_ratio_below_one_rejected(self) -> None:
        with pytest.raises(SchemaError, match="constraint 4"):
            _piece(0, PAGE, "ram", 0, ratio=0.8)

    def test_bad_geometry_rejected(self) -> None:
        with pytest.raises(SchemaError):
            _piece(-1, PAGE, "ram", 0)
        with pytest.raises(SchemaError):
            _piece(0, 0, "ram", 0)


class TestValidator:
    def test_single_piece_schema(self, hierarchy, task) -> None:
        schema = Schema(task=task, pieces=[_piece(0, task.size, "pfs", 1)])
        validate_schema(schema, hierarchy)

    def test_split_schema(self, hierarchy, task) -> None:
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 4 * PAGE, "ram", 0),
                _piece(4 * PAGE, 6 * PAGE, "pfs", 1),
            ],
        )
        validate_schema(schema, hierarchy)

    def test_constraint1_alignment(self, hierarchy, task) -> None:
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 3 * PAGE + 17, "ram", 0),
                _piece(3 * PAGE + 17, task.size - 3 * PAGE - 17, "pfs", 1),
            ],
        )
        with pytest.raises(SchemaError, match="constraint 1"):
            validate_schema(schema, hierarchy)

    def test_last_piece_may_be_unaligned(self, hierarchy, gamma_f64) -> None:
        analysis = InputAnalyzer().analyze(gamma_f64)
        task = IOTask("t", 4 * PAGE + 17, analysis)
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 4 * PAGE, "ram", 0),
                _piece(4 * PAGE, 17, "pfs", 1),
            ],
        )
        validate_schema(schema, hierarchy)

    def test_constraint3_more_pieces_than_tiers(self, hierarchy, task) -> None:
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 2 * PAGE, "ram", 0),
                _piece(2 * PAGE, 2 * PAGE, "ram", 0),
                _piece(4 * PAGE, 6 * PAGE, "pfs", 1),
            ],
        )
        with pytest.raises(SchemaError, match="constraint 3|descending"):
            validate_schema(schema, hierarchy)

    def test_constraint5_piece_exceeds_tier_capacity(self, hierarchy, task) -> None:
        schema = Schema(
            task=task,
            pieces=[_piece(0, task.size, "ram", 0, stored=100 * PAGE)],
        )
        with pytest.raises(SchemaError, match="constraint 5"):
            validate_schema(schema, hierarchy)

    def test_gap_between_pieces_rejected(self, hierarchy, task) -> None:
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 4 * PAGE, "ram", 0),
                _piece(5 * PAGE, 5 * PAGE, "pfs", 1),
            ],
        )
        with pytest.raises(SchemaError, match="tile"):
            validate_schema(schema, hierarchy)

    def test_under_coverage_rejected(self, hierarchy, task) -> None:
        schema = Schema(task=task, pieces=[_piece(0, 4 * PAGE, "ram", 0)])
        with pytest.raises(SchemaError, match="cover"):
            validate_schema(schema, hierarchy)

    def test_wrong_tier_level_rejected(self, hierarchy, task) -> None:
        schema = Schema(task=task, pieces=[_piece(0, task.size, "pfs", 0)])
        with pytest.raises(SchemaError, match="level"):
            validate_schema(schema, hierarchy)

    def test_ascending_levels_required(self, hierarchy, task) -> None:
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 4 * PAGE, "pfs", 1),
                _piece(4 * PAGE, 6 * PAGE, "ram", 0),
            ],
        )
        with pytest.raises(SchemaError, match="descending|tile|order"):
            validate_schema(schema, hierarchy)

    def test_empty_task_empty_schema(self, hierarchy, gamma_f64) -> None:
        analysis = InputAnalyzer().analyze(gamma_f64)
        task = IOTask("t", 0, analysis)
        validate_schema(Schema(task=task), hierarchy)

    def test_empty_task_with_pieces_rejected(self, hierarchy, gamma_f64) -> None:
        analysis = InputAnalyzer().analyze(gamma_f64)
        task = IOTask("t", 0, analysis)
        schema = Schema(task=task, pieces=[_piece(0, PAGE, "ram", 0)])
        with pytest.raises(SchemaError):
            validate_schema(schema, hierarchy)

    def test_nonempty_task_without_pieces_rejected(self, hierarchy, task) -> None:
        with pytest.raises(SchemaError):
            validate_schema(Schema(task=task), hierarchy)


class TestSchemaAccessors:
    def test_aggregates(self, task) -> None:
        schema = Schema(
            task=task,
            pieces=[
                _piece(0, 4 * PAGE, "ram", 0, codec="lz4", ratio=2.0,
                       stored=2 * PAGE),
                _piece(4 * PAGE, 6 * PAGE, "pfs", 1, codec="zlib", ratio=3.0,
                       stored=2 * PAGE),
            ],
        )
        assert schema.tiers_used() == ["ram", "pfs"]
        assert schema.codecs_used() == ["lz4", "zlib"]
        assert schema.stored_size() == 4 * PAGE
        assert len(schema) == 2
