"""The eq. 3/4 cost model."""

from __future__ import annotations

import pytest

from repro.ccp.predictor import ExpectedCompressionCost
from repro.hcdp import ARCHIVAL_IO, ASYNC_IO, EQUAL, CostModel, Priority
from repro.tiers import TierSpec
from repro.units import MB


@pytest.fixture()
def tier() -> TierSpec:
    return TierSpec(name="t", capacity=None, bandwidth=100 * MB, latency=0.001,
                    lanes=1)


def _ecc(ratio=2.0, comp=50.0, decomp=200.0) -> ExpectedCompressionCost:
    return ExpectedCompressionCost("zlib", comp, decomp, ratio)


class TestEquation3:
    def test_io_time_latency_plus_transfer(self, tier) -> None:
        model = CostModel()
        assert model.io_time(50 * MB, tier) == pytest.approx(0.501)

    def test_load_inflates(self, tier) -> None:
        model = CostModel(load_factor=1.0)
        base = model.io_time(10 * MB, tier)
        loaded = model.io_time(10 * MB, tier, load=3)
        assert loaded == pytest.approx(base * 4.0)

    def test_backlog_adds_wait(self, tier) -> None:
        model = CostModel(load_factor=1.0)
        base = model.io_time(10 * MB, tier)
        queued = model.io_time(10 * MB, tier, queued_bytes=100 * MB)
        assert queued == pytest.approx(base + 1.0)

    def test_load_factor_zero_disables(self, tier) -> None:
        model = CostModel(load_factor=0.0)
        assert model.io_time(10 * MB, tier, load=100, queued_bytes=10**9) == (
            pytest.approx(model.io_time(10 * MB, tier))
        )

    def test_negative_load_factor_rejected(self) -> None:
        with pytest.raises(ValueError):
            CostModel(load_factor=-1.0)


class TestEquation4:
    def test_identity_is_pure_io(self, tier) -> None:
        model = CostModel(EQUAL)
        cost = model.place_cost(10 * MB, tier, None)
        assert cost.compression_time == 0.0
        assert cost.decompression_time == 0.0
        assert cost.io_time_saved == 0.0
        assert cost.total == pytest.approx(model.io_time(10 * MB, tier))

    def test_compressed_components(self, tier) -> None:
        model = CostModel(Priority(1.0, 1.0, 1.0))
        size = 50 * MB
        cost = model.place_cost(size, tier, _ecc(ratio=2.0, comp=50, decomp=200))
        assert cost.compression_time == pytest.approx(1.0)  # 50MB @ 50MB/s
        assert cost.decompression_time == pytest.approx(0.25)
        raw_io = model.io_time(size, tier)
        assert cost.io_time == pytest.approx(raw_io)
        assert cost.io_time_saved == pytest.approx(raw_io * 0.5)

    def test_weights_scale_components(self, tier) -> None:
        wc_only = CostModel(ASYNC_IO).place_cost(10 * MB, tier, _ecc())
        assert wc_only.io_time_saved == 0.0
        assert wc_only.decompression_time == 0.0
        assert wc_only.compression_time > 0

        wr_only = CostModel(ARCHIVAL_IO).place_cost(10 * MB, tier, _ecc())
        assert wr_only.compression_time == 0.0
        assert wr_only.io_time_saved > 0

    def test_ratio_below_one_treated_as_identity(self, tier) -> None:
        cost = CostModel(EQUAL).place_cost(10 * MB, tier, _ecc(ratio=0.9))
        assert cost.compression_time == 0.0
        assert cost.io_time_saved == 0.0

    def test_total_formula(self, tier) -> None:
        cost = CostModel(EQUAL).place_cost(10 * MB, tier, _ecc())
        assert cost.total == pytest.approx(
            cost.compression_time
            + cost.io_time
            - cost.io_time_saved
            + cost.decompression_time
        )

    def test_drain_term_prefers_higher_ratio(self, tier) -> None:
        """With drain pressure, a 4x codec must beat a 1.1x codec."""
        model = CostModel(Priority(1.0, 1.0, 0.0))
        drain = 1e-6  # seconds per stored byte
        heavy = model.place_cost(
            10 * MB, tier, _ecc(ratio=4.0, comp=20), drain_per_byte=drain
        )
        light = model.place_cost(
            10 * MB, tier, _ecc(ratio=1.1, comp=700), drain_per_byte=drain
        )
        assert heavy.total < light.total

    def test_drain_term_charges_identity_fully(self, tier) -> None:
        model = CostModel(EQUAL)
        plain = model.place_cost(10 * MB, tier, None)
        pressured = model.place_cost(10 * MB, tier, None, drain_per_byte=1e-7)
        assert pressured.total == pytest.approx(plain.total + 1.0)


class TestCompressionFavouredWhenIoSlow:
    def test_slow_tier_prefers_compression(self) -> None:
        """On a slow tier, eq. 4 with full weights favours a decent codec;
        on a fast tier it does not — the paper's central trade-off."""
        model = CostModel(Priority(1.0, 1.0, 0.0))
        slow = TierSpec(name="pfs", capacity=None, bandwidth=10 * MB, latency=0.005)
        fast = TierSpec(name="ram", capacity=None, bandwidth=10_000 * MB,
                        latency=1e-6)
        ecc = _ecc(ratio=2.5, comp=30.0)
        size = 10 * MB
        slow_plain = model.place_cost(size, slow, None).total
        slow_zlib = model.place_cost(size, slow, ecc).total
        assert slow_zlib < slow_plain

        fast_plain = model.place_cost(size, fast, None).total
        fast_zlib = model.place_cost(size, fast, ecc).total
        assert fast_zlib > fast_plain
