"""The cross-task plan cache: hits, epoch invalidation, exactness.

The contract under test (repro.hcdp.plan_cache): caching is an
optimization only — with the cache on or off the engine emits
byte-identical schemas, because every DP input is part of the cache key.
The monitor's ``state_epoch`` and the predictor's ``model_version`` are
invalidation signals layered on top.
"""

from __future__ import annotations

import pytest

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor, CostObservation, ObservationKey
from repro.codecs import CompressionLibraryPool
from repro.hcdp import (
    ARCHIVAL_IO,
    CachedPlan,
    HcdpEngine,
    IOTask,
    PlanCache,
    PlanCacheConfig,
)
from repro.monitor import SystemMonitor
from repro.tiers import StorageHierarchy, Tier, TierSpec
from repro.units import KiB, MiB


@pytest.fixture()
def predictor(seed) -> CompressionCostPredictor:
    p = CompressionCostPredictor()
    p.fit_seed(seed.observations)
    return p


@pytest.fixture()
def analysis(gamma_f64):
    return InputAnalyzer().analyze(gamma_f64)


def _hierarchy(*caps) -> StorageHierarchy:
    tiers = []
    bandwidths = [8e9, 4e9, 2e9]
    for i, cap in enumerate(caps):
        tiers.append(
            Tier(TierSpec(name=f"t{i}", capacity=cap,
                          bandwidth=bandwidths[i], latency=1e-6 * (i + 1),
                          lanes=2))
        )
    tiers.append(
        Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e8,
                      latency=1e-3, lanes=4))
    )
    return StorageHierarchy(tiers)


def _engine(hierarchy, predictor, enabled=True, **kw) -> HcdpEngine:
    return HcdpEngine(
        predictor, SystemMonitor(hierarchy), CompressionLibraryPool(),
        plan_cache=PlanCacheConfig(enabled=enabled), **kw,
    )


def _fingerprint(schema) -> tuple:
    return tuple(schema.pieces), round(schema.expected_cost, 12)


_EMPTY_PLAN = CachedPlan(
    pieces=(), expected_cost=0.0, memo_hits=0, memo_misses=0
)


class TestPlanCacheStore:
    def test_schema_lru_bound(self) -> None:
        cache = PlanCache(PlanCacheConfig(max_schemas=2))
        for i in range(4):
            cache.put_schema(i, ("ctx",), _EMPTY_PLAN)
        assert cache.schema_entries == 2
        assert cache.get_schema(0, ("ctx",)) is None
        assert cache.get_schema(3, ("ctx",)) is _EMPTY_PLAN

    def test_context_lru_bound(self) -> None:
        cache = PlanCache(PlanCacheConfig(max_contexts=2))
        for i in range(4):
            cache.memo((i,))
        assert cache.context_entries == 2

    def test_clear_reports_drop_count(self) -> None:
        cache = PlanCache(PlanCacheConfig())
        assert cache.clear() == 0
        cache.put_schema(1, ("ctx",), _EMPTY_PLAN)
        cache.memo(("ctx",))
        assert cache.clear() == 2
        assert cache.schema_entries == 0
        assert cache.context_entries == 0

    @pytest.mark.parametrize(
        "kw", [{"max_schemas": 0}, {"max_contexts": -1}, {"capacity_bands": 0}]
    )
    def test_config_validation(self, kw) -> None:
        with pytest.raises(ValueError):
            PlanCacheConfig(**kw)


class TestPlanCacheHits:
    def test_repeated_task_hits(self, predictor, analysis) -> None:
        # Large capacity so the quantized drain pressure stays in band 0
        # for the whole burst (no context churn from the drain term).
        engine = _engine(_hierarchy(1024 * MiB), predictor)
        schemas = [
            engine.plan(IOTask(f"t{i}", 1 * MiB, analysis)) for i in range(8)
        ]
        assert engine.stats.plan_cache_misses >= 1
        assert engine.stats.plan_cache_hits >= 6
        assert engine.stats.plan_cache_hit_rate > 0.5
        first = _fingerprint(schemas[0])
        assert all(_fingerprint(s) == first for s in schemas)

    def test_cached_schema_reports_memo_deltas(self, predictor, analysis) -> None:
        """Cache hits replay the original plan's per-task memo counters
        instead of zeros (or the whole engine's cumulative ones)."""
        engine = _engine(_hierarchy(2 * MiB, 4 * MiB), predictor)
        first = engine.plan(IOTask("a", 32 * MiB, analysis))
        second = engine.plan(IOTask("b", 32 * MiB, analysis))
        assert engine.stats.plan_cache_hits == 1
        assert (second.memo_hits, second.memo_misses) == (
            first.memo_hits, first.memo_misses
        )
        assert first.memo_misses > 0

    def test_per_plan_memo_counters_are_deltas(self, predictor, analysis) -> None:
        """schema.memo_* must be this plan's lookups, not the engine's
        running totals (the counters regression this PR fixes)."""
        engine = _engine(_hierarchy(2 * MiB, 4 * MiB), predictor, enabled=False)
        first = engine.plan(IOTask("a", 32 * MiB, analysis))
        second = engine.plan(IOTask("b", 48 * MiB, analysis))
        total = engine.stats
        assert first.memo_misses + second.memo_misses == total.memo_misses
        assert first.memo_hits + second.memo_hits == total.memo_hits
        assert second.memo_misses < total.memo_misses

    def test_disabled_cache_counts_nothing(self, predictor, analysis) -> None:
        engine = _engine(_hierarchy(64 * MiB), predictor, enabled=False)
        for i in range(4):
            engine.plan(IOTask(f"t{i}", 1 * MiB, analysis))
        assert engine.stats.plan_cache_hits == 0
        assert engine.stats.plan_cache_misses == 0

    def test_size_bucket_shares_context(self, predictor, analysis) -> None:
        """Two sizes in one power-of-two bucket plan under one shared
        planning context (one DP memo table), not one table per task."""
        engine = _engine(_hierarchy(2 * MiB, 4 * MiB), predictor)
        engine.plan(IOTask("a", 33 * MiB, analysis))
        engine.plan(IOTask("b", 34 * MiB, analysis))
        assert engine.stats.plan_cache_hits == 0  # different exact sizes
        assert engine.plan_cache.context_entries == 1
        assert engine.plan_cache.schema_entries == 2

    def test_priority_swap_invalidates(self, predictor, analysis) -> None:
        engine = _engine(_hierarchy(64 * MiB), predictor, drain_penalty=0.0)
        engine.plan(IOTask("a", 1 * MiB, analysis))
        engine.set_priority(ARCHIVAL_IO)
        assert engine.stats.plan_cache_invalidations == 1
        after = engine.plan(IOTask("b", 1 * MiB, analysis))
        assert engine.stats.plan_cache_hits == 0
        assert after.pieces[0].codec != "none"


def _burst(engine, analysis, tag, n, size=1 * MiB):
    return [
        _fingerprint(engine.plan(IOTask(f"{tag}{i}", size, analysis)))
        for i in range(n)
    ]


class TestInvalidation:
    """Each system transition drops cached plans; replanning after the
    transition matches the uncached engine byte for byte."""

    def _run_outage(self, predictor, analysis, enabled):
        h = _hierarchy(64 * MiB, 64 * MiB)
        engine = _engine(h, predictor, enabled=enabled)
        fps = _burst(engine, analysis, "pre", 5)
        h.by_name("t0").set_available(False)
        fps += _burst(engine, analysis, "post", 5)
        return fps, engine

    def test_tier_outage_invalidates(self, predictor, analysis) -> None:
        fps, engine = self._run_outage(predictor, analysis, enabled=True)
        assert engine.stats.plan_cache_invalidations >= 1
        assert engine.stats.plan_cache_hits >= 1
        # Degraded planning is still counted on cache hits after the outage.
        assert engine.stats.degraded_plans == 5
        pre, post = fps[0], fps[-1]
        assert pre != post  # the surviving tiers host the post-outage plans

    def test_tier_outage_exactness(self, predictor, analysis) -> None:
        cached, _ = self._run_outage(predictor, analysis, enabled=True)
        uncached, _ = self._run_outage(predictor, analysis, enabled=False)
        assert cached == uncached

    def _run_band_crossing(self, predictor, analysis, enabled):
        h = _hierarchy(64 * MiB, 64 * MiB)
        engine = _engine(h, predictor, enabled=enabled)
        fps = _burst(engine, analysis, "pre", 5)
        # Fill half the top tier: crosses many 1/32 fill-level bands.
        h.by_name("t0").put("fill", None, accounted_size=32 * MiB)
        fps += _burst(engine, analysis, "post", 5)
        return fps, engine

    def test_band_crossing_invalidates(self, predictor, analysis) -> None:
        fps, engine = self._run_band_crossing(predictor, analysis, enabled=True)
        assert engine.stats.plan_cache_invalidations >= 1
        assert engine.stats.plan_cache_hits >= 6  # both phases re-hit
        assert engine.monitor.state_epoch >= 1

    def test_band_crossing_exactness(self, predictor, analysis) -> None:
        cached, _ = self._run_band_crossing(predictor, analysis, enabled=True)
        uncached, _ = self._run_band_crossing(
            predictor, analysis, enabled=False
        )
        assert cached == uncached

    def _run_retrain(self, seed, analysis, enabled):
        predictor = CompressionCostPredictor()
        predictor.fit_seed(seed.observations)
        h = _hierarchy(64 * MiB, 64 * MiB)
        engine = _engine(h, predictor, enabled=enabled)
        fps = _burst(engine, analysis, "pre", 5)
        dtype, data_format, distribution = analysis.feature_key()
        for _ in range(4):  # online RLS updates; each bumps model_version
            predictor.observe(
                CostObservation(
                    key=ObservationKey(
                        dtype, data_format, distribution, "zlib", 1 * MiB
                    ),
                    compress_mbps=900.0,
                    decompress_mbps=1800.0,
                    ratio=6.0,
                )
            )
        fps += _burst(engine, analysis, "post", 5)
        return fps, engine

    def test_retrain_invalidates(self, seed, analysis) -> None:
        fps, engine = self._run_retrain(seed, analysis, enabled=True)
        assert engine.stats.plan_cache_invalidations >= 1
        assert engine.predictor.model_version > 1

    def test_retrain_exactness(self, seed, analysis) -> None:
        cached, _ = self._run_retrain(seed, analysis, enabled=True)
        uncached, _ = self._run_retrain(seed, analysis, enabled=False)
        assert cached == uncached


class TestMonitorEpoch:
    def test_availability_flip_bumps(self) -> None:
        h = _hierarchy(64 * MiB)
        monitor = SystemMonitor(h)
        monitor.sample()
        h.by_name("t0").set_available(False)
        monitor.sample()
        assert monitor.state_epoch == 1
        h.by_name("t0").set_available(True)
        monitor.sample()
        assert monitor.state_epoch == 2

    def test_band_crossing_bumps_once_per_band(self) -> None:
        h = _hierarchy(64 * MiB)
        monitor = SystemMonitor(h, capacity_bands=4)
        monitor.sample()
        h.by_name("t0").put("a", None, accounted_size=1 * MiB)
        monitor.sample()
        assert monitor.state_epoch == 0  # still inside band 0 of 4
        h.by_name("t0").put("b", None, accounted_size=17 * MiB)
        monitor.sample()
        assert monitor.state_epoch == 1

    def test_load_churn_does_not_bump(self) -> None:
        h = _hierarchy(64 * MiB)
        monitor = SystemMonitor(h)
        monitor.sample()
        tier = h.by_name("t0")
        for _ in range(8):
            tier.begin_io(1 * KiB)
        monitor.sample()
        assert monitor.state_epoch == 0
