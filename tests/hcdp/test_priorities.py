"""Priority weights (Table II)."""

from __future__ import annotations

import pytest

from repro.hcdp import ARCHIVAL_IO, ASYNC_IO, EQUAL, READ_AFTER_WRITE, Priority


class TestTableII:
    def test_async_io_is_pure_compression_speed(self) -> None:
        assert ASYNC_IO.as_tuple() == (1.0, 0.0, 0.0)

    def test_archival_is_pure_ratio(self) -> None:
        assert ARCHIVAL_IO.as_tuple() == (0.0, 1.0, 0.0)

    def test_read_after_write_balances_all_three(self) -> None:
        wc, wr, wd = READ_AFTER_WRITE.as_tuple()
        assert wc == 0.3 and wr == 0.4 and wd == 0.3

    def test_equal_weights_all_ones(self) -> None:
        assert EQUAL.as_tuple() == (1.0, 1.0, 1.0)


class TestValidation:
    def test_negative_weight_rejected(self) -> None:
        with pytest.raises(ValueError):
            Priority(-0.1, 0.5, 0.5)

    def test_all_zero_rejected(self) -> None:
        with pytest.raises(ValueError):
            Priority(0.0, 0.0, 0.0)

    def test_weights_need_not_sum_to_one(self) -> None:
        assert Priority(2.0, 3.0, 0.0).ratio == 3.0

    def test_frozen(self) -> None:
        with pytest.raises(AttributeError):
            EQUAL.ratio = 5.0  # type: ignore[misc]
