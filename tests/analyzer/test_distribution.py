"""Distribution classification via moment matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyzer import DataType, Distribution, classify_distribution


@pytest.fixture()
def rng():
    return np.random.default_rng(31)


class TestFourFamilies:
    def test_uniform(self, rng) -> None:
        data = rng.uniform(0, 100, 20_000).astype(np.float64).tobytes()
        guess = classify_distribution(data, DataType.FLOAT64)
        assert guess.distribution is Distribution.UNIFORM

    def test_normal(self, rng) -> None:
        data = rng.normal(50, 10, 20_000).astype(np.float64).tobytes()
        assert (
            classify_distribution(data, DataType.FLOAT64).distribution
            is Distribution.NORMAL
        )

    def test_exponential(self, rng) -> None:
        data = rng.exponential(5.0, 20_000).astype(np.float64).tobytes()
        assert (
            classify_distribution(data, DataType.FLOAT64).distribution
            is Distribution.EXPONENTIAL
        )

    def test_gamma(self, rng) -> None:
        data = rng.gamma(3.0, 2.0, 20_000).astype(np.float64).tobytes()
        assert (
            classify_distribution(data, DataType.FLOAT64).distribution
            is Distribution.GAMMA
        )

    def test_float32_variants(self, rng) -> None:
        data = rng.normal(0, 1, 20_000).astype(np.float32).tobytes()
        assert (
            classify_distribution(data, DataType.FLOAT32).distribution
            is Distribution.NORMAL
        )

    def test_integer_gamma(self, rng) -> None:
        data = rng.gamma(2.0, 500.0, 20_000).astype(np.int64).tobytes()
        assert (
            classify_distribution(data, DataType.INT64).distribution
            is Distribution.GAMMA
        )


class TestSpecialClasses:
    def test_text_short_circuits(self) -> None:
        guess = classify_distribution(b"hello " * 100, DataType.TEXT)
        assert guess.distribution is Distribution.TEXT

    def test_constant_buffer_is_zeros(self) -> None:
        data = np.full(5_000, 3.25, dtype=np.float64).tobytes()
        assert (
            classify_distribution(data, DataType.FLOAT64).distribution
            is Distribution.ZEROS
        )

    def test_zero_page(self) -> None:
        assert (
            classify_distribution(bytes(40_000), DataType.FLOAT64).distribution
            is Distribution.ZEROS
        )

    def test_too_short_is_zeros(self) -> None:
        assert (
            classify_distribution(b"12345678", DataType.FLOAT64).distribution
            is Distribution.ZEROS
        )

    def test_nan_heavy_buffer_degrades_gracefully(self, rng) -> None:
        values = rng.normal(0, 1, 10_000)
        values[::2] = np.nan
        guess = classify_distribution(
            values.astype(np.float64).tobytes(), DataType.FLOAT64
        )
        assert guess.distribution in (Distribution.NORMAL, Distribution.ZEROS)


class TestEvidence:
    def test_moments_reported(self, rng) -> None:
        data = rng.exponential(1.0, 30_000).astype(np.float64).tobytes()
        guess = classify_distribution(data, DataType.FLOAT64)
        assert guess.skewness == pytest.approx(2.0, abs=0.5)
        assert guess.excess_kurtosis == pytest.approx(6.0, abs=3.0)

    def test_subsampling_keeps_classification(self, rng) -> None:
        small = rng.gamma(3.0, 2.0, 5_000).astype(np.float64).tobytes()
        large = rng.gamma(3.0, 2.0, 500_000).astype(np.float64).tobytes()
        assert (
            classify_distribution(small, DataType.FLOAT64).distribution
            == classify_distribution(large, DataType.FLOAT64).distribution
        )
