"""Data-type inference on synthetic and adversarial buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyzer import DataType, infer_datatype, sample_buffer


@pytest.fixture()
def rng():
    return np.random.default_rng(21)


class TestInference:
    def test_float64(self, rng) -> None:
        data = rng.normal(100.0, 5.0, 10_000).astype(np.float64).tobytes()
        assert infer_datatype(data).dtype is DataType.FLOAT64

    def test_float32(self, rng) -> None:
        data = rng.normal(0.0, 1.0, 10_000).astype(np.float32).tobytes()
        assert infer_datatype(data).dtype is DataType.FLOAT32

    def test_int32(self, rng) -> None:
        data = rng.integers(0, 50_000, 10_000, dtype=np.int32).tobytes()
        assert infer_datatype(data).dtype is DataType.INT32

    def test_int64(self, rng) -> None:
        data = rng.integers(0, 10**6, 10_000, dtype=np.int64).tobytes()
        assert infer_datatype(data).dtype is DataType.INT64

    def test_text(self) -> None:
        data = b"plain english prose with punctuation, numbers 123.\n" * 200
        assert infer_datatype(data).dtype is DataType.TEXT

    def test_random_bytes_fall_back(self, rng) -> None:
        data = rng.integers(0, 256, 30_000, dtype=np.uint8).tobytes()
        assert infer_datatype(data).dtype is DataType.BYTES

    def test_empty(self) -> None:
        guess = infer_datatype(b"")
        assert guess.dtype is DataType.BYTES
        assert guess.confidence == 0.0

    def test_scores_reported(self, rng) -> None:
        data = rng.normal(0, 1, 5_000).astype(np.float64).tobytes()
        guess = infer_datatype(data)
        assert guess.scores[DataType.FLOAT64.value] >= guess.scores[
            DataType.INT64.value
        ]

    def test_numpy_dtype_property(self) -> None:
        assert DataType.FLOAT32.numpy_dtype == np.dtype(np.float32)
        assert DataType.TEXT.numpy_dtype is None


class TestSampling:
    def test_small_buffers_returned_whole(self) -> None:
        assert sample_buffer(b"tiny") == b"tiny"

    def test_large_buffers_capped(self, rng) -> None:
        data = rng.integers(0, 256, 1_000_000, dtype=np.uint8).tobytes()
        sample = sample_buffer(data, limit=64 * 1024)
        assert len(sample) <= 64 * 1024

    def test_sample_is_eight_byte_aligned_slices(self, rng) -> None:
        """Element framing survives sampling: float64 data sampled from a
        float64 buffer still decodes as float64."""
        data = rng.normal(5, 1, 200_000).astype(np.float64).tobytes()
        sample = sample_buffer(data)
        values = np.frombuffer(
            sample[: len(sample) - len(sample) % 8], dtype=np.float64
        )
        assert np.isfinite(values).all()

    def test_sampling_is_deterministic(self, rng) -> None:
        data = rng.integers(0, 256, 500_000, dtype=np.uint8).tobytes()
        assert sample_buffer(data) == sample_buffer(data)
