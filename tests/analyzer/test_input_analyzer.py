"""The analyzer facade: hints fast path, caching, feature keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyzer import (
    DataFormat,
    DataType,
    Distribution,
    InputAnalyzer,
    MetadataHints,
)


@pytest.fixture()
def analyzer() -> InputAnalyzer:
    return InputAnalyzer()


class TestFullInference:
    def test_binary_float_buffer(self, analyzer, rng) -> None:
        data = rng.gamma(2.0, 3.0, 20_000).astype(np.float64).tobytes()
        analysis = analyzer.analyze(data)
        assert analysis.dtype is DataType.FLOAT64
        assert analysis.data_format is DataFormat.BINARY
        assert analysis.distribution is Distribution.GAMMA
        assert analysis.size == len(data)
        assert not analysis.from_metadata

    def test_text_formats_get_text_dtype(self, analyzer) -> None:
        csv = "\n".join(f"{i},{i}" for i in range(300)).encode()
        analysis = analyzer.analyze(csv)
        assert analysis.dtype is DataType.TEXT
        assert analysis.data_format is DataFormat.CSV
        assert analysis.distribution is Distribution.TEXT

    def test_feature_key(self, analyzer, rng) -> None:
        data = rng.normal(0, 1, 10_000).astype(np.float32).tobytes()
        key = analyzer.analyze(data).feature_key()
        assert key == ("float32", "binary", "normal")


class TestHints:
    def test_full_hints_bypass_inference(self, analyzer) -> None:
        hints = MetadataHints(
            dtype=DataType.FLOAT32,
            data_format=DataFormat.H5LITE,
            distribution=Distribution.NORMAL,
        )
        # Garbage bytes: with full hints nothing is inferred.
        analysis = analyzer.analyze(b"\x00\x01\x02\x03" * 100, hints)
        assert analysis.from_metadata
        assert analysis.dtype is DataType.FLOAT32
        assert analysis.data_format is DataFormat.H5LITE
        assert analysis.distribution is Distribution.NORMAL

    def test_partial_hints_fill_gaps(self, analyzer, rng) -> None:
        data = rng.exponential(2.0, 10_000).astype(np.float64).tobytes()
        hints = MetadataHints(dtype=DataType.FLOAT64)
        analysis = analyzer.analyze(data, hints)
        assert analysis.dtype is DataType.FLOAT64
        assert analysis.distribution is Distribution.EXPONENTIAL

    def test_h5lite_hints_roundtrip(self, rng) -> None:
        from repro.formats import H5LiteFile
        from repro.workloads import h5lite_block

        blob = h5lite_block("float64", "gamma", 16_384, rng)
        hints = H5LiteFile(blob).hints("block")
        assert hints.dtype is DataType.FLOAT64
        assert hints.data_format is DataFormat.H5LITE
        assert hints.distribution is Distribution.GAMMA


class TestCaching:
    def test_repeated_buffers_hit_cache(self, analyzer, rng) -> None:
        data = rng.normal(0, 1, 50_000).astype(np.float64).tobytes()
        first = analyzer.analyze(data)
        second = analyzer.analyze(data)
        assert second is first

    def test_different_buffers_not_conflated(self, analyzer, rng) -> None:
        a = rng.normal(0, 1, 20_000).astype(np.float64).tobytes()
        b = rng.uniform(0, 1, 20_000).astype(np.float64).tobytes()
        assert analyzer.analyze(a).distribution != analyzer.analyze(b).distribution

    def test_cache_eviction(self, rng) -> None:
        analyzer = InputAnalyzer(cache_size=2)
        buffers = [
            rng.normal(i, 1, 5_000).astype(np.float64).tobytes() for i in range(5)
        ]
        for buf in buffers:
            analyzer.analyze(buf)
        # No assertion on internals beyond "still answers correctly".
        assert analyzer.analyze(buffers[0]).dtype is DataType.FLOAT64
