"""Format detection: magic numbers and text-structure heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyzer import DataFormat, detect_format
from repro.analyzer.format import H5LITE_MAGIC


class TestMagic:
    def test_h5lite_magic(self) -> None:
        assert detect_format(H5LITE_MAGIC + b"anything") is DataFormat.H5LITE

    def test_real_h5lite_file(self, rng) -> None:
        from repro.workloads import h5lite_block

        blob = h5lite_block("float64", "gamma", 8192, rng)
        assert detect_format(blob) is DataFormat.H5LITE


class TestTextFormats:
    def test_csv(self) -> None:
        text = "\n".join(f"{i},{i * 2},{i % 5}" for i in range(200)).encode()
        assert detect_format(text) is DataFormat.CSV

    def test_tsv(self) -> None:
        text = "\n".join(f"{i}\t{i * 2}" for i in range(200)).encode()
        assert detect_format(text) is DataFormat.CSV

    def test_inconsistent_delimiters_not_csv(self) -> None:
        text = b"one,two,three\nfour\nfive,six\nseven,eight,nine,ten\n" * 20
        assert detect_format(text) is DataFormat.TEXT

    def test_json_object(self) -> None:
        doc = (
            "{" + ",".join(f'"k{i}": {i}' for i in range(100)) + "}"
        ).encode()
        assert detect_format(doc) is DataFormat.JSON

    def test_json_array(self) -> None:
        doc = ("[" + ",".join(f'{{"a": {i}}}' for i in range(100)) + "]").encode()
        assert detect_format(doc) is DataFormat.JSON

    def test_prose(self) -> None:
        prose = b"Just some plain prose without any structure at all. " * 100
        assert detect_format(prose) is DataFormat.TEXT


class TestBinary:
    def test_random_bytes(self, rng) -> None:
        data = rng.integers(0, 256, 10_000, dtype=np.uint8).tobytes()
        assert detect_format(data) is DataFormat.BINARY

    def test_float_array(self, rng) -> None:
        data = rng.normal(0, 1, 5_000).astype(np.float64).tobytes()
        assert detect_format(data) is DataFormat.BINARY

    def test_empty(self) -> None:
        assert detect_format(b"") is DataFormat.BINARY
