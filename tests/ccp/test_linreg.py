"""OLS and recursive least squares."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccp import OlsModel, RecursiveLeastSquares
from repro.errors import ModelError


def _linear_data(n=200, width=4, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    theta = np.array([2.0, -1.0, 0.5, 3.0])[:width]
    X = rng.normal(0, 1, (n, width))
    X[:, 0] = 1.0
    y = X @ theta + rng.normal(0, noise, n)
    return X, y, theta


class TestOls:
    def test_recovers_coefficients(self) -> None:
        X, y, theta = _linear_data()
        model = OlsModel(4)
        model.fit(X, y)
        assert np.allclose(model.theta, theta, atol=0.05)

    def test_predict_matrix_and_vector(self) -> None:
        X, y, _ = _linear_data()
        model = OlsModel(4)
        model.fit(X, y)
        assert model.predict(X).shape == (200,)
        assert isinstance(model.predict(X[0]), float)

    def test_fit_report_quality_metrics(self) -> None:
        X, y, _ = _linear_data(noise=0.01)
        report = OlsModel(4).fit(X, y)
        assert report.r2 > 0.99
        assert report.adjusted_r2 <= report.r2 + 1e-9
        assert report.f_statistic > 100
        assert report.p_values.shape == (4,)
        assert (report.p_values[1:] < 0.01).all()

    def test_noisy_fit_lower_r2(self) -> None:
        X, y, _ = _linear_data(noise=2.0)
        report = OlsModel(4).fit(X, y)
        assert report.r2 < 0.95

    def test_predict_before_fit(self) -> None:
        with pytest.raises(ModelError):
            OlsModel(3).predict(np.zeros(3))

    def test_shape_validation(self) -> None:
        model = OlsModel(4)
        with pytest.raises(ModelError):
            model.fit(np.zeros((10, 3)), np.zeros(10))
        with pytest.raises(ModelError):
            model.fit(np.zeros((10, 4)), np.zeros(9))

    def test_too_few_samples(self) -> None:
        with pytest.raises(ModelError):
            OlsModel(2).fit(np.zeros((1, 2)), np.zeros(1))

    def test_collinear_design_does_not_crash(self) -> None:
        """One-hot blocks overlapping the intercept are the normal case."""
        rng = np.random.default_rng(1)
        X = np.zeros((100, 4))
        X[:, 0] = 1.0
        picks = rng.integers(1, 4, 100)
        X[np.arange(100), picks] = 1.0  # columns 1..3 sum to the intercept
        y = picks.astype(float)
        report = OlsModel(4).fit(X, y)
        assert report.r2 > 0.99


class TestRls:
    def test_converges_to_true_parameters(self) -> None:
        X, y, theta = _linear_data(n=500)
        rls = RecursiveLeastSquares(4)
        for xi, yi in zip(X, y):
            rls.update(xi, yi)
        assert np.allclose(rls.theta, theta, atol=0.05)

    def test_from_ols_continues(self) -> None:
        X, y, _ = _linear_data()
        ols = OlsModel(4)
        ols.fit(X, y)
        rls = RecursiveLeastSquares.from_ols(ols)
        assert np.allclose(rls.theta, ols.theta)
        before = rls.predict(X[0])
        rls.update(X[0], y[0] + 5.0)
        assert rls.predict(X[0]) != before

    def test_from_unfitted_ols(self) -> None:
        with pytest.raises(ModelError):
            RecursiveLeastSquares.from_ols(OlsModel(3))

    def test_update_returns_pre_update_error(self) -> None:
        rls = RecursiveLeastSquares(2)
        error = rls.update(np.array([1.0, 0.0]), 10.0)
        assert error == pytest.approx(10.0)

    def test_adapts_to_shifted_target(self) -> None:
        """After a drift, repeated observations pull predictions over."""
        rls = RecursiveLeastSquares(2)
        x = np.array([1.0, 1.0])
        for _ in range(50):
            rls.update(x, 1.0)
        for _ in range(200):
            rls.update(x, 3.0)
        assert rls.predict(x) == pytest.approx(3.0, abs=0.7)

    def test_no_windup_on_repeated_updates(self) -> None:
        """Tens of thousands of one-direction updates must not blow up
        the covariance (the historical lam<1 failure mode)."""
        rls = RecursiveLeastSquares(8)
        x = np.zeros(8)
        x[0] = 1.0
        for _ in range(30_000):
            rls.update(x, 1.0)
        probe = np.ones(8)
        assert abs(rls.predict(probe)) < 100.0
        assert np.isfinite(rls.P).all()

    def test_validation(self) -> None:
        with pytest.raises(ModelError):
            RecursiveLeastSquares(0)
        with pytest.raises(ModelError):
            RecursiveLeastSquares(2, lam=0.3)
        with pytest.raises(ModelError):
            RecursiveLeastSquares(2, theta=np.zeros(3))
        rls = RecursiveLeastSquares(2)
        with pytest.raises(ModelError):
            rls.update(np.zeros(3), 1.0)

    def test_update_counter(self) -> None:
        rls = RecursiveLeastSquares(2)
        rls.update(np.array([1.0, 0.0]), 1.0)
        rls.update(np.array([0.0, 1.0]), 2.0)
        assert rls.updates == 2
