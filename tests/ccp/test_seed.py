"""JSON seed persistence."""

from __future__ import annotations

import json

import pytest

from repro.ccp import CostObservation, ObservationKey, SeedData, load_seed, save_seed
from repro.errors import SeedError


def _seed() -> SeedData:
    return SeedData(
        observations=[
            CostObservation(
                key=ObservationKey("float64", "binary", "gamma", "zlib", 65536),
                compress_mbps=30.0,
                decompress_mbps=400.0,
                ratio=2.5,
            ),
            CostObservation(
                key=ObservationKey("text", "csv", "text", "snappy", 4096),
                compress_mbps=560.0,
                decompress_mbps=1800.0,
                ratio=3.1,
            ),
        ],
        system_signature={"ram": {"bandwidth": 1e9, "latency": 1e-6}},
        weights={"compression": 1.0, "ratio": 1.0, "decompression": 0.0},
    )


class TestRoundtrip:
    def test_save_load(self, tmp_path) -> None:
        path = tmp_path / "seed.json"
        save_seed(_seed(), path)
        loaded = load_seed(path)
        assert loaded.observations == _seed().observations
        assert loaded.system_signature == _seed().system_signature
        assert loaded.weights == _seed().weights

    def test_file_is_plain_json(self, tmp_path) -> None:
        path = tmp_path / "seed.json"
        save_seed(_seed(), path)
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert len(doc["observations"]) == 2


class TestValidation:
    def test_missing_file(self, tmp_path) -> None:
        with pytest.raises(SeedError):
            load_seed(tmp_path / "ghost.json")

    def test_invalid_json(self, tmp_path) -> None:
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SeedError):
            load_seed(path)

    def test_non_object_document(self, tmp_path) -> None:
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SeedError):
            load_seed(path)

    def test_malformed_observation(self, tmp_path) -> None:
        path = tmp_path / "seed.json"
        path.write_text(json.dumps({
            "version": 1,
            "observations": [{"dtype": "float64"}],  # missing fields
        }))
        with pytest.raises(SeedError, match="observation #0"):
            load_seed(path)

    def test_wrong_version(self, tmp_path) -> None:
        path = tmp_path / "seed.json"
        path.write_text(json.dumps({"version": 99, "observations": []}))
        with pytest.raises(SeedError, match="version"):
            load_seed(path)

    def test_observation_invariants(self) -> None:
        key = ObservationKey("float64", "binary", "gamma", "zlib", 100)
        with pytest.raises(SeedError):
            CostObservation(key, compress_mbps=0, decompress_mbps=1, ratio=1)
        with pytest.raises(SeedError):
            CostObservation(key, compress_mbps=1, decompress_mbps=1, ratio=0)
