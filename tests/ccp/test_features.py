"""Feature encoding: reference categories, interactions, stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccp import FeatureEncoder, ObservationKey


@pytest.fixture()
def encoder() -> FeatureEncoder:
    return FeatureEncoder()


def _key(**kw) -> ObservationKey:
    defaults = dict(
        dtype="float32",
        data_format="binary",
        distribution="normal",
        codec="zlib",
        size=1 << 20,
    )
    defaults.update(kw)
    return ObservationKey(**defaults)


class TestEncoding:
    def test_width_is_consistent(self, encoder) -> None:
        row = encoder.encode(_key())
        assert row.shape == (encoder.width,)

    def test_intercept_always_set(self, encoder) -> None:
        assert encoder.encode(_key())[0] == 1.0

    def test_distinct_keys_distinct_rows(self, encoder) -> None:
        a = encoder.encode(_key(codec="zlib"))
        b = encoder.encode(_key(codec="lz4"))
        assert not np.array_equal(a, b)

    def test_reference_categories_encode_to_baseline(self, encoder) -> None:
        """float64/h5lite/uniform (block references) contribute zeros, so
        their row has strictly fewer active features."""
        reference = encoder.encode(
            _key(dtype="float64", data_format="h5lite", distribution="uniform")
        )
        other = encoder.encode(_key())
        assert reference.sum() < other.sum()

    def test_unknown_categories_match_reference(self, encoder) -> None:
        unknown = encoder.encode(_key(data_format="netcdf"))
        reference = encoder.encode(_key(data_format="h5lite"))
        assert np.array_equal(unknown, reference)

    def test_size_feature_monotone(self, encoder) -> None:
        small = encoder.encode(_key(size=4096))
        large = encoder.encode(_key(size=1 << 30))
        diff = large - small
        assert (diff >= 0).all()
        assert diff.sum() > 0

    def test_interaction_features_present(self, encoder) -> None:
        """codec x distribution pairs activate distinct interaction cells."""
        a = encoder.encode(_key(codec="zlib", distribution="normal"))
        b = encoder.encode(_key(codec="zlib", distribution="gamma"))
        c = encoder.encode(_key(codec="lz4", distribution="normal"))
        # All three share the zlib or normal main effects but no two share
        # the same interaction cell.
        tail = encoder.width - 1
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_batch_encode(self, encoder) -> None:
        keys = [_key(codec=c) for c in ("zlib", "lz4", "bsc")]
        X = encoder.encode_batch(keys)
        assert X.shape == (3, encoder.width)
        assert np.array_equal(X[0], encoder.encode(keys[0]))

    def test_empty_batch(self, encoder) -> None:
        assert encoder.encode_batch([]).shape == (0, encoder.width)

    def test_codecs_property_includes_identity(self, encoder) -> None:
        assert encoder.codecs[0] == "none"


class TestObservationKey:
    def test_negative_size_rejected(self) -> None:
        with pytest.raises(ValueError):
            ObservationKey("float64", "binary", "normal", "zlib", -1)
