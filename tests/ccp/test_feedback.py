"""The reinforcement feedback loop (paper §IV-D) and its accuracy claim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccp import (
    CompressionCostPredictor,
    CostObservation,
    FeedbackLoop,
    ObservationKey,
)
from repro.errors import ModelError


def _obs(ratio: float, codec="zlib", dist="gamma") -> CostObservation:
    return CostObservation(
        key=ObservationKey("float64", "binary", dist, codec, 65536),
        compress_mbps=30.0,
        decompress_mbps=400.0,
        ratio=ratio,
    )


@pytest.fixture()
def loop(seed) -> FeedbackLoop:
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    return FeedbackLoop(predictor, every_n=4)


class TestBatching:
    def test_flush_cadence(self, loop) -> None:
        for i in range(3):
            assert loop.record(_obs(2.0)) is False
        assert loop.record(_obs(2.0)) is True  # 4th triggers flush
        assert loop.pending == 0
        assert loop.flushes == 1
        assert loop.events == 4

    def test_manual_flush(self, loop) -> None:
        loop.record(_obs(2.0))
        assert loop.flush() == 1
        assert loop.pending == 0

    def test_empty_flush_not_counted(self, loop) -> None:
        assert loop.flush() == 0
        assert loop.flushes == 0

    def test_every_n_validation(self, loop) -> None:
        with pytest.raises(ModelError):
            FeedbackLoop(loop.predictor, every_n=0)

    def test_observations_reach_model(self, loop) -> None:
        seen = loop.predictor.observations_seen
        for _ in range(8):
            loop.record(_obs(2.0))
        assert loop.predictor.observations_seen == seen + 8


class TestPaperClaim:
    def test_feedback_recovers_accuracy_on_drifted_data(self, seed) -> None:
        """§IV-D: accuracy drops on drifted real data and the feedback loop
        pulls it back up (83% -> 96% in the paper)."""
        predictor = CompressionCostPredictor()
        predictor.fit_seed(seed.observations)
        loop = FeedbackLoop(predictor, every_n=16)
        rng = np.random.default_rng(3)

        # Drifted world: every codec's real ratio is 1.6x the seed's.
        codecs = ("zlib", "lz4", "bzip2", "snappy", "lzma", "brotli")
        from repro.codecs import get_profile

        def world_ratio(codec: str) -> float:
            return max(get_profile(codec).hint("gamma") * 1.6, 1.0)

        early, late = [], []
        for i in range(600):
            codec = codecs[i % len(codecs)]
            actual = world_ratio(codec) * float(rng.lognormal(0, 0.03))
            predicted = predictor.predict(
                ObservationKey("float64", "binary", "gamma", codec, 65536)
            ).ratio
            (early if i < 100 else late).append(
                abs(np.log2(predicted) - np.log2(actual))
            )
            loop.record(_obs(actual, codec=codec))
        assert np.mean(late[-100:]) < np.mean(early) * 0.5

    def test_accuracy_metric_exposed(self, loop) -> None:
        rng = np.random.default_rng(0)
        for i in range(64):
            loop.record(_obs(2.0 * float(rng.lognormal(0, 0.1))))
        loop.flush()
        accuracy = loop.accuracy()
        assert accuracy is None or -1.0 <= accuracy <= 1.0
