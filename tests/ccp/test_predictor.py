"""The Compression Cost Predictor: seed fit, inference, online learning."""

from __future__ import annotations

import pytest

from repro.ccp import (
    CompressionCostPredictor,
    CostObservation,
    ObservationKey,
)
from repro.errors import ModelError


def _obs(codec="zlib", ratio=2.5, comp=30.0, decomp=400.0, dist="gamma",
         dtype="float64", fmt="binary", size=65536) -> CostObservation:
    return CostObservation(
        key=ObservationKey(dtype, fmt, dist, codec, size),
        compress_mbps=comp,
        decompress_mbps=decomp,
        ratio=ratio,
    )


@pytest.fixture()
def fitted(seed) -> CompressionCostPredictor:
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    return predictor


class TestSeedFit:
    def test_fit_reports_per_target(self, fitted) -> None:
        reports = fitted.fit_reports
        assert set(reports) == {"compress_mbps", "decompress_mbps", "ratio"}
        # Speeds in nominal mode are deterministic per codec: near-perfect.
        assert reports["compress_mbps"].r2 > 0.99
        # Ratio model quality mirrors the paper's ~94% seed fit.
        assert reports["ratio"].r2 > 0.85

    def test_too_few_observations(self) -> None:
        predictor = CompressionCostPredictor()
        with pytest.raises(ModelError):
            predictor.fit_seed([_obs()] * 3)

    def test_unfitted_predict_raises(self) -> None:
        with pytest.raises(ModelError):
            CompressionCostPredictor().predict(
                ObservationKey("float64", "binary", "gamma", "zlib", 100)
            )


class TestInference:
    def test_identity_is_analytic(self) -> None:
        predictor = CompressionCostPredictor()  # even unfitted
        ecc = predictor.predict(
            ObservationKey("float64", "binary", "gamma", "none", 100)
        )
        assert ecc.ratio == 1.0
        assert ecc.compress_mbps > 1000

    def test_speed_predictions_match_nominal_profiles(self, fitted) -> None:
        from repro.codecs import get_profile

        for codec in ("zlib", "lz4", "lzma"):
            ecc = fitted.predict(
                ObservationKey("float64", "binary", "gamma", codec, 65536)
            )
            nominal = get_profile(codec)
            assert ecc.compress_mbps == pytest.approx(
                nominal.compress_mbps, rel=0.15
            )

    def test_ratio_ordering_heavy_vs_light(self, fitted) -> None:
        heavy = fitted.predict(
            ObservationKey("float64", "binary", "gamma", "lzma", 65536)
        )
        light = fitted.predict(
            ObservationKey("float64", "binary", "gamma", "snappy", 65536)
        )
        assert heavy.ratio > light.ratio

    def test_uniform_data_predicts_lower_ratio_than_gamma(self, fitted) -> None:
        # Quantised uniform floats still compress a little (zeroed mantissa
        # tails), but skewed data must predict strictly better.
        uniform = fitted.predict(
            ObservationKey("float64", "binary", "uniform", "zlib", 65536)
        )
        gamma = fitted.predict(
            ObservationKey("float64", "binary", "gamma", "zlib", 65536)
        )
        assert uniform.ratio < gamma.ratio

    def test_predict_all_covers_roster(self, fitted) -> None:
        table = fitted.predict_all("float64", "binary", "gamma", 65536)
        assert "none" in table
        assert len(table) == 12

    def test_predictions_never_degenerate(self, fitted) -> None:
        """Clamps keep outputs positive and finite for any key."""
        ecc = fitted.predict(
            ObservationKey("weird", "unknown", "alien", "zlib", 1)
        )
        assert 0 < ecc.ratio < 2**21
        assert ecc.compress_mbps > 0


class TestBatchedInference:
    ROSTER = ("zlib", "bzip2", "lzma", "snappy")

    def _keys(self, size=65536):
        return [
            ObservationKey("float64", "binary", "gamma", codec, size)
            for codec in ("none",) + self.ROSTER
        ]

    def test_batch_matches_scalar_exactly(self, fitted) -> None:
        keys = self._keys()
        batch = fitted.predict_batch(keys)
        fitted._cache.clear()  # force the scalar path to recompute
        for key, ecc in zip(keys, batch):
            scalar = fitted.predict(key)
            assert scalar.ratio == ecc.ratio
            assert scalar.compress_mbps == ecc.compress_mbps
            assert scalar.decompress_mbps == ecc.decompress_mbps

    def test_batch_folds_into_scalar_cache(self, fitted) -> None:
        keys = self._keys()
        batch = fitted.predict_batch(keys)
        # Identity answered analytically; model-backed keys now cached.
        for key, ecc in zip(keys[1:], batch[1:]):
            assert fitted.predict(key) is ecc

    def test_batch_unfitted_raises(self) -> None:
        with pytest.raises(ModelError):
            CompressionCostPredictor().predict_batch(self._keys())

    def test_batch_identity_needs_no_model(self) -> None:
        [ecc] = CompressionCostPredictor().predict_batch(
            [ObservationKey("float64", "binary", "gamma", "none", 4096)]
        )
        assert ecc.ratio == 1.0

    def test_candidate_table_cached_per_version(self, fitted) -> None:
        args = ("float64", "binary", "gamma", 65536, self.ROSTER)
        first = fitted.candidate_table(*args)
        assert fitted.candidate_table(*args) is first
        fitted.observe(_obs())  # model changed: table must be rebuilt
        assert fitted.candidate_table(*args) is not first

    def test_model_version_monotone(self, fitted) -> None:
        v0 = fitted.model_version
        assert v0 == 1  # the seed fit
        fitted.observe(_obs())
        assert fitted.model_version == v0 + 1
        clone = CompressionCostPredictor()
        clone.import_theta(fitted.export_theta())
        assert clone.model_version == 1


class TestOnlineLearning:
    def test_observe_moves_predictions(self, fitted) -> None:
        key = ObservationKey("float64", "binary", "gamma", "zlib", 65536)
        before = fitted.predict(key).ratio
        target = before * 2.0
        for _ in range(100):
            fitted.observe(_obs(ratio=target))
        after = fitted.predict(key).ratio
        assert abs(after - target) < abs(before - target)

    def test_observe_requires_fit(self) -> None:
        with pytest.raises(ModelError):
            CompressionCostPredictor().observe(_obs())

    def test_identity_observations_ignored(self, fitted) -> None:
        seen = fitted.observations_seen
        fitted.observe(_obs(codec="none", ratio=1.0))
        assert fitted.observations_seen == seen

    def test_accuracy_warms_up(self, fitted) -> None:
        assert fitted.accuracy("ratio") is None
        for i in range(32):
            fitted.observe(_obs(ratio=2.0 + 0.1 * (i % 5)))
        assert fitted.accuracy("ratio") is not None

    def test_accuracy_unknown_target(self, fitted) -> None:
        with pytest.raises(ModelError):
            fitted.accuracy("latency")

    def test_cache_invalidated_by_observe(self, fitted) -> None:
        key = ObservationKey("float64", "binary", "gamma", "zlib", 65536)
        first = fitted.predict(key)
        assert fitted.predict(key) is first  # cached
        fitted.observe(_obs(ratio=9.0))
        assert fitted.predict(key) is not first


class TestPersistence:
    def test_export_import_theta(self, fitted) -> None:
        key = ObservationKey("float64", "binary", "gamma", "zlib", 65536)
        expected = fitted.predict(key)
        theta = fitted.export_theta()
        clone = CompressionCostPredictor()
        clone.import_theta(theta)
        assert clone.predict(key).ratio == pytest.approx(expected.ratio)

    def test_import_missing_head(self, fitted) -> None:
        theta = fitted.export_theta()
        del theta["ratio"]
        with pytest.raises(ModelError):
            CompressionCostPredictor().import_theta(theta)
