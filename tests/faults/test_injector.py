"""FaultInjector: scheduled events, per-op faults, determinism."""

from __future__ import annotations

import pytest

from repro.errors import HCompressError, TransientIOError
from repro.faults import FaultInjector, FaultPlan, FaultyDevice
from repro.sim import Delay, Simulation
from repro.tiers import StorageHierarchy, Tier, TierSpec


def _hierarchy() -> StorageHierarchy:
    return StorageHierarchy(
        [
            Tier(TierSpec(name="fast", capacity=10_000, bandwidth=1e9,
                          latency=0)),
            Tier(TierSpec(name="slow", capacity=None, bandwidth=1e8,
                          latency=0)),
        ]
    )


class TestScheduledEvents:
    def test_outage_and_recovery(self) -> None:
        hierarchy = _hierarchy()
        plan = FaultPlan().outage("fast", start=1.0, end=2.0)
        injector = FaultInjector(plan, hierarchy)
        fast = hierarchy.by_name("fast")
        assert injector.advance_to(0.5) == 0
        assert fast.available
        assert injector.advance_to(1.0) == 1
        assert not fast.available
        assert injector.advance_to(3.0) == 1
        assert fast.available
        assert injector.stats.outages == 1
        assert injector.stats.recoveries == 1

    def test_slowdown_and_capacity(self) -> None:
        hierarchy = _hierarchy()
        plan = (
            FaultPlan()
            .degraded("fast", start=0.0, end=1.0, factor=5.0)
            .shrink("fast", at=0.5, limit=100)
        )
        injector = FaultInjector(plan, hierarchy)
        fast = hierarchy.by_name("fast")
        injector.advance_to(0.0)
        assert fast.slowdown == 5.0
        injector.advance_to(0.5)
        assert fast.effective_capacity == 100
        injector.advance_to(1.0)
        assert fast.slowdown == 1.0

    def test_time_cannot_move_backwards(self) -> None:
        injector = FaultInjector(FaultPlan(), _hierarchy())
        injector.advance_to(2.0)
        with pytest.raises(HCompressError):
            injector.advance_to(1.0)

    def test_unknown_tier_rejected_up_front(self) -> None:
        plan = FaultPlan().outage("tape", start=0.0, end=1.0)
        with pytest.raises(HCompressError):
            FaultInjector(plan, _hierarchy())

    def test_sim_daemon_applies_events_at_their_times(self) -> None:
        hierarchy = _hierarchy()
        plan = FaultPlan().outage("fast", start=0.5, end=1.5)
        injector = FaultInjector(plan, hierarchy)
        observed = []

        def probe():
            for _ in range(4):
                observed.append(
                    (round(0.5 * len(observed), 1),
                     hierarchy.by_name("fast").available)
                )
                yield Delay(0.5)

        sim = Simulation(hierarchy)
        sim.add_process(injector.process(), daemon=True)
        sim.add_process(probe())
        sim.run()
        assert observed[0] == (0.0, True)
        assert observed[2] == (1.0, False)  # outage live at t=1
        assert injector.stats.events_applied == 2


class TestArming:
    def test_arm_wraps_and_disarm_unwraps(self) -> None:
        hierarchy = _hierarchy()
        injector = FaultInjector(FaultPlan(), hierarchy)
        injector.arm()
        assert all(isinstance(t.device, FaultyDevice) for t in hierarchy)
        injector.arm()  # idempotent: no double wrapping
        assert not isinstance(
            hierarchy.by_name("fast").device.inner, FaultyDevice
        )
        injector.disarm()
        assert not any(isinstance(t.device, FaultyDevice) for t in hierarchy)

    def test_blobs_survive_arm_disarm(self) -> None:
        hierarchy = _hierarchy()
        fast = hierarchy.by_name("fast")
        fast.put("k", b"precious")
        injector = FaultInjector(FaultPlan(), hierarchy)
        injector.arm()
        assert fast.get("k") == b"precious"
        injector.disarm()
        assert fast.get("k") == b"precious"


class TestPerOpFaults:
    def test_transient_store_errors_at_rate_one(self) -> None:
        hierarchy = _hierarchy()
        plan = FaultPlan().flaky("fast", write_p=1.0)
        injector = FaultInjector(plan, hierarchy)
        injector.arm()
        injector.advance_to(0.0)
        with pytest.raises(TransientIOError):
            hierarchy.by_name("fast").put("k", b"x")
        assert injector.stats.transient_errors == 1

    def test_transient_load_errors_at_rate_one(self) -> None:
        hierarchy = _hierarchy()
        plan = FaultPlan().flaky("fast", read_p=1.0)
        injector = FaultInjector(plan, hierarchy)
        injector.arm()
        hierarchy.by_name("fast").put("k", b"x")  # rate not armed yet
        injector.advance_to(0.0)
        with pytest.raises(TransientIOError):
            hierarchy.by_name("fast").get("k")

    def test_corruption_flips_exactly_one_bit(self) -> None:
        hierarchy = _hierarchy()
        plan = FaultPlan().flaky("fast", corrupt_p=1.0)
        injector = FaultInjector(plan, hierarchy)
        injector.arm()
        original = bytes(range(64))
        hierarchy.by_name("fast").put("k", original)
        injector.advance_to(0.0)
        corrupted = hierarchy.by_name("fast").get("k")
        assert corrupted != original
        diff = [
            (a ^ b) for a, b in zip(corrupted, original) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_corruption_never_persisted(self) -> None:
        hierarchy = _hierarchy()
        plan = FaultPlan(
            events=(), seed=0
        ).flaky("fast", corrupt_p=1.0)
        injector = FaultInjector(plan, hierarchy)
        injector.arm()
        original = b"stable bytes"
        hierarchy.by_name("fast").put("k", original)
        injector.advance_to(0.0)
        hierarchy.by_name("fast").get("k")  # corrupted view
        injector.disarm()
        assert hierarchy.by_name("fast").get("k") == original


class TestDeterminism:
    def _run_once(self, seed: int) -> list[tuple]:
        hierarchy = _hierarchy()
        plan = FaultPlan(seed=seed).flaky(
            "fast", write_p=0.3, read_p=0.2, corrupt_p=0.2
        ).outage("fast", start=5.0, end=6.0)
        injector = FaultInjector(plan, hierarchy)
        injector.arm()
        injector.advance_to(0.0)
        fast = hierarchy.by_name("fast")
        for i in range(30):
            try:
                fast.put(f"k{i}", bytes([i]) * 16)
            except TransientIOError:
                continue
            try:
                fast.get(f"k{i}")
            except TransientIOError:
                pass
        injector.advance_to(10.0)
        return injector.stats.log

    def test_same_seed_same_trace(self) -> None:
        assert self._run_once(42) == self._run_once(42)

    def test_different_seed_different_trace(self) -> None:
        assert self._run_once(1) != self._run_once(2)
