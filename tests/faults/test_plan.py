"""FaultPlan: validation, ordering, builders, JSON round trip."""

from __future__ import annotations

import pytest

from repro.errors import HCompressError
from repro.faults import FaultEvent, FaultKind, FaultPlan


class TestEventValidation:
    def test_negative_time_rejected(self) -> None:
        with pytest.raises(HCompressError):
            FaultEvent(-1.0, FaultKind.TIER_DOWN, "nvme")

    def test_empty_tier_rejected(self) -> None:
        with pytest.raises(HCompressError):
            FaultEvent(0.0, FaultKind.TIER_DOWN, "")

    def test_rate_kinds_need_probability(self) -> None:
        with pytest.raises(HCompressError):
            FaultEvent(0.0, FaultKind.WRITE_ERROR_RATE, "nvme")
        with pytest.raises(HCompressError):
            FaultEvent(0.0, FaultKind.READ_ERROR_RATE, "nvme", 1.5)
        FaultEvent(0.0, FaultKind.CORRUPT_RATE, "nvme", 0.5)  # valid

    def test_slowdown_below_one_rejected(self) -> None:
        with pytest.raises(HCompressError):
            FaultEvent(0.0, FaultKind.SLOWDOWN, "pfs", 0.9)

    def test_capacity_limit_none_restores(self) -> None:
        event = FaultEvent(1.0, FaultKind.CAPACITY_LIMIT, "ram", None)
        assert event.value is None
        with pytest.raises(HCompressError):
            FaultEvent(1.0, FaultKind.CAPACITY_LIMIT, "ram", -5)


class TestPlan:
    def test_events_sorted_by_time(self) -> None:
        plan = FaultPlan(
            events=(
                FaultEvent(5.0, FaultKind.TIER_UP, "nvme"),
                FaultEvent(1.0, FaultKind.TIER_DOWN, "nvme"),
            )
        )
        assert [e.at for e in plan.events] == [1.0, 5.0]

    def test_builders_compose(self) -> None:
        plan = (
            FaultPlan(seed=7)
            .outage("nvme", start=1.0, end=2.0)
            .degraded("pfs", start=0.5, end=3.0, factor=8.0)
            .flaky("burst_buffer", write_p=0.1, corrupt_p=0.05)
            .shrink("ram", at=1.5, limit=1024)
        )
        assert plan.seed == 7
        assert plan.horizon == 3.0
        assert plan.tiers() == {"nvme", "pfs", "burst_buffer", "ram"}
        kinds = [e.kind for e in plan.events]
        assert FaultKind.TIER_DOWN in kinds and FaultKind.TIER_UP in kinds
        assert FaultKind.CAPACITY_LIMIT in kinds

    def test_outage_needs_positive_window(self) -> None:
        with pytest.raises(HCompressError):
            FaultPlan().outage("nvme", start=2.0, end=2.0)

    def test_flaky_emits_only_requested_rates(self) -> None:
        plan = FaultPlan().flaky("nvme", write_p=0.2)
        assert len(plan.events) == 1
        assert plan.events[0].kind is FaultKind.WRITE_ERROR_RATE

    def test_empty_plan_horizon_zero(self) -> None:
        assert FaultPlan().horizon == 0.0


class TestJsonRoundTrip:
    def test_round_trip_preserves_plan(self, tmp_path) -> None:
        plan = (
            FaultPlan(seed=42)
            .outage("nvme", start=1.0, end=4.0)
            .flaky("burst_buffer", at=0.5, write_p=0.1, read_p=0.2)
            .shrink("ram", at=2.0, limit=None)
        )
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan

    def test_bad_json_raises_hcompress_error(self, tmp_path) -> None:
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(HCompressError):
            FaultPlan.from_json(path)

    def test_missing_file_raises_hcompress_error(self, tmp_path) -> None:
        with pytest.raises(HCompressError):
            FaultPlan.from_json(tmp_path / "ghost.json")

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(HCompressError):
            FaultEvent.from_dict({"at": 0, "kind": "meteor", "tier": "ram"})
