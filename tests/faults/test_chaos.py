"""Chaos acceptance: NVMe dies mid-workload, HCompress survives.

This is the headline robustness criterion: a seeded fault plan kills the
NVMe tier halfway through a VPIC write workload and the run must prove

(a) every written buffer reads back byte-identical after recovery,
(b) at least one write was failed over or replanned to another tier,
(c) the same seed reproduces the identical retry/failover trace twice.
"""

from __future__ import annotations

import pytest

from repro.errors import HCompressError
from repro.faults import (
    ChaosConfig,
    FaultKind,
    default_chaos_plan,
    run_chaos,
)


@pytest.fixture(scope="module")
def hc_outcome():
    return run_chaos("HC")


class TestPlanShape:
    def test_default_plan_kills_nvme_mid_run(self) -> None:
        config = ChaosConfig()
        plan = default_chaos_plan(config)
        downs = [
            e for e in plan.events
            if e.kind is FaultKind.TIER_DOWN and e.tier == "nvme"
        ]
        assert len(downs) == 1
        # Strictly inside the workload window: mid-run, not at the edges.
        horizon = config.steps * config.step_seconds
        assert 0.0 < downs[0].at < horizon
        ups = [
            e for e in plan.events
            if e.kind is FaultKind.TIER_UP and e.tier == "nvme"
        ]
        assert len(ups) == 1
        assert ups[0].at > downs[0].at

    def test_config_validation(self) -> None:
        with pytest.raises(HCompressError):
            ChaosConfig(ranks=0)
        with pytest.raises(HCompressError):
            ChaosConfig(steps=0)
        with pytest.raises(HCompressError):
            ChaosConfig(step_seconds=0.0)

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(HCompressError):
            run_chaos("ZFS")


class TestHCompressSurvives:
    def test_completes_under_outage(self, hc_outcome) -> None:
        assert hc_outcome.completed
        assert hc_outcome.error is None
        config = ChaosConfig()
        assert hc_outcome.tasks_written == config.ranks * config.steps

    def test_every_buffer_byte_identical(self, hc_outcome) -> None:
        # Criterion (a): all buffers read back byte-identical.
        assert hc_outcome.all_data_intact
        assert hc_outcome.verified_intact == hc_outcome.tasks_written
        assert hc_outcome.mismatched == 0

    def test_writes_failed_over_or_replanned(self, hc_outcome) -> None:
        # Criterion (b): the outage forced at least one write elsewhere.
        rerouted = (
            hc_outcome.failovers
            + hc_outcome.replans
            + hc_outcome.degraded_plans
        )
        assert rerouted >= 1

    def test_transient_errors_were_retried(self, hc_outcome) -> None:
        assert hc_outcome.injected_errors > 0
        assert hc_outcome.retries > 0

    def test_corruption_detected_and_repaired(self, hc_outcome) -> None:
        # Bit-flips are transient (re-read heals), so every detection
        # must have been repaired for the data to verify intact.
        if hc_outcome.injected_corruptions > 0:
            assert hc_outcome.corruption_detected > 0
            assert hc_outcome.read_repairs == hc_outcome.corruption_detected


class TestDeterminism:
    def test_same_seed_identical_trace(self, hc_outcome) -> None:
        # Criterion (c): the full retry/failover/injection trace replays
        # exactly under the same seed.
        replay = run_chaos("HC")
        assert replay.trace == hc_outcome.trace
        assert replay.retries == hc_outcome.retries
        assert replay.failovers == hc_outcome.failovers
        assert replay.verified_intact == hc_outcome.verified_intact

    def test_different_seed_different_trace(self, hc_outcome) -> None:
        import dataclasses

        reseeded = dataclasses.replace(
            default_chaos_plan(ChaosConfig()), seed=1337
        )
        other = run_chaos("HC", plan=reseeded)
        assert other.trace != hc_outcome.trace


class TestBaselinesSuffer:
    def test_base_does_not_survive(self) -> None:
        base = run_chaos("BASE")
        assert not base.all_data_intact

    def test_mtnc_does_not_survive(self) -> None:
        mtnc = run_chaos("MTNC")
        assert not mtnc.all_data_intact
