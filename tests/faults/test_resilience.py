"""Resilient I/O paths: checksums, read-repair, rollback, replanning."""

from __future__ import annotations

import pytest

from repro.core import HCompress, HCompressConfig
from repro.core.config import ResilienceConfig
from repro.errors import CorruptDataError, TierUnavailableError
from repro.tiers import ares_hierarchy
from repro.tiers.device import Device
from repro.units import GiB, MiB


class CorruptOnLoad(Device):
    """Flips one byte on the first ``corrupt_n`` loads (or every load when
    ``corrupt_n`` is None)."""

    def __init__(self, inner, corrupt_n: int | None = 1):
        self.inner = inner
        self.corrupt_n = corrupt_n

    def store(self, key, payload):
        self.inner.store(key, payload)

    def load(self, key):
        blob = self.inner.load(key)
        if self.corrupt_n is None or self.corrupt_n > 0:
            if self.corrupt_n is not None:
                self.corrupt_n -= 1
            flipped = bytearray(blob)
            flipped[len(flipped) // 2] ^= 0xFF
            return bytes(flipped)
        return blob

    def delete(self, key):
        self.inner.delete(key)

    def __contains__(self, key):
        return key in self.inner

    def keys(self):
        return self.inner.keys()


def _engine(seed, **config_kwargs) -> HCompress:
    hierarchy = ares_hierarchy(4 * MiB, 8 * MiB, 1 * GiB, nodes=2)
    return HCompress(hierarchy, HCompressConfig(**config_kwargs), seed=seed)


class TestChecksums:
    def test_transient_corruption_healed_by_reread(self, seed, gamma_f64) -> None:
        engine = _engine(seed)
        engine.compress(gamma_f64, task_id="t")
        tier = engine.shi.locate("t/0")
        tier.device = CorruptOnLoad(tier.device, corrupt_n=1)
        result = engine.decompress("t")
        assert result.data == gamma_f64
        assert engine.manager.corruption_detected == 1
        assert engine.manager.read_repairs == 1

    def test_persistent_corruption_raises(self, seed, gamma_f64) -> None:
        engine = _engine(seed)
        engine.compress(gamma_f64, task_id="t")
        tier = engine.shi.locate("t/0")
        tier.device = CorruptOnLoad(tier.device, corrupt_n=None)
        with pytest.raises(CorruptDataError):
            engine.decompress("t")
        assert engine.manager.corruption_detected == 1
        assert engine.manager.read_repairs == 0

    def test_on_corrupt_hook_supplies_replacement(self, seed, gamma_f64) -> None:
        engine = _engine(seed)
        engine.compress(gamma_f64, task_id="t")
        tier = engine.shi.locate("t/0")
        device = CorruptOnLoad(tier.device, corrupt_n=None)
        tier.device = device
        # The repair hook models a replica read: it bypasses the corrupting
        # wrapper and hands back the pristine stored blob.
        engine.manager.on_corrupt = lambda key, _blob: device.inner.load(key)
        result = engine.decompress("t")
        assert result.data == gamma_f64
        assert engine.manager.read_repairs == 1

    def test_checksums_disabled_skips_verification(self, seed, gamma_f64) -> None:
        engine = _engine(
            seed, resilience=ResilienceConfig(verify_checksums=False)
        )
        engine.compress(gamma_f64, task_id="t")
        entry = engine.manager._catalog["t"][0]
        assert entry.crc32 is None


class TestRollback:
    def test_failed_write_rolls_back_placed_pieces(self, seed, gamma_f64) -> None:
        from repro.hcdp import IOTask, Operation
        from repro.units import KiB

        # A 16 KiB ram tier cannot hold the whole 64 KiB task: the plan
        # must split it across tiers, so the injected failure lands after
        # at least one piece has been placed.
        hierarchy = ares_hierarchy(16 * KiB, 8 * MiB, 1 * GiB, nodes=2)
        engine = HCompress(
            hierarchy,
            HCompressConfig(resilience=ResilienceConfig(failover=False)),
            seed=seed,
        )

        analysis = engine.analyzer.analyze(gamma_f64)
        task = IOTask(
            task_id="doomed", size=len(gamma_f64), analysis=analysis,
            operation=Operation.WRITE, data=gamma_f64,
        )
        schema = engine.engine.plan(task)
        # Fail the write AFTER the first piece has landed.
        original_write = engine.shi.write
        placed = []

        def failing_write(key, tier_name, payload, accounted_size=None):
            if placed:
                raise TierUnavailableError("injected mid-task outage")
            receipt = original_write(key, tier_name, payload, accounted_size)
            placed.append(key)
            return receipt

        engine.shi.write = failing_write
        if len(schema.pieces) < 2:
            pytest.skip("plan produced a single piece; nothing to roll back")
        with pytest.raises(TierUnavailableError):
            engine.manager.execute_write(schema)
        engine.shi.write = original_write
        assert "doomed" not in engine.manager
        for index in range(len(schema.pieces)):
            assert engine.shi.locate(f"doomed/{index}") is None

    def test_total_outage_leaves_accounting_clean(self, seed, gamma_f64) -> None:
        """A write that cannot land anywhere must not leak accounted bytes
        or catalog entries — whether it dies at planning (PlacementError,
        every tier down in a fresh sample) or at execution."""
        from repro.errors import PlacementError

        engine = _engine(seed, resilience=ResilienceConfig(failover=False))
        used_before = {
            tier.spec.name: tier.used for tier in engine.hierarchy
        }
        for tier in engine.hierarchy:
            tier.set_available(False)
        with pytest.raises((TierUnavailableError, PlacementError)):
            engine.compress(gamma_f64, task_id="t")
        assert "t" not in engine.manager
        assert {t.spec.name: t.used for t in engine.hierarchy} == used_before


class TestReplan:
    def test_stale_plan_replans_on_outage(self, seed, gamma_f64) -> None:
        engine = _engine(
            seed,
            monitor_interval=1e9,  # never refreshes on its own
            resilience=ResilienceConfig(failover=False),
        )
        first = engine.compress(gamma_f64, task_id="before")
        target = first.pieces[0].tier
        # Outage after the monitor cached its sample: the next plan is
        # built against a stale up view and its write must fail.
        engine.hierarchy.by_name(target).set_available(False)
        result = engine.compress(gamma_f64, task_id="after")
        assert engine.replans == 1
        assert all(p.tier != target for p in result.pieces)
        assert engine.decompress("after").data == gamma_f64

    def test_failover_absorbs_outage_without_replan(self, seed, gamma_f64) -> None:
        engine = _engine(seed, monitor_interval=1e9)  # failover on (default)
        first = engine.compress(gamma_f64, task_id="before")
        target = first.pieces[0].tier
        engine.hierarchy.by_name(target).set_available(False)
        result = engine.compress(gamma_f64, task_id="after")
        assert engine.replans == 0
        assert engine.shi.stats.failovers >= 1
        assert all(p.tier != target for p in result.pieces)
        assert any(p.failover for p in result.pieces)
