"""Overload storm acceptance: the QoS contract under 2x load + flapping."""

from __future__ import annotations

import pytest

from repro.faults import OverloadConfig, run_overload
from repro.qos import QosClass


@pytest.fixture(scope="module")
def storm_seed():
    from repro.faults.overload import _default_seed

    return _default_seed()


@pytest.fixture(scope="module")
def storm(storm_seed):
    return run_overload(OverloadConfig(tasks=32), seed=storm_seed)


class TestContract:
    def test_contract_holds(self, storm) -> None:
        assert storm.holds, storm.summary()

    def test_storm_actually_stressed_the_engine(self, storm) -> None:
        """The fixture parameters must produce a real storm — sheds,
        breaker activity, brownout escalation — or the contract checks
        are vacuous."""
        assert storm.shed > 0
        assert storm.breaker_transitions > 0
        assert storm.brownout_peak >= 1

    def test_only_sub_protected_classes_shed(self, storm) -> None:
        assert storm.shed_by_class
        assert all(
            cls < int(QosClass.INTERACTIVE) for cls in storm.shed_by_class
        )

    def test_every_admitted_task_accounted(self, storm) -> None:
        assert storm.admitted == (
            storm.completed
            + storm.deadline_failures
            + storm.unavailable_failures
        )

    def test_acked_data_survives(self, storm) -> None:
        assert storm.completed > 0
        assert storm.verified_intact == storm.completed
        assert storm.mismatched == 0 and storm.missing_acked == 0

    def test_trace_replays_across_runs(self, storm, storm_seed) -> None:
        twin = run_overload(OverloadConfig(tasks=32), seed=storm_seed)
        assert twin.trace == storm.trace
        assert twin.shed_by_class == storm.shed_by_class

    def test_different_shed_seed_different_lottery(self, storm,
                                                   storm_seed) -> None:
        other = run_overload(OverloadConfig(tasks=32, rng_seed=99),
                             seed=storm_seed)
        assert other.trace != storm.trace


class TestCrashRestart:
    def test_crash_mid_storm_restores_conservatively(self,
                                                     storm_seed) -> None:
        """Overload + flapping tier + process death: the restored engine
        must hold the durability contract and keep the tripped breaker
        quarantined (conservative restore), not resurrect the tier."""
        outcome = run_overload(
            OverloadConfig(
                tasks=32,
                crash_site="manager.write.post_journal",
                crash_hit=20,
            ),
            seed=storm_seed,
        )
        assert outcome.crashed and outcome.fired_site is not None
        assert outcome.recovered
        assert outcome.holds, outcome.summary()
        assert outcome.breaker_open_after_restore

    def test_crash_before_breaker_checkpoint_still_holds(self,
                                                         storm_seed) -> None:
        """An early crash restores from the bootstrap checkpoint (no
        breaker state yet) — the contract still holds, just without the
        quarantine carry-over."""
        outcome = run_overload(
            OverloadConfig(
                tasks=32, crash_site="manager.write.pre_journal",
                crash_hit=2,
            ),
            seed=storm_seed,
        )
        assert outcome.crashed and outcome.recovered
        assert outcome.holds, outcome.summary()


class TestKnobs:
    def test_no_overload_no_shedding(self, storm_seed) -> None:
        """At half the drain rate nothing sheds — the storm harness
        does not manufacture sheds out of thin air."""
        calm = run_overload(
            OverloadConfig(tasks=16, load_factor=0.5, flap_count=0),
            seed=storm_seed,
        )
        assert calm.shed == 0
        assert calm.completed == calm.offered
        assert calm.holds, calm.summary()

    def test_config_validation(self) -> None:
        from repro.errors import HCompressError

        with pytest.raises(HCompressError):
            OverloadConfig(tasks=0)
        with pytest.raises(HCompressError):
            OverloadConfig(load_factor=0.0)
        with pytest.raises(HCompressError):
            OverloadConfig(deadline=-1.0)
