"""The failover chaos harness: the automatic-failover contract end to end."""

from __future__ import annotations

import pytest

from repro.errors import HCompressError
from repro.faults import (
    FailoverChaosConfig,
    run_failover_chaos,
    run_failover_crash,
)
from repro.recovery import CrashPlan

QUICK = dict(shards=2, tasks=24, tenants=4, kill_after=8,
             checkpoint_after=6)


class TestConfig:
    def test_kill_targets_are_exclusive(self) -> None:
        with pytest.raises(HCompressError):
            FailoverChaosConfig(kill_shard=1, kill_owner_of="tenant-0")

    def test_kill_must_leave_traffic_after_it(self) -> None:
        with pytest.raises(HCompressError):
            FailoverChaosConfig(tasks=16, kill_after=16)

    def test_only_replication_sites_armable(self) -> None:
        with pytest.raises(HCompressError):
            FailoverChaosConfig(crash_site="journal.torn_sync")


class TestUndisturbed:
    def test_baseline_contract_holds(self) -> None:
        outcome = run_failover_chaos(FailoverChaosConfig(**QUICK))
        assert outcome.holds, outcome.summary()
        assert outcome.killed_shard is None
        assert outcome.completed == outcome.offered
        assert outcome.deferred == 0
        assert outcome.mismatched == 0


class TestKill:
    def test_kill_contract_holds_with_zero_acked_loss(self) -> None:
        outcome = run_failover_chaos(
            FailoverChaosConfig(kill_shard=0, **QUICK)
        )
        assert outcome.holds, outcome.summary()
        assert outcome.killed_shard == 0
        assert outcome.failovers >= 1
        assert outcome.missing_acked == 0
        assert outcome.mismatched == 0
        # fsync_every=8 means the kill genuinely destroyed a local tail;
        # zero loss therefore proves the *shipping* preserved it.
        assert outcome.lost_local_tail > 0
        assert outcome.unavailable == 0  # failover beat the routing gate

    def test_window_is_bounded(self) -> None:
        outcome = run_failover_chaos(
            FailoverChaosConfig(kill_shard=0, **QUICK)
        )
        assert outcome.unavailability_seconds <= outcome.unavailability_bound
        assert outcome.deferred > 0  # the window sheds retryably

    def test_survivor_events_match_undisturbed_run(self) -> None:
        """Determinism across the kill: the surviving shard's event
        stream is identical to the same-seed run with no kill."""
        base = run_failover_chaos(FailoverChaosConfig(**QUICK))
        kill = run_failover_chaos(
            FailoverChaosConfig(kill_owner_of="tenant-0", **QUICK)
        )
        assert kill.killed_shard is not None
        assert kill.survivor_events() == base.survivor_events(
            killed=kill.killed_shard
        )

    def test_instant_promotion_defers_nothing(self) -> None:
        outcome = run_failover_chaos(FailoverChaosConfig(
            kill_shard=0, promotion_seconds=0.0, **QUICK
        ))
        assert outcome.holds, outcome.summary()
        assert outcome.deferred == 0
        assert outcome.completed == outcome.offered


class TestCrashSites:
    def test_crash_mid_promotion_retries_and_converges(self) -> None:
        outcome = run_failover_chaos(FailoverChaosConfig(
            kill_shard=0, crash_site="replication.post_manifest", **QUICK
        ))
        assert outcome.holds, outcome.summary()
        assert outcome.crash_fired == "replication.post_manifest"
        assert outcome.crash_retried
        assert outcome.missing_acked == 0

    def test_crash_adapter_reports_crash_outcome_fields(self) -> None:
        crash = run_failover_crash(CrashPlan("replication.pre_promote"))
        assert crash.crashed
        assert crash.fired_site == "replication.pre_promote"
        assert crash.holds, crash.summary()
        assert crash.recovered
        assert crash.replay_idempotent
        assert crash.double_restore_identical

    def test_unreached_hit_runs_crash_free(self) -> None:
        # One kill = one promotion: hit=2 never fires, the storm just
        # runs through and the invariants still hold.
        crash = run_failover_crash(
            CrashPlan("replication.post_demote", hit=2)
        )
        assert not crash.crashed
        assert crash.holds, crash.summary()
