"""The h5lite self-describing container."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import H5LiteFile, H5LiteWriter


@pytest.fixture()
def arrays(rng):
    return {
        "positions": rng.uniform(0, 1, (1000, 3)).astype(np.float32),
        "energies": rng.gamma(2.0, 1.0, 500).astype(np.float64),
        "ids": np.arange(500, dtype=np.int64),
    }


def _build(arrays, attrs=None, chunk_bytes=4 * 1024 * 1024) -> bytes:
    buffer = io.BytesIO()
    with H5LiteWriter(buffer, chunk_bytes=chunk_bytes) as writer:
        for name, array in arrays.items():
            writer.write_dataset(name, array, attrs=(attrs or {}).get(name))
    return buffer.getvalue()


class TestRoundtrip:
    def test_datasets_roundtrip(self, arrays) -> None:
        blob = _build(arrays)
        reader = H5LiteFile(blob)
        assert set(reader.dataset_names) == set(arrays)
        for name, original in arrays.items():
            restored = reader.read(name)
            assert restored.dtype == original.dtype
            assert restored.shape == original.shape
            assert np.array_equal(restored, original)

    def test_attributes_roundtrip(self, arrays) -> None:
        blob = _build(arrays, attrs={"energies": {"distribution": "gamma",
                                                  "units": "keV"}})
        reader = H5LiteFile(blob)
        assert reader.attrs("energies") == {"distribution": "gamma",
                                            "units": "keV"}
        assert reader.attrs("ids") == {}

    def test_chunked_layout(self, rng) -> None:
        array = rng.integers(0, 255, 100_000, dtype=np.uint8)
        blob = _build({"big": array}, chunk_bytes=8 * 1024)
        reader = H5LiteFile(blob)
        assert len(reader.info("big").chunks) > 10
        assert np.array_equal(reader.read("big"), array)

    def test_read_raw(self, arrays) -> None:
        blob = _build(arrays)
        raw = H5LiteFile(blob).read_raw("ids")
        assert raw == arrays["ids"].tobytes()

    def test_file_path_io(self, arrays, tmp_path) -> None:
        path = tmp_path / "data.h5l"
        with H5LiteWriter(path) as writer:
            writer.write_dataset("x", arrays["ids"])
        with H5LiteFile(path) as reader:
            assert np.array_equal(reader.read("x"), arrays["ids"])

    def test_empty_dataset(self) -> None:
        blob = _build({"empty": np.array([], dtype=np.float64)})
        assert H5LiteFile(blob).read("empty").size == 0

    def test_magic_prefix(self, arrays) -> None:
        from repro.analyzer.format import H5LITE_MAGIC

        assert _build(arrays).startswith(H5LITE_MAGIC)


class TestWriterErrors:
    def test_duplicate_dataset(self, arrays) -> None:
        buffer = io.BytesIO()
        with H5LiteWriter(buffer) as writer:
            writer.write_dataset("x", arrays["ids"])
            with pytest.raises(FormatError):
                writer.write_dataset("x", arrays["ids"])

    def test_write_after_close(self, arrays) -> None:
        writer = H5LiteWriter(io.BytesIO())
        writer.close()
        with pytest.raises(FormatError):
            writer.write_dataset("x", arrays["ids"])

    def test_close_idempotent(self) -> None:
        writer = H5LiteWriter(io.BytesIO())
        writer.close()
        writer.close()

    def test_bad_chunk_bytes(self) -> None:
        with pytest.raises(FormatError):
            H5LiteWriter(io.BytesIO(), chunk_bytes=0)


class TestReaderErrors:
    def test_bad_magic(self) -> None:
        with pytest.raises(FormatError):
            H5LiteFile(b"NOTH5LITE" + bytes(100))

    def test_truncated_superblock(self) -> None:
        with pytest.raises(FormatError):
            H5LiteFile(b"\x89H5L")

    def test_corrupt_index(self, arrays) -> None:
        blob = bytearray(_build(arrays))
        blob[-20] ^= 0xFF  # inside the JSON index
        with pytest.raises(FormatError):
            H5LiteFile(bytes(blob))

    def test_unknown_dataset(self, arrays) -> None:
        reader = H5LiteFile(_build(arrays))
        with pytest.raises(FormatError):
            reader.read("ghost")


class TestAnalyzerHints:
    def test_hints_for_float32(self, arrays) -> None:
        from repro.analyzer import DataFormat, DataType

        blob = _build(arrays, attrs={"positions": {"distribution": "uniform"}})
        hints = H5LiteFile(blob).hints("positions")
        assert hints.dtype is DataType.FLOAT32
        assert hints.data_format is DataFormat.H5LITE

    def test_unknown_distribution_attr_ignored(self, arrays) -> None:
        blob = _build(arrays, attrs={"ids": {"distribution": "weird"}})
        assert H5LiteFile(blob).hints("ids").distribution is None
