"""VPIC particle records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    PARTICLE_FIELDS,
    make_particles,
    particle_dtype,
    split_properties,
)


class TestDtype:
    def test_paper_layout_32_bytes(self) -> None:
        dtype = particle_dtype()
        assert dtype.itemsize == 32
        assert len(PARTICLE_FIELDS) == 8
        assert set(dtype.names) == set(PARTICLE_FIELDS)


class TestGeneration:
    def test_count(self, rng) -> None:
        assert make_particles(1000, rng).shape == (1000,)

    def test_zero_particles(self, rng) -> None:
        assert make_particles(0, rng).size == 0

    def test_negative_rejected(self, rng) -> None:
        with pytest.raises(FormatError):
            make_particles(-1, rng)

    def test_positions_in_box(self, rng) -> None:
        particles = make_particles(10_000, rng)
        for axis in ("x", "y", "z"):
            assert particles[axis].min() >= 0.0
            assert particles[axis].max() <= 1.0

    def test_momenta_maxwellian(self, rng) -> None:
        particles = make_particles(50_000, rng)
        px = particles["px"].astype(np.float64)
        assert abs(px.mean()) < 0.05
        assert px.std() == pytest.approx(1.0, abs=0.05)

    def test_energy_derived_from_momenta(self, rng) -> None:
        particles = make_particles(10_000, rng)
        momenta_sq = sum(
            particles[a].astype(np.float64) ** 2 for a in ("px", "py", "pz")
        )
        assert np.allclose(particles["energy"], 0.5 * momenta_sq, atol=0.01)

    def test_data_is_compressible(self, rng) -> None:
        """The quantisation grid is what makes checkpoints compressible
        (Fig. 1's premise); zlib must beat 1.5x on particle data."""
        from repro.codecs import get_codec

        raw = make_particles(8192, rng).tobytes()
        assert get_codec("zlib").ratio(raw) > 1.5

    def test_deterministic_given_rng(self) -> None:
        a = make_particles(100, np.random.default_rng(5))
        b = make_particles(100, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestSplit:
    def test_split_properties(self, rng) -> None:
        particles = make_particles(100, rng)
        columns = split_properties(particles)
        assert set(columns) == set(PARTICLE_FIELDS)
        assert np.array_equal(columns["x"], particles["x"])

    def test_split_rejects_wrong_dtype(self, rng) -> None:
        with pytest.raises(FormatError):
            split_properties(np.zeros(10, dtype=np.float64))
