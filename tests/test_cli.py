"""The hcompress command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_defaults(self) -> None:
        args = build_parser().parse_args(["profile"])
        assert args.mode == "nominal"
        assert args.sizes == ["8", "32"]

    def test_report_flags(self) -> None:
        args = build_parser().parse_args(["report", "--fast"])
        assert args.fast

    def test_metrics_defaults(self) -> None:
        args = build_parser().parse_args(["metrics"])
        assert (args.nprocs, args.steps, args.scale) == (320, 10, 4096)
        assert not args.json
        assert args.output is None

    def test_trace_defaults(self) -> None:
        args = build_parser().parse_args(["trace"])
        assert (args.nprocs, args.steps, args.scale) == (320, 10, 4096)


class TestCommands:
    def test_profile_writes_seed(self, tmp_path, capsys) -> None:
        out = tmp_path / "seed.json"
        code = main(["profile", "--output", str(out), "--sizes", "4", "8"])
        assert code == 0
        from repro.ccp import load_seed

        seed = load_seed(out)
        assert len(seed.observations) > 100

    def test_profile_with_signature(self, tmp_path) -> None:
        out = tmp_path / "seed.json"
        assert main([
            "profile", "--output", str(out), "--sizes", "4", "8",
            "--signature",
        ]) == 0
        from repro.ccp import load_seed

        assert load_seed(out).system_signature

    def test_codecs_listing(self, capsys) -> None:
        assert main(["codecs", "--kib", "16"]) == 0
        output = capsys.readouterr().out
        assert "zlib" in output
        assert "ratio" in output

    def test_demo_roundtrip(self, capsys) -> None:
        assert main(["demo", "--kib", "64"]) == 0
        assert "round-trip OK" in capsys.readouterr().out

    def test_stats_reports_cache_counters(self, capsys) -> None:
        assert main(["stats", "--tasks", "32", "--kib", "16"]) == 0
        output = capsys.readouterr().out
        assert "plan cache  : on" in output
        assert "hits=" in output
        assert "DP memo" in output
        assert "executor    : on" in output

    def test_stats_no_cache(self, capsys) -> None:
        assert main([
            "stats", "--tasks", "8", "--kib", "16", "--no-cache"
        ]) == 0
        output = capsys.readouterr().out
        assert "plan cache  : off" in output
        assert "hits=0 misses=0" in output

    def test_stats_zero_tasks_is_well_formed(self, capsys) -> None:
        """Regression: an empty burst must yield a complete report, not a
        division error or a partial table."""
        assert main(["stats", "--tasks", "0", "--kib", "16"]) == 0
        output = capsys.readouterr().out
        assert "burst: 0 x" in output
        assert "(0 tasks/s)" in output
        assert "plan cache  :" in output
        assert "cost model  :" in output

    def test_stats_json_zero_tasks(self, capsys) -> None:
        assert main(["stats", "--tasks", "0", "--kib", "16", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["burst"]["tasks"] == 0
        assert report["burst"]["tasks_per_second"] == 0.0
        assert report["plan_cache"]["hits"] == 0

    def test_stats_json_counts_the_burst(self, capsys) -> None:
        assert main(["stats", "--tasks", "16", "--kib", "16", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["plans"]["tasks_planned"] == 16
        hits = report["plan_cache"]["hits"]
        misses = report["plan_cache"]["misses"]
        assert hits + misses == 16


class TestObservabilityCommands:
    """``hcompress metrics`` / ``hcompress trace`` — tiny instrumented runs."""

    RUN = ["--nprocs", "4", "--steps", "2", "--scale", "4096"]

    def test_metrics_json_schema(self, capsys) -> None:
        assert main(["metrics", *self.RUN, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == "hcompress.metrics.v1"
        metrics = snap["metrics"]
        for family in (
            "hcompress_plans_total",
            "hcompress_tasks_total",
            "hcompress_tier_bytes_total",
            "hcompress_codec_ratio",
            "hcompress_plan_cache_hits_total",
            "hcompress_flusher_polls_total",
        ):
            assert family in metrics, f"missing {family}"
        tasks = metrics["hcompress_tasks_total"]["series"]
        assert {"labels": {"op": "write"}, "value": 8.0} in tasks

    def test_metrics_table_output(self, capsys) -> None:
        assert main(["metrics", *self.RUN]) == 0
        output = capsys.readouterr().out
        assert "run: 8 tasks" in output
        assert "hcompress_plans_total" in output

    def test_metrics_output_file(self, tmp_path, capsys) -> None:
        out = tmp_path / "metrics.json"
        assert main(["metrics", *self.RUN, "--output", str(out)]) == 0
        snap = json.loads(out.read_text())
        assert snap["schema"] == "hcompress.metrics.v1"

    def test_trace_rollup_output(self, capsys) -> None:
        assert main(["trace", *self.RUN]) == 0
        output = capsys.readouterr().out
        assert "hcdp.plan" in output
        assert "shi.write" in output
        assert "spans recorded" in output

    def test_trace_chrome_export(self, tmp_path) -> None:
        out = tmp_path / "trace.json"
        assert main(["trace", *self.RUN, "--output", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "hcompress.compress" in names
        assert all(e["dur"] > 0 for e in events if e["ph"] == "X")
