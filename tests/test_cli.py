"""The hcompress command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_defaults(self) -> None:
        args = build_parser().parse_args(["profile"])
        assert args.mode == "nominal"
        assert args.sizes == ["8", "32"]

    def test_report_flags(self) -> None:
        args = build_parser().parse_args(["report", "--fast"])
        assert args.fast


class TestCommands:
    def test_profile_writes_seed(self, tmp_path, capsys) -> None:
        out = tmp_path / "seed.json"
        code = main(["profile", "--output", str(out), "--sizes", "4", "8"])
        assert code == 0
        from repro.ccp import load_seed

        seed = load_seed(out)
        assert len(seed.observations) > 100

    def test_profile_with_signature(self, tmp_path) -> None:
        out = tmp_path / "seed.json"
        assert main([
            "profile", "--output", str(out), "--sizes", "4", "8",
            "--signature",
        ]) == 0
        from repro.ccp import load_seed

        assert load_seed(out).system_signature

    def test_codecs_listing(self, capsys) -> None:
        assert main(["codecs", "--kib", "16"]) == 0
        output = capsys.readouterr().out
        assert "zlib" in output
        assert "ratio" in output

    def test_demo_roundtrip(self, capsys) -> None:
        assert main(["demo", "--kib", "64"]) == 0
        assert "round-trip OK" in capsys.readouterr().out

    def test_stats_reports_cache_counters(self, capsys) -> None:
        assert main(["stats", "--tasks", "32", "--kib", "16"]) == 0
        output = capsys.readouterr().out
        assert "plan cache  : on" in output
        assert "hits=" in output
        assert "DP memo" in output
        assert "executor    : on" in output

    def test_stats_no_cache(self, capsys) -> None:
        assert main([
            "stats", "--tasks", "8", "--kib", "16", "--no-cache"
        ]) == 0
        output = capsys.readouterr().out
        assert "plan cache  : off" in output
        assert "hits=0 misses=0" in output
