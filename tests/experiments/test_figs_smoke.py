"""Tiny-scale smoke runs of every figure harness.

Shape assertions live in tests/integration/test_shapes.py; here we verify
each harness runs end to end and emits a structurally complete table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    run_fig1,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestFig1(object):
    def test_table_structure(self, seed, rng) -> None:
        table = run_fig1(scale=256, nprocs=64, seed=seed, rng=rng)
        assert len(table.rows) == 9  # 4 PFS + 4 Hermes + 1 HCompress
        scenarios = set(table.column("scenario"))
        assert "Multi-Comp Multi-Tiered" in scenarios
        assert all(t >= 0 for t in table.column("total_s"))


class TestFig3:
    def test_fractions_sum_per_path(self, seed, rng) -> None:
        table = run_fig3(n_tasks=40, seed=seed, rng=rng)
        rows = table.row_dicts()
        for path in ("write", "read"):
            total = sum(r["fraction"] for r in rows if r["path"] == path)
            assert total == pytest.approx(1.0)


class TestFig4:
    def test_fig4a_rows(self, seed, rng) -> None:
        table = run_fig4a(plans_per_size=40, sizes=(4096, 65536), seed=seed,
                          rng=rng)
        assert len(table.rows) == 2
        assert all(tp > 0 for tp in table.column("tasks_per_s"))
        assert table.rows[0][2] == pytest.approx(1.0)

    def test_fig4b_rows(self, seed, rng) -> None:
        table = run_fig4b(tasks_per_distribution=120, seed=seed, rng=rng)
        assert len(table.rows) == 4
        for accuracy in table.column("accuracy_r2"):
            assert accuracy > 0.5


class TestFig5:
    def test_scenarios_covered(self, seed, rng) -> None:
        table = run_fig5(scale=64, nprocs=32, codecs=("none", "zlib", "lz4"),
                         seed=seed, rng=rng)
        scenarios = table.column("scenario")
        assert scenarios[0] == "None (Hermes)"
        assert scenarios[-1] == "HCompress"
        assert len(scenarios) == 4


class TestFig6:
    def test_tiers_covered(self, seed, rng) -> None:
        table = run_fig6(scale=128, nprocs=8, codecs=("zlib", "lz4"),
                         seed=seed, rng=rng)
        tiers = set(table.column("tier"))
        assert tiers == {"ram", "nvme", "burst_buffer", "multi-tiered"}
        assert table.rows[-1][0] == "HCompress"


class TestFig7:
    def test_backends_and_speedups(self, seed, rng) -> None:
        table = run_fig7(process_counts=(16,), scale=256,
                         backends=("BASE", "MTNC"), seed=seed, rng=rng)
        assert table.column("backend") == ["BASE", "MTNC"]
        base_row = table.row_dicts()[0]
        assert base_row["speedup_vs_base"] == 1.0


class TestFig8:
    def test_write_read_phases(self, seed, rng) -> None:
        table = run_fig8(process_counts=(16,), scale=256,
                         backends=("BASE", "HC"), seed=seed, rng=rng)
        for row in table.row_dicts():
            assert row["total_s"] == pytest.approx(
                row["write_s"] + row["read_s"]
            )
