"""Experiment harness utilities."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.experiments import ExperimentTable, make_backend, scaled_hierarchy
from repro.units import GB, GiB


class TestTable:
    def test_add_row_and_accessors(self) -> None:
        table = ExperimentTable("t", "desc", ["a", "b"])
        table.add_row(1, 2.0)
        table.add_row(3, 4.0)
        assert table.column("b") == [2.0, 4.0]
        assert table.row_dicts()[0] == {"a": 1, "b": 2.0}

    def test_row_width_checked(self) -> None:
        table = ExperimentTable("t", "desc", ["a", "b"])
        with pytest.raises(WorkloadError):
            table.add_row(1)

    def test_markdown_render(self) -> None:
        table = ExperimentTable("My Figure", "What it shows", ["x", "y"])
        table.add_row("row", 1.2345)
        table.note("a note")
        text = table.to_markdown()
        assert "### My Figure" in text
        assert "| x | y |" in text
        assert "1.23" in text
        assert "> a note" in text


class TestScaledHierarchy:
    def test_divides_capacities(self) -> None:
        h = scaled_hierarchy(64 * GB, 128 * GB, 256 * GB, scale=64)
        assert h.by_name("ram").spec.capacity == 64 * GB // 64
        assert h.by_name("pfs").spec.capacity is None

    def test_scale_validation(self) -> None:
        with pytest.raises(WorkloadError):
            scaled_hierarchy(1, 1, 1, scale=0)


class TestBackendFactory:
    @pytest.mark.parametrize("name,expected", [
        ("BASE", "BASE"),
        ("STWC", "STWC"),
        ("MTNC", "MTNC"),
        ("HERMES+zlib", "HERMES+zlib"),
    ])
    def test_names(self, name, expected) -> None:
        h = scaled_hierarchy(1 * GiB, 2 * GiB, 4 * GiB, 1)
        assert make_backend(name, h).name == expected

    def test_hc_backend(self, seed) -> None:
        h = scaled_hierarchy(1 * GiB, 2 * GiB, 4 * GiB, 1)
        assert make_backend("HC", h, seed=seed).name == "HC"

    def test_unknown(self) -> None:
        h = scaled_hierarchy(1 * GiB, 2 * GiB, 4 * GiB, 1)
        with pytest.raises(WorkloadError):
            make_backend("MAGIC", h)
