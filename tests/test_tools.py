"""Exception-hygiene lint: the AST checks work and the tree is clean.

Thin pytest wrapper over ``tools/check_exceptions.py`` so a silently
swallowed error fails the tier-1 suite, not just the CI lint job.
"""

from __future__ import annotations

import importlib.util
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_exceptions():
    spec = importlib.util.spec_from_file_location(
        "check_exceptions", REPO / "tools" / "check_exceptions.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_exceptions"] = module
    spec.loader.exec_module(module)
    return module


def _lint(check_exceptions, source: str) -> list[tuple[int, str]]:
    return check_exceptions.check_file(textwrap.dedent(source))


def test_bare_except_flagged(check_exceptions) -> None:
    found = _lint(check_exceptions, """
        try:
            work()
        except:
            pass
    """)
    assert len(found) == 1 and "bare" in found[0][1]


def test_silent_broad_handler_flagged(check_exceptions) -> None:
    found = _lint(check_exceptions, """
        try:
            work()
        except Exception:
            pass
    """)
    assert len(found) == 1 and "swallows" in found[0][1]


def test_broad_handler_in_tuple_flagged(check_exceptions) -> None:
    found = _lint(check_exceptions, """
        try:
            work()
        except (ValueError, BaseException):
            pass
    """)
    assert len(found) == 1


def test_broad_handler_that_reraises_passes(check_exceptions) -> None:
    assert _lint(check_exceptions, """
        try:
            work()
        except Exception:
            cleanup()
            raise
    """) == []


def test_broad_handler_that_records_passes(check_exceptions) -> None:
    # Converting or recording the error is not a swallow.
    assert _lint(check_exceptions, """
        try:
            work()
        except Exception as exc:
            errors.append(exc)
    """) == []


def test_narrow_silent_handler_passes(check_exceptions) -> None:
    # Suppressing a *specific* exception is a legitimate idiom
    # (e.g. FileNotFoundError on an optional file).
    assert _lint(check_exceptions, """
        try:
            work()
        except FileNotFoundError:
            pass
    """) == []


def test_allowlist_parses_and_filters(check_exceptions, tmp_path) -> None:
    listing = tmp_path / "allow.txt"
    listing.write_text(
        "# comment\n"
        "\n"
        "src/pkg/mod.py:42  # justified\n"
    )
    assert check_exceptions.load_allowlist(listing) == {("src/pkg/mod.py", 42)}
    assert check_exceptions.load_allowlist(tmp_path / "missing.txt") == set()


def test_repo_is_clean(check_exceptions, capsys) -> None:
    """The whole tree passes with the committed (empty) allowlist."""
    assert check_exceptions.main([]) == 0
    assert "check_exceptions: ok" in capsys.readouterr().out
