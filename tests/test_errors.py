"""Exception hierarchy: everything derives from HCompressError."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.CodecError,
    errors.CorruptDataError,
    errors.UnknownCodecError,
    errors.CapacityError,
    errors.TierError,
    errors.TierUnavailableError,
    errors.TransientIOError,
    errors.RetryExhaustedError,
    errors.PlacementError,
    errors.SchemaError,
    errors.AnalyzerError,
    errors.ModelError,
    errors.SeedError,
    errors.SimulationError,
    errors.FormatError,
    errors.WorkloadError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_base(exc) -> None:
    assert issubclass(exc, errors.HCompressError)


def test_corrupt_data_is_codec_error() -> None:
    assert issubclass(errors.CorruptDataError, errors.CodecError)


@pytest.mark.parametrize(
    "exc",
    [
        errors.TierUnavailableError,
        errors.TransientIOError,
        errors.RetryExhaustedError,
    ],
)
def test_resilience_errors_are_tier_errors(exc) -> None:
    """Consumers that already catch TierError keep working under faults."""
    assert issubclass(exc, errors.TierError)


def test_unknown_codec_dual_inheritance() -> None:
    assert issubclass(errors.UnknownCodecError, KeyError)
    # KeyError's repr quoting is suppressed for readable messages.
    assert str(errors.UnknownCodecError("no codec named 'x'")) == (
        "no codec named 'x'"
    )


def test_catch_all_pattern() -> None:
    """Library consumers can catch the whole family in one clause."""
    with pytest.raises(errors.HCompressError):
        raise errors.PlacementError("nope")
