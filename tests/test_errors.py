"""Exception hierarchy: everything derives from HCompressError."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.CodecError,
    errors.CorruptDataError,
    errors.UnknownCodecError,
    errors.CapacityError,
    errors.TierError,
    errors.TierUnavailableError,
    errors.TransientIOError,
    errors.RetryExhaustedError,
    errors.PlacementError,
    errors.SchemaError,
    errors.AnalyzerError,
    errors.ModelError,
    errors.SeedError,
    errors.SimulationError,
    errors.FormatError,
    errors.WorkloadError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_base(exc) -> None:
    assert issubclass(exc, errors.HCompressError)


def test_corrupt_data_is_codec_error() -> None:
    assert issubclass(errors.CorruptDataError, errors.CodecError)


@pytest.mark.parametrize(
    "exc",
    [
        errors.TierUnavailableError,
        errors.TransientIOError,
        errors.RetryExhaustedError,
    ],
)
def test_resilience_errors_are_tier_errors(exc) -> None:
    """Consumers that already catch TierError keep working under faults."""
    assert issubclass(exc, errors.TierError)


def test_unknown_codec_dual_inheritance() -> None:
    assert issubclass(errors.UnknownCodecError, KeyError)
    # KeyError's repr quoting is suppressed for readable messages.
    assert str(errors.UnknownCodecError("no codec named 'x'")) == (
        "no codec named 'x'"
    )


def test_catch_all_pattern() -> None:
    """Library consumers can catch the whole family in one clause."""
    with pytest.raises(errors.HCompressError):
        raise errors.PlacementError("nope")


class TestShardTaxonomy:
    """The ShardError family (ISSUE 6): typed unavailability that slots
    into the existing TierError / RecoveryError handling."""

    @pytest.mark.parametrize(
        "exc",
        [
            errors.ShardError,
            errors.ShardUnavailableError,
            errors.ShardManifestError,
        ],
    )
    def test_derives_from_base(self, exc) -> None:
        assert issubclass(exc, errors.HCompressError)
        assert issubclass(exc, errors.ShardError)

    def test_shard_unavailable_is_tier_unavailable(self) -> None:
        """Callers already handling tier unavailability (failover,
        degraded replan) absorb a dead shard without new except clauses."""
        assert issubclass(
            errors.ShardUnavailableError, errors.TierUnavailableError
        )
        assert issubclass(errors.ShardUnavailableError, errors.TierError)

    def test_shard_unavailable_carries_context(self) -> None:
        exc = errors.ShardUnavailableError(
            "shard 3 is down", shard_id=3, reason="killed"
        )
        assert exc.shard_id == 3
        assert exc.reason == "killed"
        assert str(exc) == "shard 3 is down"

    def test_shard_unavailable_default_context(self) -> None:
        exc = errors.ShardUnavailableError("down")
        assert exc.shard_id == -1
        assert exc.reason == ""

    def test_manifest_error_is_recovery_error(self) -> None:
        """A broken shard map blocks restore — recovery tooling that
        catches RecoveryError must see it."""
        assert issubclass(errors.ShardManifestError, errors.RecoveryError)

    def test_shard_errors_are_not_qos_errors(self) -> None:
        """Unavailability is a failure; QosError is a policy verdict.
        The two families must stay disjoint (the supervisor counts
        QosError as a healthy outcome)."""
        for exc in (errors.ShardUnavailableError, errors.ShardManifestError):
            assert not issubclass(exc, errors.QosError)
