"""Ares presets (paper Tables III/IV encodings)."""

from __future__ import annotations

import pytest

from repro.tiers import (
    ARES_BURST_BUFFER,
    ARES_COMPUTE,
    ARES_STORAGE,
    ares_hierarchy,
    ares_specs,
    default_buffer_split,
)
from repro.units import GiB, TB


class TestTableIII:
    def test_node_counts(self) -> None:
        assert ARES_COMPUTE.count == 64
        assert ARES_BURST_BUFFER.count == 4
        assert ARES_STORAGE.count == 24

    def test_hardware_strings(self) -> None:
        assert "Xeon" in ARES_COMPUTE.cpu
        assert "NVMe" in ARES_COMPUTE.disk
        assert "HDD" in ARES_STORAGE.disk


class TestSpecs:
    def test_four_tiers_default(self) -> None:
        specs = ares_specs(1 * GiB, 2 * GiB, 1 * TB)
        assert [s.name for s in specs] == ["ram", "nvme", "burst_buffer", "pfs"]

    def test_tiers_droppable(self) -> None:
        specs = ares_specs(None, None, 1 * TB)
        assert [s.name for s in specs] == ["burst_buffer", "pfs"]

    def test_pfs_unbounded_by_default(self) -> None:
        specs = ares_specs(1, 1, 1)
        assert specs[-1].capacity is None

    def test_node_local_bandwidth_scales_with_nodes(self) -> None:
        small = ares_specs(1, 1, 1, nodes=4)
        big = ares_specs(1, 1, 1, nodes=64)
        assert big[0].bandwidth == pytest.approx(16 * small[0].bandwidth)
        # Shared tiers do not scale with compute nodes.
        assert big[2].bandwidth == small[2].bandwidth
        assert big[3].bandwidth == small[3].bandwidth

    def test_bandwidth_ordering_fastest_first(self) -> None:
        specs = ares_specs(1, 1, 1, nodes=1)
        bws = [s.bandwidth for s in specs]
        assert bws == sorted(bws, reverse=True)

    def test_latency_ordering(self) -> None:
        specs = ares_specs(1, 1, 1)
        lats = [s.latency for s in specs]
        assert lats == sorted(lats)

    def test_shared_flags(self) -> None:
        specs = {s.name: s for s in ares_specs(1, 1, 1)}
        assert not specs["ram"].shared
        assert not specs["nvme"].shared
        assert specs["burst_buffer"].shared
        assert specs["pfs"].shared

    def test_zero_nodes_rejected(self) -> None:
        with pytest.raises(ValueError):
            ares_specs(1, 1, 1, nodes=0)


class TestHierarchyBuilder:
    def test_default_is_fig1_config(self) -> None:
        h = ares_hierarchy()
        assert h.by_name("ram").spec.capacity == 16 * GiB
        assert h.by_name("burst_buffer").spec.capacity == 2 * TB

    def test_capacities_respected(self) -> None:
        h = ares_hierarchy(ram_capacity=5, nvme_capacity=6, bb_capacity=7)
        assert [t.spec.capacity for t in h] == [5, 6, 7, None]


class TestBufferSplit:
    def test_paper_percentages(self) -> None:
        ram, nvme, bb = default_buffer_split(1000)
        assert ram == 200
        assert nvme == 300
        assert bb == 500

    def test_sums_to_total(self) -> None:
        for total in (1, 97, 4096, 10**12):
            assert sum(default_buffer_split(total)) == total

    def test_rejects_nonpositive(self) -> None:
        with pytest.raises(ValueError):
            default_buffer_split(0)
