"""StorageHierarchy: ordering, lookup, aggregates."""

from __future__ import annotations

import pytest

from repro.errors import TierError
from repro.tiers import StorageHierarchy, Tier, TierSpec


def _tier(name: str, bandwidth: float, capacity=1000, lanes=1) -> Tier:
    return Tier(
        TierSpec(name=name, capacity=capacity, bandwidth=bandwidth, latency=0,
                 lanes=lanes)
    )


class TestConstruction:
    def test_requires_tiers(self) -> None:
        with pytest.raises(TierError):
            StorageHierarchy([])

    def test_duplicate_names_rejected(self) -> None:
        with pytest.raises(TierError):
            StorageHierarchy([_tier("x", 2e9), _tier("x", 1e9)])

    def test_fastest_first_enforced(self) -> None:
        with pytest.raises(TierError):
            StorageHierarchy([_tier("slow", 1e8), _tier("fast", 1e9)])

    def test_ordering_check_can_be_disabled(self) -> None:
        h = StorageHierarchy(
            [_tier("slow", 1e8), _tier("fast", 1e9)], enforce_ordering=False
        )
        assert len(h) == 2

    def test_from_specs(self) -> None:
        specs = [
            TierSpec(name="a", capacity=10, bandwidth=2e9, latency=0),
            TierSpec(name="b", capacity=None, bandwidth=1e9, latency=0),
        ]
        h = StorageHierarchy.from_specs(specs)
        assert h.names == ["a", "b"]


class TestLookup:
    @pytest.fixture()
    def hierarchy(self) -> StorageHierarchy:
        return StorageHierarchy(
            [_tier("ram", 3e9, lanes=2), _tier("ssd", 2e9, lanes=3),
             _tier("pfs", 1e9, capacity=None, lanes=4)]
        )

    def test_index_and_name_access(self, hierarchy) -> None:
        assert hierarchy[0].spec.name == "ram"
        assert hierarchy.by_name("ssd").spec.name == "ssd"
        assert hierarchy.level_of("pfs") == 2

    def test_unknown_name(self, hierarchy) -> None:
        with pytest.raises(TierError):
            hierarchy.by_name("nvme")
        with pytest.raises(TierError):
            hierarchy.level_of("nvme")

    def test_iteration_order(self, hierarchy) -> None:
        assert [t.spec.name for t in hierarchy] == ["ram", "ssd", "pfs"]

    def test_concurrency_sums_lanes(self, hierarchy) -> None:
        assert hierarchy.concurrency() == 9

    def test_find(self, hierarchy) -> None:
        hierarchy.by_name("ssd").put("key", b"x")
        assert hierarchy.find("key").spec.name == "ssd"
        assert hierarchy.find("ghost") is None

    def test_total_remaining_none_when_unbounded(self, hierarchy) -> None:
        assert hierarchy.total_remaining() is None

    def test_total_remaining_bounded(self) -> None:
        h = StorageHierarchy([_tier("a", 2e9, 100), _tier("b", 1e9, 200)])
        h[0].put("k", None, accounted_size=50)
        assert h.total_remaining() == 250

    def test_footprint_by_tier(self, hierarchy) -> None:
        hierarchy[0].put("a", None, accounted_size=10)
        hierarchy[2].put("b", None, accounted_size=30)
        assert hierarchy.footprint_by_tier() == {"ram": 10, "ssd": 0, "pfs": 30}

    def test_clear(self, hierarchy) -> None:
        hierarchy[0].put("a", None, accounted_size=10)
        hierarchy.clear()
        assert hierarchy.total_used() == 0
