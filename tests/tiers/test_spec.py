"""TierSpec validation and the eq-3 time model."""

from __future__ import annotations

import pytest

from repro.tiers import TierSpec
from repro.units import GiB, MiB


def _spec(**kw) -> TierSpec:
    defaults = dict(name="t", capacity=1 * GiB, bandwidth=1e9, latency=1e-5, lanes=4)
    defaults.update(kw)
    return TierSpec(**defaults)


class TestValidation:
    def test_empty_name(self) -> None:
        with pytest.raises(ValueError):
            _spec(name="")

    def test_negative_capacity(self) -> None:
        with pytest.raises(ValueError):
            _spec(capacity=-1)

    def test_unbounded_capacity_allowed(self) -> None:
        assert _spec(capacity=None).bounded is False
        assert _spec(capacity=0).bounded is True

    def test_zero_bandwidth(self) -> None:
        with pytest.raises(ValueError):
            _spec(bandwidth=0)

    def test_negative_latency(self) -> None:
        with pytest.raises(ValueError):
            _spec(latency=-1e-6)

    def test_zero_lanes(self) -> None:
        with pytest.raises(ValueError):
            _spec(lanes=0)

    def test_frozen(self) -> None:
        spec = _spec()
        with pytest.raises(AttributeError):
            spec.capacity = 5  # type: ignore[misc]


class TestTimeModel:
    def test_lane_bandwidth_splits_aggregate(self) -> None:
        spec = _spec(bandwidth=4e9, lanes=4)
        assert spec.lane_bandwidth == 1e9

    def test_io_seconds_formula(self) -> None:
        spec = _spec(bandwidth=1e9, lanes=1, latency=0.001)
        assert spec.io_seconds(500_000_000) == pytest.approx(0.501)

    def test_io_seconds_zero_bytes_is_latency(self) -> None:
        spec = _spec(latency=0.002)
        assert spec.io_seconds(0) == pytest.approx(0.002)

    def test_io_seconds_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            _spec().io_seconds(-1)

    def test_describe_mentions_unbounded(self) -> None:
        assert "unbounded" in _spec(capacity=None).describe()
        assert "shared" in _spec(shared=True).describe()
