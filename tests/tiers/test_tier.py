"""Tier runtime: capacity ledger, availability, load accounting."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, TierError
from repro.tiers import MemoryDevice, Tier, TierSpec


@pytest.fixture()
def tier() -> Tier:
    return Tier(TierSpec(name="t", capacity=1000, bandwidth=1e9, latency=0.0))


class TestLedger:
    def test_put_accounts_payload_length(self, tier) -> None:
        tier.put("a", b"12345")
        assert tier.used == 5
        assert tier.remaining == 995

    def test_put_accounting_only(self, tier) -> None:
        tier.put("a", None, accounted_size=600)
        assert tier.used == 600
        assert not tier.extent("a").has_payload

    def test_modeled_size_decoupled_from_payload(self, tier) -> None:
        tier.put("a", b"tiny", accounted_size=900)
        assert tier.used == 900
        assert tier.get("a") == b"tiny"

    def test_capacity_enforced(self, tier) -> None:
        tier.put("a", None, accounted_size=800)
        with pytest.raises(CapacityError):
            tier.put("b", None, accounted_size=300)

    def test_exact_fit_allowed(self, tier) -> None:
        tier.put("a", None, accounted_size=1000)
        assert tier.remaining == 0

    def test_evict_releases(self, tier) -> None:
        tier.put("a", b"xyz", accounted_size=500)
        assert tier.evict("a") == 500
        assert tier.used == 0
        assert "a" not in tier

    def test_duplicate_key_rejected(self, tier) -> None:
        tier.put("a", b"1")
        with pytest.raises(TierError):
            tier.put("a", b"2")

    def test_unbounded_tier(self) -> None:
        tier = Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e9, latency=0))
        tier.put("big", None, accounted_size=10**15)
        assert tier.remaining is None
        assert tier.fits(10**18)

    def test_missing_accounted_size_with_no_payload(self, tier) -> None:
        with pytest.raises(TierError):
            tier.put("a", None)

    def test_negative_accounted_size(self, tier) -> None:
        with pytest.raises(TierError):
            tier.put("a", b"x", accounted_size=-1)

    def test_clear(self, tier) -> None:
        tier.put("a", b"1")
        tier.put("b", b"2")
        tier.clear()
        assert tier.used == 0
        assert tier.keys() == []


class TestAvailability:
    def test_unavailable_blocks_put(self, tier) -> None:
        tier.set_available(False)
        assert not tier.fits(1)
        with pytest.raises(TierError):
            tier.put("a", b"x")

    def test_reenable(self, tier) -> None:
        tier.set_available(False)
        tier.set_available(True)
        tier.put("a", b"x")
        assert "a" in tier


class TestLoad:
    def test_queue_depth_and_bytes(self, tier) -> None:
        tier.begin_io(100)
        tier.begin_io(200)
        assert tier.queue_depth == 2
        assert tier.queued_bytes == 300
        tier.end_io(100)
        assert tier.queue_depth == 1
        assert tier.queued_bytes == 200

    def test_end_without_begin(self, tier) -> None:
        with pytest.raises(TierError):
            tier.end_io()

    def test_queued_bytes_never_negative(self, tier) -> None:
        tier.begin_io(10)
        tier.end_io(50)
        assert tier.queued_bytes == 0


class TestAccess:
    def test_get_missing_key(self, tier) -> None:
        with pytest.raises(TierError):
            tier.get("ghost")

    def test_extent_missing_key(self, tier) -> None:
        with pytest.raises(TierError):
            tier.extent("ghost")

    def test_evict_missing_key(self, tier) -> None:
        with pytest.raises(TierError):
            tier.evict("ghost")

    def test_default_device_is_memory(self, tier) -> None:
        assert isinstance(tier.device, MemoryDevice)
