"""Tier runtime: capacity ledger, availability, load accounting."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, TierError, TierUnavailableError
from repro.tiers import MemoryDevice, Tier, TierSpec


@pytest.fixture()
def tier() -> Tier:
    return Tier(TierSpec(name="t", capacity=1000, bandwidth=1e9, latency=0.0))


class TestLedger:
    def test_put_accounts_payload_length(self, tier) -> None:
        tier.put("a", b"12345")
        assert tier.used == 5
        assert tier.remaining == 995

    def test_put_accounting_only(self, tier) -> None:
        tier.put("a", None, accounted_size=600)
        assert tier.used == 600
        assert not tier.extent("a").has_payload

    def test_modeled_size_decoupled_from_payload(self, tier) -> None:
        tier.put("a", b"tiny", accounted_size=900)
        assert tier.used == 900
        assert tier.get("a") == b"tiny"

    def test_capacity_enforced(self, tier) -> None:
        tier.put("a", None, accounted_size=800)
        with pytest.raises(CapacityError):
            tier.put("b", None, accounted_size=300)

    def test_exact_fit_allowed(self, tier) -> None:
        tier.put("a", None, accounted_size=1000)
        assert tier.remaining == 0

    def test_evict_releases(self, tier) -> None:
        tier.put("a", b"xyz", accounted_size=500)
        assert tier.evict("a") == 500
        assert tier.used == 0
        assert "a" not in tier

    def test_duplicate_key_rejected(self, tier) -> None:
        tier.put("a", b"1")
        with pytest.raises(TierError):
            tier.put("a", b"2")

    def test_unbounded_tier(self) -> None:
        tier = Tier(TierSpec(name="pfs", capacity=None, bandwidth=1e9, latency=0))
        tier.put("big", None, accounted_size=10**15)
        assert tier.remaining is None
        assert tier.fits(10**18)

    def test_missing_accounted_size_with_no_payload(self, tier) -> None:
        with pytest.raises(TierError):
            tier.put("a", None)

    def test_negative_accounted_size(self, tier) -> None:
        with pytest.raises(TierError):
            tier.put("a", b"x", accounted_size=-1)

    def test_clear(self, tier) -> None:
        tier.put("a", b"1")
        tier.put("b", b"2")
        tier.clear()
        assert tier.used == 0
        assert tier.keys() == []


class TestAvailability:
    def test_unavailable_blocks_put(self, tier) -> None:
        tier.set_available(False)
        assert not tier.fits(1)
        with pytest.raises(TierUnavailableError):
            tier.put("a", b"x")

    def test_unavailable_blocks_get(self, tier) -> None:
        """Regression: get on a down tier must raise TierUnavailableError
        (it used to hand back the payload as if nothing were wrong)."""
        tier.put("a", b"x")
        tier.set_available(False)
        with pytest.raises(TierUnavailableError):
            tier.get("a")

    def test_unavailable_blocks_extent(self, tier) -> None:
        tier.put("a", b"x")
        tier.set_available(False)
        with pytest.raises(TierUnavailableError):
            tier.extent("a")

    def test_evict_allowed_while_down(self, tier) -> None:
        """Eviction is ledger cleanup, not a data-path read: it must work
        during an outage (the flusher's copy-before-evict relies on it)."""
        tier.put("a", b"x", accounted_size=100)
        tier.set_available(False)
        assert tier.evict("a") == 100
        assert tier.used == 0

    def test_contains_and_keys_work_while_down(self, tier) -> None:
        tier.put("a", b"x")
        tier.set_available(False)
        assert "a" in tier
        assert tier.keys() == ["a"]

    def test_reenable(self, tier) -> None:
        tier.set_available(False)
        tier.set_available(True)
        tier.put("a", b"x")
        assert "a" in tier


class TestDegradation:
    def test_slowdown_scales_io_seconds(self, tier) -> None:
        base = tier.io_seconds(1000)
        tier.set_slowdown(4.0)
        assert tier.io_seconds(1000) == pytest.approx(4.0 * base)
        tier.set_slowdown(1.0)
        assert tier.io_seconds(1000) == pytest.approx(base)

    def test_slowdown_below_one_rejected(self, tier) -> None:
        with pytest.raises(TierError):
            tier.set_slowdown(0.5)

    def test_capacity_limit_shrinks_effective_capacity(self, tier) -> None:
        tier.set_capacity_limit(400)
        assert tier.effective_capacity == 400
        assert tier.remaining == 400
        with pytest.raises(CapacityError):
            tier.put("a", None, accounted_size=500)

    def test_capacity_limit_cleared(self, tier) -> None:
        tier.set_capacity_limit(400)
        tier.set_capacity_limit(None)
        assert tier.effective_capacity == 1000

    def test_shrink_below_used_goes_negative_remaining(self, tier) -> None:
        """Data already placed survives a shrink; the tier just refuses
        new placements until usage drains below the new limit."""
        tier.put("a", None, accounted_size=600)
        tier.set_capacity_limit(400)
        assert tier.remaining == -200
        assert not tier.fits(1)
        assert tier.extent("a").accounted_size == 600


class TestLoad:
    def test_queue_depth_and_bytes(self, tier) -> None:
        tier.begin_io(100)
        tier.begin_io(200)
        assert tier.queue_depth == 2
        assert tier.queued_bytes == 300
        tier.end_io(100)
        assert tier.queue_depth == 1
        assert tier.queued_bytes == 200

    def test_end_without_begin(self, tier) -> None:
        with pytest.raises(TierError):
            tier.end_io()

    def test_end_io_overshoot_raises(self, tier) -> None:
        """Regression: retiring more bytes than are queued used to clamp
        silently while an unmatched queue_depth raised — both accounting
        bugs now surface consistently."""
        tier.begin_io(10)
        with pytest.raises(TierError):
            tier.end_io(50)

    def test_balanced_io_returns_to_zero(self, tier) -> None:
        tier.begin_io(10)
        tier.end_io(10)
        assert tier.queue_depth == 0
        assert tier.queued_bytes == 0


class TestAccess:
    def test_get_missing_key(self, tier) -> None:
        with pytest.raises(TierError):
            tier.get("ghost")

    def test_extent_missing_key(self, tier) -> None:
        with pytest.raises(TierError):
            tier.extent("ghost")

    def test_evict_missing_key(self, tier) -> None:
        with pytest.raises(TierError):
            tier.evict("ghost")

    def test_default_device_is_memory(self, tier) -> None:
        assert isinstance(tier.device, MemoryDevice)
