"""Backing devices: memory, file, and accounting-only backends."""

from __future__ import annotations

import pytest

from repro.errors import TierError
from repro.tiers import FileDevice, MemoryDevice, NullDevice


@pytest.fixture(params=["memory", "file", "null"])
def device(request, tmp_path):
    if request.param == "memory":
        return MemoryDevice()
    if request.param == "file":
        return FileDevice(tmp_path / "blobs")
    return NullDevice()


class TestCommonBehaviour:
    def test_store_and_contains(self, device) -> None:
        device.store("k1", b"payload")
        assert "k1" in device
        assert "k2" not in device

    def test_delete(self, device) -> None:
        device.store("k", b"x")
        device.delete("k")
        assert "k" not in device

    def test_delete_missing_raises(self, device) -> None:
        with pytest.raises(TierError):
            device.delete("ghost")

    def test_load_missing_raises(self, device) -> None:
        with pytest.raises(TierError):
            device.load("ghost")

    def test_keys_and_clear(self, device) -> None:
        device.store("a", b"1")
        device.store("b", b"2")
        assert sorted(device.keys()) == ["a", "b"]
        device.clear()
        assert device.keys() == []


class TestPayloadBackends:
    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_load_returns_stored_bytes(self, backend, tmp_path) -> None:
        device = MemoryDevice() if backend == "memory" else FileDevice(tmp_path)
        device.store("key", b"hello world")
        assert device.load("key") == b"hello world"

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_overwrite(self, backend, tmp_path) -> None:
        device = MemoryDevice() if backend == "memory" else FileDevice(tmp_path)
        device.store("key", b"v1")
        device.store("key", b"v2")
        assert device.load("key") == b"v2"


class TestMemoryDevice:
    def test_stored_bytes(self) -> None:
        device = MemoryDevice()
        device.store("a", b"12345")
        device.store("b", b"678")
        assert device.stored_bytes == 8


class TestFileDevice:
    def test_slash_keys_flattened(self, tmp_path) -> None:
        device = FileDevice(tmp_path)
        device.store("task/0", b"piece")
        assert device.load("task/0") == b"piece"
        assert "task/0" in device.keys()

    def test_persists_across_instances(self, tmp_path) -> None:
        FileDevice(tmp_path).store("k", b"durable")
        assert FileDevice(tmp_path).load("k") == b"durable"


class TestNullDevice:
    def test_load_always_fails(self) -> None:
        device = NullDevice()
        device.store("k", b"discarded")
        assert "k" in device
        with pytest.raises(TierError):
            device.load("k")
