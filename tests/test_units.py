"""Byte units, formatting, and alignment helpers."""

from __future__ import annotations

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    PAGE,
    align_down,
    align_up,
    fmt_bytes,
    fmt_rate,
    fmt_seconds,
    is_aligned,
)


class TestConstants:
    def test_binary_progression(self) -> None:
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_page_is_paper_grain(self) -> None:
        assert PAGE == 4096


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (3 * MiB, "3.00 MiB"),
            (int(1.5 * GiB), "1.50 GiB"),
            (-2048, "-2.00 KiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected) -> None:
        assert fmt_bytes(n) == expected

    def test_fmt_rate(self) -> None:
        assert fmt_rate(2 * GiB) == "2.00 GiB/s"

    @pytest.mark.parametrize(
        "t,needle",
        [(5e-6, "us"), (0.02, "ms"), (3.5, "s"), (600, "min"), (-1.0, "-")],
    )
    def test_fmt_seconds(self, t, needle) -> None:
        assert needle in fmt_seconds(t)


class TestAlignment:
    def test_align_up(self) -> None:
        assert align_up(0) == 0
        assert align_up(1) == PAGE
        assert align_up(PAGE) == PAGE
        assert align_up(PAGE + 1) == 2 * PAGE

    def test_align_down(self) -> None:
        assert align_down(PAGE - 1) == 0
        assert align_down(PAGE) == PAGE
        assert align_down(10 * PAGE + 17) == 10 * PAGE

    def test_custom_grain(self) -> None:
        assert align_up(5, 8) == 8
        assert align_down(15, 8) == 8

    def test_is_aligned(self) -> None:
        assert is_aligned(0)
        assert is_aligned(3 * PAGE)
        assert not is_aligned(PAGE + 1)
        assert not is_aligned(-PAGE)

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            align_up(-1)
        with pytest.raises(ValueError):
            align_down(-1)

    def test_bad_grain_rejected(self) -> None:
        with pytest.raises(ValueError):
            align_up(10, 0)
        with pytest.raises(ValueError):
            align_down(10, -4)
